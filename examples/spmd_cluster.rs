//! True distributed-memory execution: run the whole learner as an
//! SPMD program over the message fabric — every rank executes the full
//! pipeline, scores only its own block of each parallel loop, and
//! exchanges results through real log-depth collectives (binomial
//! broadcast, reduce+broadcast all-reduce, gathered all-gather). This
//! is the in-process equivalent of the paper's `mpirun -np p` runs.
//!
//! ```text
//! cargo run --release -p monet --example spmd_cluster -- [n] [m] [ranks]
//! ```

use mn_comm::{spmd_run, SerialEngine};
use mn_data::synthetic;
use monet::{learn_module_network, to_json, LearnerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(28);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let data = synthetic::yeast_like(n, m, 11).dataset;
    let config = LearnerConfig::paper_minimum(11);

    println!("sequential reference run...");
    let (reference, serial_report) =
        learn_module_network(&mut SerialEngine::new(), &data, &config);
    println!(
        "  {} modules in {:.3}s",
        reference.n_modules(),
        serial_report.total_s()
    );

    println!("\nSPMD run over {ranks} message-passing ranks...");
    let results = spmd_run(ranks, |engine| {
        let (network, report) = learn_module_network(engine, &data, &config);
        (engine.rank(), to_json(&network), report.total_s())
    });

    let expected = to_json(&reference);
    for (rank, json, seconds) in &results {
        let status = if json == &expected { "identical" } else { "DIVERGED" };
        println!("  rank {rank}: finished in {seconds:.3}s — network {status}");
        assert_eq!(json, &expected, "rank {rank} diverged");
    }
    println!(
        "\nall {ranks} ranks learned the network the sequential run learned — \
         the paper's determinism property, over real message passing."
    );
}
