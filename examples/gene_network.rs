//! Genome-scale gene-regulatory-network workflow (the paper's §5
//! application), at laptop scale: learn a network from a yeast-like
//! compendium on a simulated 1024-rank machine, check recovery of the
//! planted regulators, and write the network to disk.
//!
//! ```text
//! cargo run --release -p monet --example gene_network -- [n] [m] [ranks]
//! ```

use mn_comm::SimEngine;
use mn_consensus::{adjusted_rand_index, labels_from_clusters};
use mn_data::synthetic;
use monet::{learn_module_network, phases, LearnerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);

    let synth = synthetic::yeast_like(n, m, 7);
    println!(
        "yeast-like compendium: {} genes x {} conditions; learning on {} simulated ranks",
        n, m, ranks
    );

    let mut config = LearnerConfig::paper_minimum(7);
    config.ganesh.update_steps = 2;
    // The Lemon-Tree candidate-regulator workflow: restrict candidate
    // parents to the known regulator list (here, the planted one).
    config.candidate_parents = Some(synth.truth.regulators.clone());
    let mut engine = SimEngine::new(ranks);
    let (network, report) = learn_module_network(&mut engine, &synth.dataset, &config);

    println!(
        "\nlearned {} modules, {} module edges",
        network.n_modules(),
        network.module_edges().len()
    );
    println!("simulated time on {ranks} ranks: {:.3}s", report.total_s());
    for phase in &report.phases {
        println!(
            "  {:<10} {:>10.4}s  (comm {:.4}s, imbalance {:.2})",
            phase.name,
            phase.elapsed_s,
            phase.comm_s,
            phase.imbalance()
        );
    }
    println!(
        "module-learning share: {:.1}%",
        100.0 * report.phase_s(phases::MODULES) / report.total_s()
    );

    // Quality vs the planted structure.
    let clusters: Vec<Vec<usize>> = network.modules.iter().map(|mo| mo.vars.clone()).collect();
    let ari = adjusted_rand_index(
        &labels_from_clusters(n, &clusters),
        &synth.truth.assignment,
    );
    println!("\nadjusted Rand index vs planted modules: {ari:.3}");

    let mut regulator_hits = 0;
    let mut scored = 0;
    for module in &network.modules {
        for (var, _) in network.ranked_parents(module.index).iter().take(2) {
            scored += 1;
            if synth.truth.regulators.contains(var) {
                regulator_hits += 1;
            }
        }
    }
    println!("top-2 parents that are planted regulators: {regulator_hits}/{scored}");

    let out = std::env::temp_dir().join("monet_gene_network.json");
    monet::write_json_file(&network, &out).expect("write JSON");
    println!("\nwrote {}", out.display());
}
