//! Strong-scaling study (the workflow behind Figures 5b/6a): learn the
//! same network at a range of simulated rank counts and print the
//! speedup/efficiency table, verifying on the way that every rank
//! count produces the identical network.
//!
//! ```text
//! cargo run --release -p monet --example scaling_study -- [n] [m]
//! ```

use mn_comm::{CostModel, SerialEngine, SimEngine};
use mn_data::synthetic;
use monet::{learn_module_network, to_json, LearnerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);

    let data = synthetic::yeast_like(n, m, 3).dataset;
    let config = LearnerConfig::paper_minimum(3);

    // Measured sequential baseline (the paper's T1).
    let (reference, serial_report) =
        learn_module_network(&mut SerialEngine::new(), &data, &config);
    let reference_json = to_json(&reference);
    println!(
        "sequential wall-clock (optimized implementation): {:.3}s",
        serial_report.total_s()
    );

    // Simulated cluster runs. The workload is orders of magnitude
    // smaller than the paper's, so the communication constants are
    // scaled by the same factor to keep the compute:communication
    // ratio representative (see EXPERIMENTS.md, Calibration).
    let model = CostModel::scaled_comm(150.0);
    let (_, sim1) = learn_module_network(&mut SimEngine::with_model(1, model), &data, &config);
    let t1 = sim1.total_s();
    println!("\nsimulated strong scaling ({} genes x {} observations):", n, m);
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "p", "time (s)", "speedup", "efficiency", "imbalance"
    );
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let (net, report) =
            learn_module_network(&mut SimEngine::with_model(p, model), &data, &config);
        assert_eq!(
            to_json(&net),
            reference_json,
            "network diverged at p={p} — determinism broken"
        );
        let tp = report.total_s();
        println!(
            "{:>6} {:>12.4} {:>10.1} {:>11.1}% {:>10.2}",
            p,
            tp,
            t1 / tp,
            100.0 * t1 / (p as f64 * tp),
            report.phase_imbalance(monet::phases::MODULES)
        );
    }
    println!("\nall rank counts learned the identical network (checked).");
}
