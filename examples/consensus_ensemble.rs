//! Ensemble robustness: run several independent GaneSH chains, build
//! the consensus modules, and compare (a) single-run clusterings,
//! (b) the consensus, and (c) the GENOMICA-style two-step baseline
//! against the planted structure — the methodological argument for
//! Lemon-Tree's ensemble approach (§1.1 of the paper).
//!
//! ```text
//! cargo run --release -p monet --example consensus_ensemble
//! ```

use mn_comm::SerialEngine;
use mn_consensus::{adjusted_rand_index, labels_from_clusters, SpectralParams};
use mn_data::{synthetic, SyntheticConfig};
use mn_gibbs::{ganesh_ensemble, GaneshParams};
use mn_rand::MasterRng;
use monet::genomica::{learn_two_step, TwoStepParams};
use monet::LearnerConfig;

fn main() {
    let n = 36;
    let synth = synthetic::generate(&SyntheticConfig {
        noise_sd: 0.35,
        n_modules: Some(4),
        ..SyntheticConfig::new(n, 30, 99)
    });
    let data = &synth.dataset;
    let truth = &synth.truth.assignment;
    println!(
        "data: {} genes x {} observations, {} planted modules",
        n,
        data.n_obs(),
        synth.truth.n_modules()
    );

    // Ensemble of G independent GaneSH runs.
    let g = 9;
    let master = MasterRng::new(5);
    let params = GaneshParams {
        init_clusters: Some(8),
        update_steps: 3,
        ..GaneshParams::default()
    };
    let mut engine = SerialEngine::new();
    let ensemble = ganesh_ensemble(&mut engine, data, &master, g, &params);

    println!("\nper-run agreement with planted modules (ARI):");
    let mut run_aris = Vec::new();
    for (i, sample) in ensemble.iter().enumerate() {
        let ari = adjusted_rand_index(&labels_from_clusters(n, sample), truth);
        println!("  run {i}: {ari:.3} ({} clusters)", sample.len());
        run_aris.push(ari);
    }
    let mean_ari = run_aris.iter().sum::<f64>() / run_aris.len() as f64;

    // Consensus across the ensemble.
    let consensus = mn_consensus::consensus_clustering(
        n,
        &ensemble,
        0.3,
        &SpectralParams::default(),
    );
    let consensus_ari = adjusted_rand_index(&labels_from_clusters(n, &consensus), truth);
    println!(
        "\nconsensus of {g} runs: {consensus_ari:.3} ({} modules) — single-run mean {mean_ari:.3}",
        consensus.len()
    );

    // The GENOMICA-style two-step baseline on the same data.
    let config = LearnerConfig::paper_minimum(5);
    let two_step_params = TwoStepParams {
        n_modules: 4,
        max_iters: 3,
        min_moves: 1,
    };
    let (two_step_net, _) =
        learn_two_step(&mut SerialEngine::new(), data, &config, &two_step_params);
    let ts_clusters: Vec<Vec<usize>> = two_step_net
        .modules
        .iter()
        .map(|m| m.vars.clone())
        .collect();
    let ts_ari = adjusted_rand_index(&labels_from_clusters(n, &ts_clusters), truth);
    println!("GENOMICA-style two-step baseline: {ts_ari:.3} ({} modules)", ts_clusters.len());

    println!("\nsummary:");
    println!("  single GaneSH run (mean) : {mean_ari:.3}");
    println!("  Lemon-Tree consensus     : {consensus_ari:.3}");
    println!("  two-step baseline        : {ts_ari:.3}");
}
