//! Quickstart: learn a module network from synthetic expression data
//! and print the modules, their regulators, and the module graph.
//!
//! ```text
//! cargo run --release -p monet --example quickstart
//! ```

use mn_comm::SerialEngine;
use mn_data::synthetic;
use monet::{learn_module_network, LearnerConfig};

fn main() {
    // A small module-structured expression data set with planted
    // ground truth (stand-in for a real TSV compendium; see
    // mn_data::read_tsv_file for loading your own).
    let synth = synthetic::yeast_like(40, 30, 42);
    let data = &synth.dataset;
    println!(
        "data set: {} genes x {} observations ({} planted modules)",
        data.n_vars(),
        data.n_obs(),
        synth.truth.n_modules()
    );

    // The paper's minimum configuration: one GaneSH run, one update
    // step, one regression tree per module.
    let config = LearnerConfig::paper_minimum(42);
    let mut engine = SerialEngine::new();
    let (network, report) = learn_module_network(&mut engine, data, &config);

    println!(
        "\nlearned {} modules covering {}/{} genes in {:.3}s",
        network.n_modules(),
        network.summary().n_assigned_vars,
        network.n_vars(),
        report.total_s()
    );
    for phase in &report.phases {
        println!("  task {:<10} {:.4}s", phase.name, phase.elapsed_s);
    }

    for module in &network.modules {
        let members: Vec<&str> = module
            .vars
            .iter()
            .take(6)
            .map(|&v| network.var_names[v].as_str())
            .collect();
        println!(
            "\nmodule {} ({} genes): {}{}",
            module.index,
            module.vars.len(),
            members.join(", "),
            if module.vars.len() > 6 { ", ..." } else { "" }
        );
        for (var, score) in network.ranked_parents(module.index).iter().take(3) {
            println!(
                "  regulator {:<6} score {:.3}",
                network.var_names[*var], score
            );
        }
    }

    let edges = network.module_edges();
    println!("\nmodule graph: {} edges", edges.len());
    for e in edges.iter().take(10) {
        println!("  M{} -> M{}", e.from, e.to);
    }
    let dag = monet::acyclic::dag_edges(&network);
    println!("after acyclicity post-processing: {} edges (DAG)", dag.len());

    // Persist in both formats the paper's tooling uses.
    let out = std::env::temp_dir().join("monet_quickstart.xml");
    monet::write_xml_file(&network, &out).expect("write XML");
    println!("\nwrote {}", out.display());
}
