//! The paper's central software property (§4.2): the learned network
//! is identical for every processor count and identical to the
//! sequential run, because the parallel PRNG streams are block-split
//! to match the block distribution of work. These tests assert
//! byte-identical serialized networks across engines, rank counts,
//! scoring modes, and partitioning strategies.

use mn_comm::{CostModel, PartitionStrategy, SerialEngine, SimEngine, ThreadEngine};
use mn_data::synthetic;
use monet::{learn_module_network, to_json, LearnerConfig};

fn dataset() -> mn_data::Dataset {
    synthetic::yeast_like(26, 18, 11).dataset
}

fn config() -> LearnerConfig {
    LearnerConfig::paper_minimum(77)
}

#[test]
fn identical_across_sim_rank_counts() {
    let d = dataset();
    let c = config();
    let (baseline, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    let expected = to_json(&baseline);
    for p in [1usize, 2, 3, 16, 128, 1024, 4096] {
        let (net, report) = learn_module_network(&mut SimEngine::new(p), &d, &c);
        assert_eq!(to_json(&net), expected, "sim engine p={p} diverged");
        assert_eq!(report.nranks, p);
    }
}

#[test]
fn identical_across_thread_counts() {
    let d = dataset();
    let c = config();
    let (baseline, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    let expected = to_json(&baseline);
    for p in [2usize, 3, 4] {
        let (net, _) = learn_module_network(&mut ThreadEngine::new(p), &d, &c);
        assert_eq!(to_json(&net), expected, "thread engine p={p} diverged");
    }
}

#[test]
fn identical_across_spmd_message_passing_ranks() {
    // The real distributed-memory path: every rank runs the entire
    // learner over the message fabric (point-to-point channels,
    // log-depth collectives), scoring only its own block in each
    // parallel loop — the in-process equivalent of the paper's MPI
    // deployment. Every rank must finish with the identical network,
    // equal to the sequential one.
    let d = dataset();
    let c = config();
    let (baseline, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    let expected = to_json(&baseline);
    for p in [1usize, 2, 3, 4] {
        let networks = mn_comm::spmd_run(p, |engine| {
            let (net, report) = learn_module_network(engine, &d, &c);
            assert_eq!(report.nranks, p);
            to_json(&net)
        });
        for (rank, json) in networks.iter().enumerate() {
            assert_eq!(json, &expected, "spmd p={p} rank={rank} diverged");
        }
    }
}

#[test]
fn identical_across_partition_strategies() {
    // The partitioning strategy changes who computes what (and the
    // simulated time), never the results.
    let d = dataset();
    let c = config();
    let (baseline, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    let expected = to_json(&baseline);
    for strategy in PartitionStrategy::ALL {
        let mut engine = SimEngine::new(64).with_strategy(strategy);
        let (net, _) = learn_module_network(&mut engine, &d, &c);
        assert_eq!(to_json(&net), expected, "{strategy:?} diverged");
    }
}

#[test]
fn identical_across_cost_models() {
    // The cost model only affects simulated clocks.
    let d = dataset();
    let c = config();
    let (a, ra) = learn_module_network(&mut SimEngine::new(32), &d, &c);
    let (b, rb) = learn_module_network(
        &mut SimEngine::with_model(32, CostModel::free_comm()),
        &d,
        &c,
    );
    assert_eq!(a, b);
    // But the timings do differ: free comm is faster.
    assert!(rb.total_s() < ra.total_s());
    assert_eq!(rb.comm_s(), 0.0);
}

#[test]
fn identical_across_split_scoring_paths() {
    // The batched prefix-sum kernel and the naive per-candidate pass
    // compute bit-identical separation scores (DESIGN.md §7), so the
    // end-to-end learned network must be byte-identical too — under
    // both score-computation modes and across engines.
    let d = dataset();
    let mut naive_cfg = config();
    naive_cfg.tree.split_scoring = mn_score::SplitScoring::Naive;
    let mut kernel_cfg = config();
    kernel_cfg.tree.split_scoring = mn_score::SplitScoring::Kernel;
    for mode in [mn_score::ScoreMode::Incremental, mn_score::ScoreMode::Reference] {
        naive_cfg.tree.mode = mode;
        kernel_cfg.tree.mode = mode;
        let (a, _) = learn_module_network(&mut SerialEngine::new(), &d, &naive_cfg);
        let expected = to_json(&a);
        let (b, _) = learn_module_network(&mut SerialEngine::new(), &d, &kernel_cfg);
        assert_eq!(to_json(&b), expected, "serial kernel diverged ({mode:?})");
        let (c, _) = learn_module_network(&mut ThreadEngine::new(4), &d, &kernel_cfg);
        assert_eq!(to_json(&c), expected, "thread kernel diverged ({mode:?})");
        let (e, _) = learn_module_network(&mut SimEngine::new(1024), &d, &kernel_cfg);
        assert_eq!(to_json(&e), expected, "sim kernel diverged ({mode:?})");
    }
}

#[test]
fn different_seeds_learn_different_networks() {
    let d = dataset();
    let (a, _) = learn_module_network(&mut SerialEngine::new(), &d, &LearnerConfig::paper_minimum(1));
    let (b, _) = learn_module_network(&mut SerialEngine::new(), &d, &LearnerConfig::paper_minimum(2));
    assert_ne!(
        to_json(&a),
        to_json(&b),
        "different seeds should explore different networks"
    );
}

#[test]
fn repeated_runs_are_bitwise_stable() {
    let d = dataset();
    let c = config();
    let (a, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    let (b, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);
    assert_eq!(to_json(&a), to_json(&b));
}
