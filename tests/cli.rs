//! End-to-end tests of the `monet` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn monet_bin() -> PathBuf {
    // Integration tests live next to the binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // the deps/ directory
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("monet")
}

#[test]
fn cli_learns_from_synthetic_and_writes_outputs() {
    let dir = std::env::temp_dir();
    let xml = dir.join("monet_cli_test.xml");
    let json = dir.join("monet_cli_test.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "24,16",
            "--seed",
            "5",
            "--xml",
            xml.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
            "--dag",
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("learned"), "stdout: {stdout}");
    assert!(stdout.contains("acyclic module graph"));

    let xml_text = std::fs::read_to_string(&xml).unwrap();
    assert!(xml_text.starts_with("<?xml"));
    let json_text = std::fs::read_to_string(&json).unwrap();
    let network = monet::from_json(&json_text).unwrap();
    network.validate();
    std::fs::remove_file(xml).ok();
    std::fs::remove_file(json).ok();
}

#[test]
fn cli_reads_tsv_and_respects_candidates() {
    let dir = std::env::temp_dir();
    let tsv = dir.join("monet_cli_data.tsv");
    let cand = dir.join("monet_cli_cands.txt");
    let data = mn_data::synthetic::yeast_like(20, 14, 9).dataset;
    mn_data::write_tsv_file(&data, &tsv).unwrap();
    std::fs::write(&cand, "G0 G1 G2\n").unwrap();

    let output = Command::new(monet_bin())
        .args([
            "--input",
            tsv.to_str().unwrap(),
            "--candidates",
            cand.to_str().unwrap(),
            "--engine",
            "sim:64",
            "--quiet",
            "--json",
            dir.join("monet_cli_net2.json").to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let network =
        monet::from_json(&std::fs::read_to_string(dir.join("monet_cli_net2.json")).unwrap())
            .unwrap();
    // Only G0..G2 may appear as parents.
    for module in &network.modules {
        for &var in module.parents.weighted.keys() {
            assert!(var < 3, "unexpected parent {var}");
        }
    }
    std::fs::remove_file(tsv).ok();
    std::fs::remove_file(cand).ok();
    std::fs::remove_file(dir.join("monet_cli_net2.json")).ok();
}

#[test]
fn cli_engine_choice_does_not_change_the_network() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (engine, tag) in [("serial", "a"), ("threads:3", "b"), ("sim:512", "c")] {
        let json = dir.join(format!("monet_cli_det_{tag}.json"));
        let output = Command::new(monet_bin())
            .args([
                "--synthetic",
                "20,14",
                "--seed",
                "7",
                "--engine",
                engine,
                "--quiet",
                "--json",
                json.to_str().unwrap(),
            ])
            .output()
            .expect("run monet");
        assert!(output.status.success());
        outputs.push(std::fs::read_to_string(&json).unwrap());
        std::fs::remove_file(json).ok();
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn cli_writes_trace_and_metrics_and_quiet_silences_stdout() {
    let dir = std::env::temp_dir();
    let trace = dir.join("monet_cli_trace.json");
    let metrics = dir.join("monet_cli_metrics.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "20,14",
            "--seed",
            "7",
            "--engine",
            "sim:4",
            "--quiet",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // --quiet: no stdout summary, no stderr progress notes.
    assert!(output.stdout.is_empty(), "stdout not quiet: {:?}", output.stdout);
    assert!(output.stderr.is_empty(), "stderr not quiet: {:?}", output.stderr);

    // The trace is valid chrome://tracing JSON with one track per rank.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let value: serde_json::Value = serde_json::from_str(&trace_text).unwrap();
    let events = value["traceEvents"].as_array().expect("traceEvents");
    let tracks = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
        .count();
    assert_eq!(tracks, 4, "expected one track per rank");

    // The metrics parse back and refine the embedded report: each
    // engine phase reappears as a depth-1 span with the same (simulated)
    // elapsed time.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    let run: monet::RunMetrics = serde_json::from_str(&metrics_text).unwrap();
    assert_eq!(run.nranks, 4);
    assert!(!run.report.phases.is_empty());
    for phase in &run.report.phases {
        let path = format!("run/{}", phase.name);
        let span = run
            .spans
            .iter()
            .find(|s| s.path == path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        assert!(
            (span.elapsed_s - phase.elapsed_s).abs() < 1e-9,
            "span {path} elapsed {} != phase {}",
            span.elapsed_s,
            phase.elapsed_s
        );
    }
    assert!(run.counters["splits.scored"] > 0);
    std::fs::remove_file(trace).ok();
    std::fs::remove_file(metrics).ok();
}

#[test]
fn cli_msg_engine_matches_serial_network() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (engine, tag) in [("serial", "m0"), ("msg:3", "m1")] {
        let json = dir.join(format!("monet_cli_msg_{tag}.json"));
        let output = Command::new(monet_bin())
            .args([
                "--synthetic",
                "18,12",
                "--seed",
                "4",
                "--engine",
                engine,
                "--quiet",
                "--json",
                json.to_str().unwrap(),
            ])
            .output()
            .expect("run monet");
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        outputs.push(std::fs::read_to_string(&json).unwrap());
        std::fs::remove_file(json).ok();
    }
    assert_eq!(outputs[0], outputs[1], "msg engine changed the network");
}

#[test]
fn cli_non_finite_input_is_a_clean_typed_error() {
    // A NaN cell must exit nonzero with the typed DataError message
    // (line/column/value), not a panic backtrace.
    let dir = std::env::temp_dir();
    let tsv = dir.join("monet_cli_nan.tsv");
    std::fs::write(&tsv, "gene\to1\to2\nG0\t1.0\t2.0\nG1\tNaN\t0.5\n").unwrap();
    let output = Command::new(monet_bin())
        .args(["--input", tsv.to_str().unwrap()])
        .output()
        .expect("run monet");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("non-finite") && stderr.contains("line 3"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_file(tsv).ok();
}

/// A scratch checkpoint directory plus the common argument set the
/// fault/resume CLI tests share.
fn checkpoint_scenario(tag: &str) -> (PathBuf, Vec<String>) {
    let ckpt = std::env::temp_dir().join(format!("monet_cli_ckpt_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&ckpt).ok();
    let args = [
        "--synthetic",
        "18,12",
        "--seed",
        "4",
        "--ganesh-runs",
        "2",
        "--quiet",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        // Failed runs always dump flight recorders; aim the default
        // at the scratch dir (callers may override with a later
        // --flightrec-dir) so no test litters the working directory.
        "--flightrec-dir",
        ckpt.to_str().unwrap(),
    ]
    .map(String::from)
    .to_vec();
    (ckpt, args)
}

#[test]
fn cli_fault_kill_then_resume_reproduces_uninterrupted_network() {
    let dir = std::env::temp_dir();

    // Uninterrupted, checkpoint-free reference network.
    let ref_json = dir.join("monet_cli_fr_ref.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "18,12",
            "--seed",
            "4",
            "--ganesh-runs",
            "2",
            "--quiet",
            "--json",
            ref_json.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(output.status.success());

    for engine in ["serial", "msg:3"] {
        let tag = engine.replace(':', "_");
        let (ckpt, args) = checkpoint_scenario(&tag);
        let nranks = if engine == "serial" { 1 } else { 3 };
        let frec = dir.join(format!("monet_cli_frec_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&frec).ok();

        // Phase 1: inject a kill mid-run. Fault aborts exit with 3 and
        // a descriptive message, never a panic trace.
        let output = Command::new(monet_bin())
            .args(&args)
            .args(["--engine", engine, "--fault", "kill:0@40"])
            .args(["--flightrec-dir", frec.to_str().unwrap()])
            .output()
            .expect("run monet");
        assert_eq!(
            output.status.code(),
            Some(3),
            "{engine}: stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("injected kill"), "{engine}: stderr: {stderr}");
        assert!(!stderr.contains("panicked"), "{engine}: stderr: {stderr}");
        assert!(
            ckpt.join("manifest.json").exists(),
            "{engine}: killed run left no checkpoint"
        );

        // Every failed run leaves one parseable black box per rank.
        for rank in 0..nranks {
            let dump = frec.join(format!("flightrec-rank{rank}.jsonl"));
            let text = std::fs::read_to_string(&dump).unwrap_or_else(|e| {
                panic!("{engine}: missing dump {}: {e}", dump.display())
            });
            mn_comm::obs::flightrec::parse_dump(&text)
                .unwrap_or_else(|e| panic!("{engine}: rank {rank} dump unparseable: {e}"));
        }
        // The killed rank's dump records the injection itself.
        let victim_dump = std::fs::read_to_string(frec.join("flightrec-rank0.jsonl")).unwrap();
        assert!(
            victim_dump.contains("fault-injected"),
            "{engine}: kill not in victim dump"
        );
        std::fs::remove_dir_all(&frec).ok();

        // Phase 2: --resume finishes the run; the network is identical
        // to the uninterrupted reference.
        let json = dir.join(format!("monet_cli_fr_{tag}.json"));
        let output = Command::new(monet_bin())
            .args(&args)
            .args(["--engine", engine, "--resume", "--json", json.to_str().unwrap()])
            .output()
            .expect("run monet");
        assert!(
            output.status.success(),
            "{engine}: resume failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert_eq!(
            std::fs::read_to_string(&json).unwrap(),
            std::fs::read_to_string(&ref_json).unwrap(),
            "{engine}: resumed network diverged"
        );
        std::fs::remove_file(json).ok();
        std::fs::remove_dir_all(&ckpt).ok();
    }
    std::fs::remove_file(ref_json).ok();
}

#[test]
fn cli_corrupt_checkpoint_is_a_clean_error_and_force_restart_recovers() {
    let (ckpt, args) = checkpoint_scenario("corrupt");

    // Seed a valid checkpoint, then corrupt the manifest.
    let output = Command::new(monet_bin()).args(&args).output().expect("run monet");
    assert!(output.status.success());
    let manifest = ckpt.join("manifest.json");
    std::fs::write(&manifest, "{\"version\": 1, \"truncated").unwrap();

    // --resume on garbage: descriptive error, exit 1, no panic.
    let output = Command::new(monet_bin())
        .args(&args)
        .arg("--resume")
        .output()
        .expect("run monet");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("corrupt checkpoint"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // --resume --force-restart wipes the directory and completes.
    let output = Command::new(monet_bin())
        .args(&args)
        .args(["--resume", "--force-restart"])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn cli_resume_with_no_checkpoint_is_a_clean_error() {
    let (ckpt, args) = checkpoint_scenario("missing");
    let output = Command::new(monet_bin())
        .args(&args)
        .arg("--resume")
        .output()
        .expect("run monet");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no checkpoint manifest"), "stderr: {stderr}");
    std::fs::remove_dir_all(&ckpt).ok();
}

/// The quiet-able sink and the chrome-trace exporter survive a rank
/// death on the real fabric: a mid-run kill under `--quiet --trace`
/// must still produce a well-formed post-mortem trace (from the dying
/// rank's stashed snapshot), keep stdout silent, and never print a
/// panic backtrace.
#[test]
fn cli_quiet_trace_survive_msg_rank_death() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("monet_cli_pm_trace_{}.json", std::process::id()));
    let frec = dir.join(format!("monet_cli_pm_frec_{}", std::process::id()));
    std::fs::remove_dir_all(&frec).ok();
    std::fs::remove_file(&trace).ok();
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "18,12",
            "--seed",
            "4",
            "--engine",
            "msg:4",
            "--quiet",
            "--fault",
            "kill:1@60",
            "--trace",
            trace.to_str().unwrap(),
            "--flightrec-dir",
            frec.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert_eq!(
        output.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.stdout.is_empty(), "stdout not quiet: {:?}", output.stdout);
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    // The post-mortem trace is well-formed chrome://tracing JSON even
    // though a rank died mid-run.
    let trace_text = std::fs::read_to_string(&trace).expect("post-mortem trace missing");
    let value: serde_json::Value =
        serde_json::from_str(&trace_text).expect("post-mortem trace is not valid JSON");
    assert!(
        !value["traceEvents"].as_array().expect("traceEvents").is_empty(),
        "post-mortem trace is empty"
    );
    // All four ranks dumped their black boxes.
    for rank in 0..4 {
        assert!(
            frec.join(format!("flightrec-rank{rank}.jsonl")).exists(),
            "rank {rank} dump missing"
        );
    }
    std::fs::remove_file(&trace).ok();
    std::fs::remove_dir_all(&frec).ok();
}

/// `--telemetry-out` streams versioned JSONL: line 0 is a full
/// snapshot, every line parses, carries the schema version, and `seq`
/// is monotone.
#[test]
fn cli_telemetry_stream_is_versioned_jsonl() {
    let dir = std::env::temp_dir();
    let tel = dir.join(format!("monet_cli_tel_{}.jsonl", std::process::id()));
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "20,14",
            "--seed",
            "7",
            "--engine",
            "msg:4",
            "--quiet",
            "--telemetry-out",
            tel.to_str().unwrap(),
            "--telemetry-interval-ms",
            "10",
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&tel).expect("telemetry stream missing");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "telemetry stream is empty");
    for (i, line) in lines.iter().enumerate() {
        let value: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i} unparseable: {e}"));
        assert_eq!(
            value["schema_version"].as_u64(),
            Some(mn_comm::obs::TELEMETRY_SCHEMA_VERSION as u64),
            "line {i} schema version"
        );
        assert_eq!(value["seq"].as_u64(), Some(i as u64), "seq not monotone");
        let kind = value["kind"].as_str().expect("kind");
        if i == 0 {
            assert_eq!(kind, "snapshot", "line 0 must be a full snapshot");
            assert_eq!(value["nranks"].as_u64(), Some(4));
        } else {
            assert!(
                kind == "delta" || kind == "heartbeat",
                "line {i}: unexpected kind {kind}"
            );
        }
    }
    std::fs::remove_file(&tel).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    // No input source.
    let output = Command::new(monet_bin()).output().expect("run monet");
    assert!(!output.status.success());
    // Bad engine.
    let output = Command::new(monet_bin())
        .args(["--synthetic", "10,10", "--engine", "gpu"])
        .output()
        .expect("run monet");
    assert!(!output.status.success());
    // Missing file.
    let output = Command::new(monet_bin())
        .args(["--input", "/nonexistent/file.tsv"])
        .output()
        .expect("run monet");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error"), "stderr: {stderr}");
    // --resume without --checkpoint-dir is a usage error (exit 2).
    let output = Command::new(monet_bin())
        .args(["--synthetic", "10,10", "--resume"])
        .output()
        .expect("run monet");
    assert_eq!(output.status.code(), Some(2));
    // Malformed --fault spec.
    let output = Command::new(monet_bin())
        .args(["--synthetic", "10,10", "--fault", "explode:everything"])
        .output()
        .expect("run monet");
    assert_eq!(output.status.code(), Some(1));
}
