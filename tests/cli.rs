//! End-to-end tests of the `monet` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn monet_bin() -> PathBuf {
    // Integration tests live next to the binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // the deps/ directory
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("monet")
}

#[test]
fn cli_learns_from_synthetic_and_writes_outputs() {
    let dir = std::env::temp_dir();
    let xml = dir.join("monet_cli_test.xml");
    let json = dir.join("monet_cli_test.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "24,16",
            "--seed",
            "5",
            "--xml",
            xml.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
            "--dag",
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("learned"), "stdout: {stdout}");
    assert!(stdout.contains("acyclic module graph"));

    let xml_text = std::fs::read_to_string(&xml).unwrap();
    assert!(xml_text.starts_with("<?xml"));
    let json_text = std::fs::read_to_string(&json).unwrap();
    let network = monet::from_json(&json_text).unwrap();
    network.validate();
    std::fs::remove_file(xml).ok();
    std::fs::remove_file(json).ok();
}

#[test]
fn cli_reads_tsv_and_respects_candidates() {
    let dir = std::env::temp_dir();
    let tsv = dir.join("monet_cli_data.tsv");
    let cand = dir.join("monet_cli_cands.txt");
    let data = mn_data::synthetic::yeast_like(20, 14, 9).dataset;
    mn_data::write_tsv_file(&data, &tsv).unwrap();
    std::fs::write(&cand, "G0 G1 G2\n").unwrap();

    let output = Command::new(monet_bin())
        .args([
            "--input",
            tsv.to_str().unwrap(),
            "--candidates",
            cand.to_str().unwrap(),
            "--engine",
            "sim:64",
            "--quiet",
            "--json",
            dir.join("monet_cli_net2.json").to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let network =
        monet::from_json(&std::fs::read_to_string(dir.join("monet_cli_net2.json")).unwrap())
            .unwrap();
    // Only G0..G2 may appear as parents.
    for module in &network.modules {
        for &var in module.parents.weighted.keys() {
            assert!(var < 3, "unexpected parent {var}");
        }
    }
    std::fs::remove_file(tsv).ok();
    std::fs::remove_file(cand).ok();
    std::fs::remove_file(dir.join("monet_cli_net2.json")).ok();
}

#[test]
fn cli_engine_choice_does_not_change_the_network() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (engine, tag) in [("serial", "a"), ("threads:3", "b"), ("sim:512", "c")] {
        let json = dir.join(format!("monet_cli_det_{tag}.json"));
        let output = Command::new(monet_bin())
            .args([
                "--synthetic",
                "20,14",
                "--seed",
                "7",
                "--engine",
                engine,
                "--quiet",
                "--json",
                json.to_str().unwrap(),
            ])
            .output()
            .expect("run monet");
        assert!(output.status.success());
        outputs.push(std::fs::read_to_string(&json).unwrap());
        std::fs::remove_file(json).ok();
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn cli_writes_trace_and_metrics_and_quiet_silences_stdout() {
    let dir = std::env::temp_dir();
    let trace = dir.join("monet_cli_trace.json");
    let metrics = dir.join("monet_cli_metrics.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "20,14",
            "--seed",
            "7",
            "--engine",
            "sim:4",
            "--quiet",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // --quiet: no stdout summary, no stderr progress notes.
    assert!(output.stdout.is_empty(), "stdout not quiet: {:?}", output.stdout);
    assert!(output.stderr.is_empty(), "stderr not quiet: {:?}", output.stderr);

    // The trace is valid chrome://tracing JSON with one track per rank.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let value: serde_json::Value = serde_json::from_str(&trace_text).unwrap();
    let events = value["traceEvents"].as_array().expect("traceEvents");
    let tracks = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
        .count();
    assert_eq!(tracks, 4, "expected one track per rank");

    // The metrics parse back and refine the embedded report: each
    // engine phase reappears as a depth-1 span with the same (simulated)
    // elapsed time.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    let run: monet::RunMetrics = serde_json::from_str(&metrics_text).unwrap();
    assert_eq!(run.nranks, 4);
    assert!(!run.report.phases.is_empty());
    for phase in &run.report.phases {
        let path = format!("run/{}", phase.name);
        let span = run
            .spans
            .iter()
            .find(|s| s.path == path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        assert!(
            (span.elapsed_s - phase.elapsed_s).abs() < 1e-9,
            "span {path} elapsed {} != phase {}",
            span.elapsed_s,
            phase.elapsed_s
        );
    }
    assert!(run.counters["splits.scored"] > 0);
    std::fs::remove_file(trace).ok();
    std::fs::remove_file(metrics).ok();
}

#[test]
fn cli_msg_engine_matches_serial_network() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (engine, tag) in [("serial", "m0"), ("msg:3", "m1")] {
        let json = dir.join(format!("monet_cli_msg_{tag}.json"));
        let output = Command::new(monet_bin())
            .args([
                "--synthetic",
                "18,12",
                "--seed",
                "4",
                "--engine",
                engine,
                "--quiet",
                "--json",
                json.to_str().unwrap(),
            ])
            .output()
            .expect("run monet");
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        outputs.push(std::fs::read_to_string(&json).unwrap());
        std::fs::remove_file(json).ok();
    }
    assert_eq!(outputs[0], outputs[1], "msg engine changed the network");
}

#[test]
fn cli_rejects_bad_usage() {
    // No input source.
    let output = Command::new(monet_bin()).output().expect("run monet");
    assert!(!output.status.success());
    // Bad engine.
    let output = Command::new(monet_bin())
        .args(["--synthetic", "10,10", "--engine", "gpu"])
        .output()
        .expect("run monet");
    assert!(!output.status.success());
    // Missing file.
    let output = Command::new(monet_bin())
        .args(["--input", "/nonexistent/file.tsv"])
        .output()
        .expect("run monet");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error"), "stderr: {stderr}");
}
