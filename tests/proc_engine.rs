//! End-to-end tests of the multi-process engine (`--engine proc:<p>`):
//! a supervisor spawns one `monet worker` OS process per rank and
//! routes the msg fabric over a Unix-domain socket. These tests cover
//! the acceptance drills from DESIGN.md §15: byte-identity with the
//! in-process engines, the real-SIGKILL kill-resume drill, bounded
//! handshake timeouts, and black-box dumps from terminated workers.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use mn_comm::obs::flightrec::{det_overlap_matches, parse_dump, FlightRecord};

fn monet_bin() -> PathBuf {
    // Integration tests live next to the binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // the deps/ directory
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("monet")
}

/// Run one learning job with `extra` on top of a fixed scenario,
/// returning the raw process output.
fn run_scenario(extra: &[&str]) -> std::process::Output {
    Command::new(monet_bin())
        .args(["--synthetic", "30,20", "--seed", "4", "--quiet"])
        .args(extra)
        .output()
        .expect("run monet")
}

/// Parse a rank's dump and keep only the deterministic-class records
/// (the cross-rank comparable half of the black box).
fn det_records(path: &std::path::Path) -> Vec<FlightRecord> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing dump {}: {e}", path.display()));
    parse_dump(&text)
        .unwrap_or_else(|e| panic!("dump {} unparseable: {e}", path.display()))
        .into_iter()
        .filter(|r| r.event.is_deterministic())
        .collect()
}

/// The learned network must not depend on process boundaries: serial,
/// in-process msg, and multi-process proc at several rank counts all
/// produce byte-identical JSON.
#[test]
fn proc_engine_matches_serial_byte_identically() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for (engine, tag) in [("serial", "s"), ("msg:4", "m4"), ("proc:2", "p2"), ("proc:4", "p4")] {
        let json = dir.join(format!("monet_proc_det_{tag}_{}.json", std::process::id()));
        let output = run_scenario(&["--engine", engine, "--json", json.to_str().unwrap()]);
        assert!(
            output.status.success(),
            "{engine}: stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        outputs.push((engine, std::fs::read_to_string(&json).unwrap()));
        std::fs::remove_file(json).ok();
    }
    for (engine, text) in &outputs[1..] {
        assert_eq!(text, &outputs[0].1, "{engine} changed the network");
    }
}

/// The full kill-resume drill: a *real* `SIGKILL` (not an injected
/// panic) takes out rank 2 mid-run. The supervisor must detect the
/// death within the heartbeat bound, exit 3 with a one-line diagnosis
/// naming the dead rank, and leave one parseable flight-recorder dump
/// per rank whose deterministic rings replay-match the survivors'.
/// A fresh `--resume` at p' = 3 then finishes the job byte-identically
/// to an uninterrupted serial run — elastic restart across a real
/// process boundary.
#[test]
fn proc_sigkill_drill_diagnoses_dumps_and_resumes_elastically() {
    let dir = std::env::temp_dir();
    let id = std::process::id();
    let ckpt = dir.join(format!("monet_proc_drill_ckpt_{id}"));
    let frec = dir.join(format!("monet_proc_drill_frec_{id}"));
    std::fs::remove_dir_all(&ckpt).ok();
    std::fs::remove_dir_all(&frec).ok();

    // Uninterrupted, checkpoint-free reference network.
    let ref_json = dir.join(format!("monet_proc_drill_ref_{id}.json"));
    let output = run_scenario(&["--json", ref_json.to_str().unwrap()]);
    assert!(output.status.success());

    // Phase 1: rank 2 really dies (SIGKILL raised on its own process).
    let started = Instant::now();
    let output = run_scenario(&[
        "--engine",
        "proc:4",
        "--fault",
        "sigkill:2@50",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--flightrec-dir",
        frec.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(3), "stderr: {stderr}");
    assert!(
        stderr.contains("rank 2") && stderr.contains("died"),
        "diagnosis does not name the dead rank: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    // Detection is bounded: well under the 2 s heartbeat timeout plus
    // slack, never a hang.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "kill detection took {:?}",
        started.elapsed()
    );
    assert!(ckpt.join("manifest.json").exists(), "no checkpoint survived the kill");

    // Every rank — including the SIGKILLed one, which dumps just
    // before raising the signal — left a parseable black box, and the
    // victim's deterministic ring replay-matches each survivor's on
    // their overlap window.
    let victim = det_records(&frec.join("flightrec-rank2.jsonl"));
    assert!(!victim.is_empty(), "killed rank recorded no deterministic events");
    for survivor in [0usize, 1, 3] {
        let records = det_records(&frec.join(format!("flightrec-rank{survivor}.jsonl")));
        let overlap = det_overlap_matches(&victim, &records)
            .unwrap_or_else(|e| panic!("rank 2 vs rank {survivor}: {e}"));
        assert!(overlap > 0, "rank 2 and rank {survivor} share no det window");
    }

    // Phase 2: resume with one fewer process. The v2 manifest is
    // partition-independent, so p' = 3 != p = 4 must still reproduce
    // the uninterrupted network byte for byte.
    let json = dir.join(format!("monet_proc_drill_resumed_{id}.json"));
    let output = run_scenario(&[
        "--engine",
        "proc:3",
        "--resume",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&json).unwrap(),
        std::fs::read_to_string(&ref_json).unwrap(),
        "elastic proc resume diverged from the uninterrupted network"
    );

    std::fs::remove_file(json).ok();
    std::fs::remove_file(ref_json).ok();
    std::fs::remove_dir_all(&ckpt).ok();
    std::fs::remove_dir_all(&frec).ok();
}

/// An *injected* fault on the proc engine surfaces exactly like a real
/// one: exit code 3 and a diagnosis naming the rank, never a panic
/// backtrace or a hang.
#[test]
fn proc_injected_kill_exits_3_with_diagnosis() {
    let frec = std::env::temp_dir().join(format!("monet_proc_inj_frec_{}", std::process::id()));
    std::fs::remove_dir_all(&frec).ok();
    let output = run_scenario(&[
        "--engine",
        "proc:2",
        "--fault",
        "kill:1@40",
        "--flightrec-dir",
        frec.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(3), "stderr: {stderr}");
    assert!(
        stderr.contains("rank 1") && stderr.contains("injected kill"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    // The victim's dump records the injection itself.
    let dump = std::fs::read_to_string(frec.join("flightrec-rank1.jsonl")).unwrap();
    assert!(dump.contains("fault-injected"), "injection not in victim dump");
    std::fs::remove_dir_all(&frec).ok();
}

/// A worker whose supervisor never appears must fail with a typed
/// timeout inside the configured bound — exit 3, not a hang.
#[test]
fn proc_worker_handshake_timeout_is_bounded() {
    let socket = std::env::temp_dir().join(format!("monet_proc_never_{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();
    let started = Instant::now();
    let output = Command::new(monet_bin())
        .args(["worker", "--proc-rank", "1", "--proc-nranks", "2"])
        .args(["--proc-socket", socket.to_str().unwrap()])
        .args(["--synthetic", "10,8", "--engine", "proc:2"])
        .args(["--comm-timeout-ms", "300", "--quiet"])
        .output()
        .expect("run monet worker");
    let elapsed = started.elapsed();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(3), "stderr: {stderr}");
    assert!(
        stderr.contains("handshake") && stderr.contains("timed out"),
        "stderr: {stderr}"
    );
    assert!(elapsed < Duration::from_secs(10), "timeout not bounded: {elapsed:?}");
}

/// Find the pid of the worker holding `socket` in its argv with
/// `--proc-rank <rank>`, polling /proc until it appears.
fn find_worker_pid(socket: &str, rank: usize, deadline: Duration) -> Option<u32> {
    let started = Instant::now();
    let rank = rank.to_string();
    while started.elapsed() < deadline {
        for entry in std::fs::read_dir("/proc").ok()?.flatten() {
            let name = entry.file_name();
            let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
                continue;
            };
            let Ok(raw) = std::fs::read(entry.path().join("cmdline")) else {
                continue;
            };
            let argv: Vec<&str> = raw
                .split(|&b| b == 0)
                .filter_map(|s| std::str::from_utf8(s).ok())
                .collect();
            let has_rank = argv
                .windows(2)
                .any(|w| w[0] == "--proc-rank" && w[1] == rank);
            // The supervisor renders the socket as `unix:<path>`;
            // match on the path suffix rather than the exact spelling.
            if has_rank && argv.iter().any(|a| a.ends_with(socket)) {
                return Some(pid);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// A `SIGTERM`ed worker flushes its flight ring to disk before dying,
/// and the supervisor diagnoses the departure as a death (the worker
/// never said goodbye) with exit code 3.
#[test]
fn proc_sigterm_dumps_flight_ring_before_exit() {
    let dir = std::env::temp_dir();
    let id = std::process::id();
    let frec = dir.join(format!("monet_proc_term_frec_{id}"));
    let socket = dir.join(format!("monet_proc_term_{id}.sock"));
    std::fs::remove_dir_all(&frec).ok();
    std::fs::remove_file(&socket).ok();

    // A long injected delay on rank 1 holds the run open so the test
    // can signal a live mid-run worker, not race a finished one.
    let mut child = Command::new(monet_bin())
        .args(["--synthetic", "30,20", "--seed", "4", "--quiet"])
        .args(["--engine", "proc:2", "--fault", "delay:1@30:10000"])
        .args(["--flightrec-dir", frec.to_str().unwrap()])
        .env("MN_PROC_ADDR", socket.to_str().unwrap())
        .spawn()
        .expect("spawn supervisor");

    let pid = find_worker_pid(socket.to_str().unwrap(), 1, Duration::from_secs(10))
        .expect("worker 1 never appeared in /proc");
    // Give the worker a beat to finish its handshake and install the
    // SIGTERM hook (it does so immediately after connecting).
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        mn_comm::sys::send_signal(pid, mn_comm::sys::SIGTERM),
        "SIGTERM delivery failed"
    );

    let status = child.wait().expect("wait supervisor");
    assert_eq!(status.code(), Some(3), "supervisor exit after worker SIGTERM");
    // The terminated worker's black box is on disk and parses.
    let records = det_records(&frec.join("flightrec-rank1.jsonl"));
    assert!(!records.is_empty(), "SIGTERMed worker dumped no deterministic events");
    std::fs::remove_dir_all(&frec).ok();
    std::fs::remove_file(&socket).ok();
}
