//! **Partition A/B suite** — the end-to-end invariance contract of the
//! cost-model-guided partitioning subsystem (DESIGN.md §14): for every
//! engine and every [`PartitionStrategy`], the full learner pipeline
//! produces the byte-identical network and the bit-identical
//! deterministic counters that the serial Block baseline produces.
//! Strategies may only move work between ranks (and change simulated /
//! measured time); they must never change a decision.
//!
//! The pipeline runs two GaneSH runs so the between-runs
//! `partition_feedback` hook fires and the adaptive strategies actually
//! re-plan mid-run.

use mn_comm::{ParEngine, PartitionStrategy, SerialEngine, SimEngine, ThreadEngine};
use mn_data::synthetic;
use monet::{learn_module_network, to_json, LearnerConfig};
use std::collections::BTreeMap;

fn dataset() -> mn_data::Dataset {
    synthetic::yeast_like(22, 16, 7).dataset
}

fn config() -> LearnerConfig {
    let mut c = LearnerConfig::paper_minimum(31);
    // Two runs so ganesh_ensemble's partition_feedback hook fires
    // between them and adaptive strategies re-plan mid-pipeline.
    c.ganesh_runs = 2;
    c
}

/// Run the pipeline on `engine` under `strategy`; return the network
/// JSON and the deterministic counters.
fn run_on<E: ParEngine>(
    mut engine: E,
    strategy: PartitionStrategy,
) -> (String, BTreeMap<String, u64>) {
    engine.set_partition_strategy(strategy);
    let d = dataset();
    let c = config();
    let (net, _) = learn_module_network(&mut engine, &d, &c);
    let now = engine.now_s();
    (to_json(&net), engine.obs().snapshot(now).counters)
}

#[test]
fn serial_engine_is_strategy_invariant() {
    let (expected_net, expected_counters) = run_on(SerialEngine::new(), PartitionStrategy::Block);
    for strategy in PartitionStrategy::ALL {
        let (net, counters) = run_on(SerialEngine::new(), strategy);
        assert_eq!(net, expected_net, "serial {strategy} changed the network");
        assert_eq!(
            counters, expected_counters,
            "serial {strategy} changed the counters"
        );
    }
}

#[test]
fn thread_engine_is_strategy_invariant() {
    let (expected_net, expected_counters) = run_on(ThreadEngine::new(3), PartitionStrategy::Block);
    // The serial Block run is the global reference: the network must
    // agree across engines too, not just across strategies.
    let (serial_net, _) = run_on(SerialEngine::new(), PartitionStrategy::Block);
    assert_eq!(expected_net, serial_net);
    for strategy in PartitionStrategy::ALL {
        let (net, counters) = run_on(ThreadEngine::new(3), strategy);
        assert_eq!(net, expected_net, "threads:3 {strategy} changed the network");
        assert_eq!(
            counters, expected_counters,
            "threads:3 {strategy} changed the counters"
        );
    }
}

#[test]
fn sim_engine_is_strategy_invariant_across_rank_counts() {
    let (serial_net, _) = run_on(SerialEngine::new(), PartitionStrategy::Block);
    for p in [4usize, 16] {
        let (expected_net, expected_counters) =
            run_on(SimEngine::new(p), PartitionStrategy::Block);
        assert_eq!(expected_net, serial_net, "sim:{p} Block diverged from serial");
        for strategy in PartitionStrategy::ALL {
            let (net, counters) = run_on(SimEngine::new(p), strategy);
            assert_eq!(net, expected_net, "sim:{p} {strategy} changed the network");
            assert_eq!(
                counters, expected_counters,
                "sim:{p} {strategy} changed the counters"
            );
        }
    }
}

#[test]
fn msg_engine_is_strategy_invariant_on_every_rank() {
    let (serial_net, serial_counters) = run_on(SerialEngine::new(), PartitionStrategy::Block);
    let d = dataset();
    let c = config();
    for strategy in PartitionStrategy::ALL {
        let per_rank = mn_comm::spmd_run(3, |engine| {
            engine.set_partition_strategy(strategy);
            let (net, _) = learn_module_network(engine, &d, &c);
            let now = engine.now_s();
            (to_json(&net), engine.obs().snapshot(now).counters)
        });
        for (rank, (net, counters)) in per_rank.iter().enumerate() {
            assert_eq!(
                net, &serial_net,
                "msg:3 rank {rank} {strategy} changed the network"
            );
            // Counters are replicated control flow (mn-obs contract),
            // so every rank of every strategy matches serial Block.
            assert_eq!(
                counters, &serial_counters,
                "msg:3 rank {rank} {strategy} changed the counters"
            );
        }
    }
}
