//! Scaling-behaviour integration tests: the qualitative claims of the
//! paper's evaluation (§5.3) must hold on the simulation engine.
//!
//! The workloads here are scaled down by orders of magnitude from the
//! paper's genome-scale data sets, so the communication constants are
//! scaled down by the same factor (`CostModel::scaled_comm`) to keep
//! the compute:communication ratio representative — see EXPERIMENTS.md
//! for the calibration argument.

use mn_comm::{CostModel, SerialEngine, SimEngine};
use mn_data::synthetic;
use monet::{learn_module_network, phases, LearnerConfig};

/// Communication scale-down matching the workload scale-down.
const COMM_SCALE: f64 = 150.0;

fn dataset() -> mn_data::Dataset {
    synthetic::yeast_like(60, 40, 19).dataset
}

fn config() -> LearnerConfig {
    let mut c = LearnerConfig::paper_minimum(3);
    // A realistic initial cluster count keeps the task mix in the
    // paper's regime (see EXPERIMENTS.md).
    c.ganesh.init_clusters = Some(8);
    c
}

fn sim_report(p: usize) -> mn_comm::RunReport {
    let d = dataset();
    let (_, report) = learn_module_network(
        &mut SimEngine::with_model(p, CostModel::scaled_comm(COMM_SCALE)),
        &d,
        &config(),
    );
    report
}

fn simulated_total(p: usize) -> f64 {
    sim_report(p).total_s()
}

#[test]
fn simulated_runtime_decreases_with_ranks_then_saturates() {
    let t1 = simulated_total(1);
    let t4 = simulated_total(4);
    let t16 = simulated_total(16);
    let t64 = simulated_total(64);
    assert!(t4 < t1, "t4={t4} t1={t1}");
    assert!(t16 < t4, "t16={t16} t4={t4}");
    assert!(t64 < t16, "t64={t64} t16={t16}");
    // Speedup is sublinear at larger p (comm + imbalance), the paper's
    // tapering observation.
    let s64 = t1 / t64;
    assert!(s64 < 64.0, "speedup {s64} cannot exceed ideal");
    assert!(s64 > 4.0, "speedup {s64} too weak for 64 ranks");
}

#[test]
fn efficiency_declines_with_rank_count() {
    let t4 = simulated_total(4);
    let t64 = simulated_total(64);
    let t1024 = simulated_total(1024);
    let eff = |p: usize, tp: f64| 4.0 * t4 / (p as f64 * tp);
    assert!(eff(64, t64) <= 1.01);
    assert!(
        eff(1024, t1024) < eff(64, t64),
        "relative efficiency must decline: {} vs {}",
        eff(1024, t1024),
        eff(64, t64)
    );
}

#[test]
fn module_task_dominates_and_consensus_negligible() {
    // Fig. 5a's breakdown claims, checked on the simulated timeline at
    // p = 1 (the sequential breakdown).
    let report = sim_report(1);
    let modules = report.phase_s(phases::MODULES);
    let ganesh = report.phase_s(phases::GANESH);
    let consensus = report.phase_s(phases::CONSENSUS);
    assert!(
        modules > ganesh,
        "module learning ({modules}) must dominate GaneSH ({ganesh})"
    );
    assert!(
        consensus < 0.05 * report.total_s(),
        "consensus ({consensus}) must be negligible vs total {}",
        report.total_s()
    );
}

#[test]
fn ganesh_share_grows_at_scale() {
    // The paper's Fig. 5c observation: "Figure 5c shows a higher
    // percentage of run-time in the GaneSH task on 1024 cores, when
    // compared to Figure 5a" — GaneSH stops scaling before the module
    // task does.
    let share = |report: &mn_comm::RunReport| {
        report.phase_s(phases::GANESH) / report.total_s()
    };
    let at_1 = share(&sim_report(1));
    let at_1024 = share(&sim_report(1024));
    assert!(
        at_1024 > at_1,
        "GaneSH share must grow with p: {at_1:.3} -> {at_1024:.3}"
    );
}

#[test]
fn split_loop_imbalance_grows_with_ranks() {
    // §5.3.1: "the imbalance steadily increases" with p.
    let imbalance = |p: usize| sim_report(p).phase_imbalance(phases::MODULES);
    let low = imbalance(4);
    let high = imbalance(1024);
    assert!(
        high > low,
        "imbalance must grow with p: p=4 -> {low}, p=1024 -> {high}"
    );
}

#[test]
fn serial_wall_clock_grows_with_observations() {
    // Fig. 3's qualitative claim at test scale: more observations,
    // more time (superlinear growth is asserted at bench scale).
    let run = |m: usize| {
        let d = synthetic::yeast_like(24, m, 9).dataset;
        let (_, report) =
            learn_module_network(&mut SerialEngine::new(), &d, &LearnerConfig::paper_minimum(3));
        report.total_s()
    };
    let t_small = run(10);
    let t_large = run(40);
    assert!(
        t_large > t_small,
        "runtime must grow with m: {t_small} vs {t_large}"
    );
}

#[test]
fn extreme_rank_counts_hit_an_amdahl_floor() {
    // Non-scaling components (small candidate lists, collective
    // latency) bound efficiency at extreme p — the paper's §5.3.2
    // observation (23.4 % relative efficiency at 4096 cores).
    let t64 = simulated_total(64);
    let t4096 = simulated_total(4096);
    let eff = 64.0 * t64 / (4096.0 * t4096);
    assert!(t4096 > 0.0);
    assert!(
        eff < 0.9,
        "relative efficiency at 4096 ranks suspiciously high: {eff}"
    );
}
