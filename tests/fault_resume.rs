//! Kill–resume equivalence: a run killed at an arbitrary fault point
//! and resumed from its fine-grained checkpoint must finish with the
//! network, counters, and phase sequence of an uninterrupted run —
//! bit-identically, on every engine.
//!
//! Fault points are deterministic event indices ([`mn_comm::FaultPlan`]):
//! engine events (each `dist_map*` / `collective` / `replicated` call)
//! on the single-process engines, per-endpoint fabric events
//! (sends + receives) on the message-passing engine. Each sweep probes
//! the event ranges of the three pipeline tasks first, then plants
//! kills across all of them — GaneSH mid-ensemble, consensus, and
//! module learning mid-task — so resume is exercised *within* tasks,
//! not just at stage boundaries.

use mn_comm::{
    silence_injected_panics, FaultPlan, ParEngine, SerialEngine, SimEngine, ThreadEngine,
};
use mn_data::{synthetic, Dataset};
use mn_obs::flightrec::{det_overlap_matches, parse_dump, FlightRecord};
use mn_obs::{FlightEvent, FlightRec};
use monet::stages::{run_consensus, run_ganesh, run_module_learning};
use monet::{learn_with_checkpoint, to_json, LearnerConfig};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn setup() -> (Dataset, LearnerConfig) {
    let mut config = LearnerConfig::paper_minimum(9);
    // Two GaneSH runs so task 1 spans multiple checkpoint units.
    config.ganesh_runs = 2;
    (synthetic::yeast_like(20, 14, 5).dataset, config)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("monet_fault_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Counters under the cross-run equivalence contract: everything
/// except the `checkpoint.*` bookkeeping (a resumed run legitimately
/// skips units the killed run wrote) and `fault.*` (reserved).
fn equivalence_counters<E: ParEngine>(engine: &E) -> BTreeMap<String, u64> {
    engine
        .obs()
        .counters()
        .iter()
        .filter(|(name, _)| !name.starts_with("checkpoint.") && !name.starts_with("fault."))
        .map(|(name, &v)| (name.clone(), v))
        .collect()
}

fn phase_names(report: &mn_comm::RunReport) -> Vec<String> {
    report.phases.iter().map(|p| p.name.clone()).collect()
}

/// Post-mortem dump contract: dumping `flight` into `dir` must produce
/// a parseable `flightrec-rank<k>.jsonl`. Returns the deterministic
/// records the dump holds, for replay comparison.
fn assert_dump(flight: &FlightRec, dir: &Path, label: &str) -> Vec<FlightRecord> {
    std::fs::create_dir_all(dir).unwrap();
    let path = flight
        .dump_to_dir(dir)
        .unwrap_or_else(|e| panic!("{label}: flight dump failed: {e}"));
    assert!(path.exists(), "{label}: dump missing at {}", path.display());
    let records = parse_dump(&std::fs::read_to_string(&path).unwrap())
        .unwrap_or_else(|e| panic!("{label}: dump unparseable: {e}"));
    records
        .into_iter()
        .filter(|r| r.event.is_deterministic())
        .collect()
}

/// The killed engine's black box must contain its own fault injection.
fn assert_fault_recorded(flight: &FlightRec, label: &str) {
    assert!(
        flight
            .local_events()
            .iter()
            .any(|r| matches!(r.event, FlightEvent::FaultInjected { .. })),
        "{label}: kill not recorded in flight recorder"
    );
}

/// A single-process engine the sweep can construct fresh or with a
/// fault plan, and whose deterministic event clock it can read.
trait SweepEngine: ParEngine + Sized {
    const LABEL: &'static str;
    fn fresh() -> Self;
    fn with_plan(plan: FaultPlan) -> Self;
    fn events(&self) -> u64;
}

impl SweepEngine for SerialEngine {
    const LABEL: &'static str = "serial";
    fn fresh() -> Self {
        SerialEngine::new()
    }
    fn with_plan(plan: FaultPlan) -> Self {
        SerialEngine::new().with_fault_plan(plan)
    }
    fn events(&self) -> u64 {
        self.fault_events()
    }
}

impl SweepEngine for ThreadEngine {
    const LABEL: &'static str = "threads:3";
    fn fresh() -> Self {
        ThreadEngine::new(3)
    }
    fn with_plan(plan: FaultPlan) -> Self {
        ThreadEngine::new(3).with_fault_plan(plan)
    }
    fn events(&self) -> u64 {
        self.fault_events()
    }
}

impl SweepEngine for SimEngine {
    const LABEL: &'static str = "sim:4";
    fn fresh() -> Self {
        SimEngine::new(4)
    }
    fn with_plan(plan: FaultPlan) -> Self {
        SimEngine::new(4).with_fault_plan(plan)
    }
    fn events(&self) -> u64 {
        self.fault_events()
    }
}

/// Engine-event index of the last event of each task, probed by
/// running the three stages and reading the fault clock in between.
/// The staged run and the checkpointed run issue the identical event
/// sequence (`staged_run_equals_one_shot_run` pins that), so these
/// boundaries are valid targets for kills inside a checkpointed run.
fn probe_task_boundaries<E: SweepEngine>(data: &Dataset, config: &LearnerConfig) -> (u64, u64, u64) {
    let mut engine = E::fresh();
    let t1 = run_ganesh(&mut engine, data, config);
    let e1 = engine.events();
    let t2 = run_consensus(&mut engine, data, config, &t1);
    let e2 = engine.events();
    run_module_learning(&mut engine, data, config, &t2);
    let e3 = engine.events();
    (e1, e2, e3)
}

/// Fault points covering all three tasks: early / mid / end of task 1,
/// the consensus event, and early / mid / final events of task 3.
fn fault_points(e1: u64, e2: u64, e3: u64) -> Vec<u64> {
    let mut points = vec![1, e1.div_ceil(2), e1, e2, e2 + 1, e2 + (e3 - e2).div_ceil(2), e3];
    points.sort_unstable();
    points.dedup();
    points
}

fn sweep_single_process<E: SweepEngine>() {
    silence_injected_panics();
    let (d, c) = setup();

    // Uninterrupted, checkpoint-free reference.
    let mut ref_engine = E::fresh();
    let (ref_net, ref_report) = monet::learn_module_network(&mut ref_engine, &d, &c);
    let ref_json = to_json(&ref_net);
    let ref_counters = equivalence_counters(&ref_engine);

    let (e1, e2, e3) = probe_task_boundaries::<E>(&d, &c);
    assert!(e1 < e2 && e2 < e3, "degenerate task boundaries {e1}/{e2}/{e3}");

    // Fault-free *checkpointed* reference flight: a killed checkpointed
    // run must replay-match its deterministic prefix (the CkptUnit
    // events only exist on the checkpointed code path).
    let ref_dir = tmpdir(&format!("{}_flightref", E::LABEL));
    let mut flight_ref_engine = E::fresh();
    learn_with_checkpoint(&mut flight_ref_engine, &d, &c, &ref_dir).unwrap();
    let ref_det = flight_ref_engine.obs().flight().det_events();
    std::fs::remove_dir_all(&ref_dir).ok();

    for event in fault_points(e1, e2, e3) {
        let label = format!("{} kill@{event} (t1≤{e1}, t2≤{e2}, t3≤{e3})", E::LABEL);
        let dir = tmpdir(&format!("{}_{event}", E::LABEL));

        // Phase 1: run with a kill planted at `event`; the injected
        // crash unwinds out of the learner mid-run. Flight recorder and
        // death stash are held outside the unwind path, like the CLI
        // harness holds them.
        let mut engine = E::with_plan(FaultPlan::new().kill(0, event));
        let flight = engine.obs().flight();
        let stash = engine.death_stash();
        let killed = catch_unwind(AssertUnwindSafe(|| {
            learn_with_checkpoint(&mut engine, &d, &c, &dir)
        }));
        assert!(killed.is_err(), "{label}: fault did not fire");

        // Post-mortem contract at every fault point: the dead engine
        // left a dumpable black box recording its own kill, a stashed
        // final snapshot, and a deterministic record that replay-matches
        // the fault-free reference up to the moment of death.
        let dump_dir = tmpdir(&format!("{}_{event}_dump", E::LABEL));
        let dumped_det = assert_dump(&flight, &dump_dir, &label);
        std::fs::remove_dir_all(&dump_dir).ok();
        assert!(!dumped_det.is_empty(), "{label}: empty deterministic record");
        assert_fault_recorded(&flight, &label);
        assert!(stash.get().is_some(), "{label}: no death snapshot stashed");
        if let Err(e) = det_overlap_matches(&dumped_det, &ref_det) {
            panic!("{label}: flight replay mismatch: {e}");
        }

        // Phase 2: resume on a fresh, fault-free engine. Everything
        // observable must be bit-identical to the uninterrupted run.
        let mut engine = E::fresh();
        let (net, report) = learn_with_checkpoint(&mut engine, &d, &c, &dir)
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_eq!(to_json(&net), ref_json, "{label}: network diverged");
        assert_eq!(
            equivalence_counters(&engine),
            ref_counters,
            "{label}: counters diverged"
        );
        assert_eq!(
            phase_names(&report),
            phase_names(&ref_report),
            "{label}: phase sequence diverged"
        );
        assert_eq!(report.nranks, ref_report.nranks, "{label}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn kill_resume_equivalence_serial() {
    sweep_single_process::<SerialEngine>();
}

#[test]
fn kill_resume_equivalence_threads() {
    sweep_single_process::<ThreadEngine>();
}

#[test]
fn kill_resume_equivalence_sim() {
    sweep_single_process::<SimEngine>();
}

#[test]
fn kill_resume_equivalence_msg() {
    silence_injected_panics();
    let (d, c) = setup();
    let p = 3;

    // Uninterrupted, checkpoint-free reference (rank 0's view; the
    // determinism suite already asserts all ranks agree).
    let reference = mn_comm::spmd_run(p, |engine| {
        let (net, report) = monet::learn_module_network(engine, &d, &c);
        (
            to_json(&net),
            equivalence_counters(engine),
            phase_names(&report),
        )
    });
    let (ref_json, ref_counters, ref_phases) = reference[0].clone();

    // Probe the per-endpoint fabric-event total of a full checkpointed
    // run (checkpointing adds io_barrier traffic, so probe the same
    // code path the kills will interrupt), and keep its deterministic
    // flight record as the replay reference.
    let probe_dir = tmpdir("msg_probe");
    let probe = mn_comm::spmd_run(p, |engine| {
        learn_with_checkpoint(engine, &d, &c, &probe_dir).unwrap();
        (engine.endpoint().events(), engine.obs().flight().det_events())
    });
    std::fs::remove_dir_all(&probe_dir).ok();
    let total = probe.iter().map(|(e, _)| *e).min().unwrap();
    let ref_det = probe[0].1.clone();
    assert!(total > 12, "fabric event total {total} too small to sweep");

    // Kill the I/O rank (0) and a non-writer rank (1) at fabric events
    // spread over the whole run.
    let cases: Vec<(usize, u64)> = vec![
        (1, total / 6),
        (0, total / 3),
        (1, total / 2),
        (0, 2 * total / 3),
        (1, 5 * total / 6),
    ];
    for (victim, event) in cases {
        let label = format!("msg:{p} kill rank {victim}@{event}/{total}");
        let dir = tmpdir(&format!("msg_{victim}_{event}"));

        let (outcomes, capture) = mn_comm::spmd_run_faulty_recorded(
            p,
            FaultPlan::new().kill(victim, event),
            None,
            |engine| learn_with_checkpoint(engine, &d, &c, &dir).map(|_| ()),
        );
        assert!(
            outcomes[victim].is_err(),
            "{label}: victim survived: {outcomes:?}"
        );

        // Post-mortem contract: *every* rank — victim included — leaves
        // a parseable per-rank dump; the victim recorded its own kill
        // and stashed a final snapshot; and the victim's deterministic
        // record replay-matches every survivor and the fault-free
        // reference on the seq overlap window.
        let dump_dir = tmpdir(&format!("msg_{victim}_{event}_dump"));
        let per_rank_det: Vec<Vec<FlightRecord>> = capture
            .flights
            .iter()
            .enumerate()
            .map(|(rank, flight)| assert_dump(flight, &dump_dir, &format!("{label} rank {rank}")))
            .collect();
        std::fs::remove_dir_all(&dump_dir).ok();
        assert_fault_recorded(&capture.flights[victim], &label);
        assert!(
            capture.stashes[victim].get().is_some(),
            "{label}: victim left no death snapshot"
        );
        for rank in 0..p {
            if rank != victim {
                if let Err(e) = det_overlap_matches(&per_rank_det[victim], &per_rank_det[rank]) {
                    panic!("{label}: victim/rank-{rank} flight replay mismatch: {e}");
                }
            }
        }
        if let Err(e) = det_overlap_matches(&per_rank_det[victim], &ref_det) {
            panic!("{label}: victim/reference flight replay mismatch: {e}");
        }

        // Resume fault-free; every rank must reproduce the reference.
        let resumed = mn_comm::spmd_run(p, |engine| {
            let (net, report) = learn_with_checkpoint(engine, &d, &c, &dir)
                .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
            (
                to_json(&net),
                equivalence_counters(engine),
                phase_names(&report),
                report.nranks,
            )
        });
        for (rank, (json, counters, phases, nranks)) in resumed.iter().enumerate() {
            assert_eq!(json, &ref_json, "{label}: rank {rank} network diverged");
            assert_eq!(counters, &ref_counters, "{label}: rank {rank} counters diverged");
            assert_eq!(phases, &ref_phases, "{label}: rank {rank} phases diverged");
            assert_eq!(*nranks, p, "{label}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Recursive checkpoint-directory copy, so one killed run can seed two
/// independent resumes (the replay-determinism half of the elastic
/// contract).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Elastic restart (DESIGN.md §14): a run checkpointed at `p` ranks is
/// killed mid-task-3, then resumed at a *different* rank count `p′`.
/// Checkpoint units are rank-count independent (per GaneSH run / per
/// module tree), and the v2 manifest records the origin rank count as
/// provenance only, so the resume must succeed and finish with the
/// byte-identical network of an uninterrupted run — and two resumes
/// from the same checkpoint must replay-match each other's
/// deterministic flight record.
fn elastic_resume<A: SweepEngine, B: ParEngine>(mk_resume: impl Fn() -> B, resume_label: &str) {
    silence_injected_panics();
    let (d, c) = setup();
    let (ref_net, _) = monet::learn_module_network(&mut SerialEngine::new(), &d, &c);
    let ref_json = to_json(&ref_net);

    let (e1, e2, e3) = probe_task_boundaries::<A>(&d, &c);
    assert!(e1 < e2 && e2 < e3, "degenerate task boundaries {e1}/{e2}/{e3}");
    // Mid task 3: the checkpoint holds completed task-1 and task-2
    // units plus a partial tree sweep when the kill lands.
    let event = e2 + (e3 - e2).div_ceil(2);
    let label = format!("{} kill@{event} → resume {resume_label}", A::LABEL);
    let dir = tmpdir(&format!("elastic_{}_{resume_label}", A::LABEL));

    let mut engine = A::with_plan(FaultPlan::new().kill(0, event));
    let killed = catch_unwind(AssertUnwindSafe(|| {
        learn_with_checkpoint(&mut engine, &d, &c, &dir)
    }));
    assert!(killed.is_err(), "{label}: fault did not fire");

    // Duplicate the dead run's checkpoint so the second resume sees the
    // same starting state (the first resume completes the store).
    let dir_b = tmpdir(&format!("elastic_{}_{resume_label}_b", A::LABEL));
    copy_dir(&dir, &dir_b);

    let mut first = mk_resume();
    let (net, _) = learn_with_checkpoint(&mut first, &d, &c, &dir)
        .unwrap_or_else(|e| panic!("{label}: elastic resume failed: {e}"));
    assert_eq!(to_json(&net), ref_json, "{label}: network diverged");
    let det_first = first.obs().flight().det_events();

    let mut second = mk_resume();
    let (net2, _) = learn_with_checkpoint(&mut second, &d, &c, &dir_b)
        .unwrap_or_else(|e| panic!("{label}: second elastic resume failed: {e}"));
    assert_eq!(to_json(&net2), ref_json, "{label}: replayed network diverged");
    if let Err(e) = det_overlap_matches(&det_first, &second.obs().flight().det_events()) {
        panic!("{label}: elastic replay flight mismatch: {e}");
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn elastic_resume_serial_to_two_ranks() {
    // p = 1 → p′ = 2p: the serial checkpoint restarts on a parallel
    // engine.
    elastic_resume::<SerialEngine, _>(|| ThreadEngine::new(2), "threads:2");
}

#[test]
fn elastic_resume_threads_shrink_and_grow() {
    // p = 3 → p′ ∈ {p − 1, 2p}.
    elastic_resume::<ThreadEngine, _>(|| ThreadEngine::new(2), "threads:2");
    elastic_resume::<ThreadEngine, _>(|| ThreadEngine::new(6), "threads:6");
}

#[test]
fn elastic_resume_sim_shrink_and_grow() {
    // p = 4 → p′ ∈ {p − 1, 2p}.
    elastic_resume::<SimEngine, _>(|| SimEngine::new(3), "sim:3");
    elastic_resume::<SimEngine, _>(|| SimEngine::new(8), "sim:8");
}

#[test]
fn elastic_resume_msg_shrink_and_grow() {
    // The real fabric: checkpoint at p = 3 ranks, kill a non-writer
    // rank mid-run, resume the surviving store at p′ ∈ {2, 6}. Every
    // rank of the elastic resume must reproduce the uninterrupted
    // reference, and a second resume from a copy of the checkpoint
    // must replay-match the first's deterministic flight record.
    silence_injected_panics();
    let (d, c) = setup();
    let p = 3;
    let reference = mn_comm::spmd_run(p, |engine| {
        let (net, _) = monet::learn_module_network(engine, &d, &c);
        to_json(&net)
    });
    let ref_json = reference[0].clone();

    let probe_dir = tmpdir("msg_elastic_probe");
    let probe = mn_comm::spmd_run(p, |engine| {
        learn_with_checkpoint(engine, &d, &c, &probe_dir).unwrap();
        engine.endpoint().events()
    });
    std::fs::remove_dir_all(&probe_dir).ok();
    let total = probe.iter().copied().min().unwrap();

    for p_prime in [2usize, 6] {
        let label = format!("msg:{p} → msg:{p_prime}");
        let dir = tmpdir(&format!("msg_elastic_{p_prime}"));
        let (outcomes, _) = mn_comm::spmd_run_faulty_recorded(
            p,
            FaultPlan::new().kill(1, total / 2),
            None,
            |engine| learn_with_checkpoint(engine, &d, &c, &dir).map(|_| ()),
        );
        assert!(outcomes[1].is_err(), "{label}: victim survived");

        let dir_b = tmpdir(&format!("msg_elastic_{p_prime}_b"));
        copy_dir(&dir, &dir_b);

        let first = mn_comm::spmd_run(p_prime, |engine| {
            let (net, report) = learn_with_checkpoint(engine, &d, &c, &dir)
                .unwrap_or_else(|e| panic!("{label}: elastic resume failed: {e}"));
            assert_eq!(report.nranks, p_prime, "{label}");
            (to_json(&net), engine.obs().flight().det_events())
        });
        for (rank, (json, _)) in first.iter().enumerate() {
            assert_eq!(json, &ref_json, "{label}: rank {rank} network diverged");
        }
        let second = mn_comm::spmd_run(p_prime, |engine| {
            let (net, _) = learn_with_checkpoint(engine, &d, &c, &dir_b)
                .unwrap_or_else(|e| panic!("{label}: second elastic resume failed: {e}"));
            (to_json(&net), engine.obs().flight().det_events())
        });
        assert_eq!(second[0].0, ref_json, "{label}: replayed network diverged");
        if let Err(e) = det_overlap_matches(&first[0].1, &second[0].1) {
            panic!("{label}: elastic replay flight mismatch: {e}");
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}

#[test]
fn fault_free_checkpointed_msg_run_matches_plain_run() {
    // The fault-free half of the contract on the real fabric: enabling
    // checkpointing (including its uncounted io_barrier) must not
    // perturb the network or the equivalence counters.
    let (d, c) = setup();
    let p = 3;
    let plain = mn_comm::spmd_run(p, |engine| {
        let (net, _) = monet::learn_module_network(engine, &d, &c);
        (to_json(&net), equivalence_counters(engine))
    });
    let dir = tmpdir("msg_plain_eq");
    let ckpt = mn_comm::spmd_run(p, |engine| {
        let (net, _) = learn_with_checkpoint(engine, &d, &c, &dir).unwrap();
        (to_json(&net), equivalence_counters(engine))
    });
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(plain, ckpt);
}
