//! End-to-end tests of `monet-serve`: the long-lived multi-tenant
//! learning service (DESIGN.md §16).
//!
//! The server runs in-process on a Unix socket; clients speak the real
//! wire protocol. The batch-comparison tests additionally shell out to
//! the `monet` binary, asserting that a served job's result is
//! byte-identical to the batch CLI's `--json` output for the same
//! flags.

use mn_comm::msg::proc::{service_connect, ProcAddr};
use monet::LearnerConfig;
use monet_serve::client::Reply;
use monet_serve::{Client, ServeConfig, Server};
use serde::Content;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn monet_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("monet")
}

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("mnsrv_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct TestServer {
    addr: ProcAddr,
    state_dir: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(tag: &str, workers: usize, max_queue: usize) -> TestServer {
        let dir = fresh_dir(tag);
        let addr = ProcAddr::Unix(dir.join("sock"));
        let mut cfg = ServeConfig::new(addr, dir.join("state"));
        cfg.workers = workers;
        cfg.max_queue = max_queue;
        cfg.telemetry_interval = Duration::from_millis(10);
        let server = Server::bind(cfg).expect("bind server");
        let addr = server.local_addr().clone();
        let state_dir = dir.join("state");
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            state_dir,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    /// Ask the server to stop and wait for it.
    fn shutdown(mut self) {
        let _ = self.client().shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

fn ok(reply: std::io::Result<Reply>) -> Content {
    match reply.expect("rpc transport") {
        Reply::Ok(value) => value,
        Reply::Err(err) => panic!("unexpected typed error: {err}"),
    }
}

fn err(reply: std::io::Result<Reply>) -> monet_serve::ServeError {
    match reply.expect("rpc transport") {
        Reply::Ok(value) => panic!("expected an error, got {value:?}"),
        Reply::Err(err) => err,
    }
}

/// Poll a job's status until it reaches `want` (panics on timeout or
/// on reaching a different terminal state first).
fn wait_state(client: &mut Client, job: &str, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let status = ok(client.status(job));
        let state = status["state"].as_str().expect("state").to_string();
        if state == want {
            return;
        }
        let terminal = matches!(state.as_str(), "done" | "failed" | "cancelled");
        assert!(
            !terminal,
            "job {job} reached terminal state {state:?} while waiting for {want:?} ({:?})",
            status["error"].as_str()
        );
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {job} to reach {want:?} (currently {state:?})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn counters_of(value: &Content) -> BTreeMap<String, u64> {
    let Content::Map(pairs) = value else {
        panic!("counters is not a map: {value:?}")
    };
    pairs
        .iter()
        .filter(|(k, _)| !k.starts_with("checkpoint."))
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter value")))
        .collect()
}

/// A config that takes long enough (in a debug build) for suspension
/// and cancellation to land mid-run with a wide margin.
fn slow_config(seed: u64) -> LearnerConfig {
    let mut config = LearnerConfig::paper_minimum(seed);
    config.ganesh_runs = 2;
    config.tree.update_steps = 3; // --trees 2
    config.validated().unwrap()
}

#[test]
fn two_tenants_run_concurrently_with_consistent_accounting() {
    let server = TestServer::start("tenants", 2, 16);
    let mut alice = server.client();
    let mut bob = server.client();

    ok(alice.register_synthetic("alice", "expr", 16, 12, 3));
    ok(bob.register_synthetic("bob", "expr", 14, 10, 4));

    let cfg_a = LearnerConfig::paper_minimum(3);
    let cfg_b = LearnerConfig::paper_minimum(4);
    let job_a = ok(alice.submit("alice", "expr", "threads:2", &cfg_a))["job"]
        .as_str()
        .unwrap()
        .to_string();
    let job_b = ok(bob.submit("bob", "expr", "serial", &cfg_b))["job"]
        .as_str()
        .unwrap()
        .to_string();

    wait_state(&mut alice, &job_a, "done", Duration::from_secs(120));
    wait_state(&mut bob, &job_b, "done", Duration::from_secs(120));

    // Both tenants get valid, tenant-isolated results.
    let result_a = ok(alice.result_of(&job_a));
    let network_a = monet::from_json(result_a["network_json"].as_str().unwrap()).unwrap();
    network_a.validate();
    let result_b = ok(bob.result_of(&job_b));
    let network_b = monet::from_json(result_b["network_json"].as_str().unwrap()).unwrap();
    network_b.validate();

    // The served run charges exactly the deterministic counters an
    // identical in-process run produces (checkpoint bookkeeping
    // counters excluded — the batch path has no checkpoint store).
    let accounting = ok(alice.accounting(None));
    let acct_a = &accounting["tenants"]["alice"];
    assert_eq!(acct_a["submitted"].as_u64(), Some(1));
    assert_eq!(acct_a["completed"].as_u64(), Some(1));
    assert!(acct_a["busy_s"].as_f64().unwrap() > 0.0);
    let data = mn_data::synthetic::yeast_like(16, 12, 3).dataset;
    let mut engine = mn_comm::ThreadEngine::new(2);
    let (reference_network, _) = monet::learn_module_network(&mut engine, &data, &cfg_a);
    assert_eq!(
        result_a["network_json"].as_str().unwrap(),
        monet::to_json(&reference_network),
        "served result differs from the identical in-process run"
    );
    use mn_comm::ParEngine as _;
    let reference: BTreeMap<String, u64> = engine
        .obs()
        .counters()
        .iter()
        .filter(|(k, _)| !k.starts_with("checkpoint."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(
        counters_of(&acct_a["counters"]),
        reference,
        "tenant accounting counters drifted from the engine's"
    );

    // A job listing scoped to one tenant never shows the other's work.
    let jobs = ok(bob.jobs(Some("bob")));
    let Content::Seq(entries) = &jobs["jobs"] else {
        panic!("jobs is not a list")
    };
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0]["tenant"].as_str(), Some("bob"));

    server.shutdown();
}

#[test]
fn cancellation_backpressure_and_unknowns_are_typed() {
    let server = TestServer::start("cancel", 1, 1);
    let mut client = server.client();
    ok(client.register_synthetic("t", "d", 32, 24, 7));

    // Job A occupies the single worker; B fills the one queue slot.
    let slow = slow_config(7);
    let job_a = ok(client.submit("t", "d", "serial", &slow))["job"]
        .as_str()
        .unwrap()
        .to_string();
    wait_state(&mut client, &job_a, "running", Duration::from_secs(60));
    let job_b = ok(client.submit("t", "d", "serial", &slow))["job"]
        .as_str()
        .unwrap()
        .to_string();

    // The third submission is refused with typed backpressure, not a
    // hang and not a panic.
    match err(client.submit("t", "d", "serial", &slow)) {
        monet_serve::ServeError::Backpressure { queued, limit } => {
            assert_eq!((queued, limit), (1, 1));
        }
        other => panic!("expected backpressure, got {other}"),
    }

    // Unknown identifiers and malformed registrations are typed too.
    assert_eq!(err(client.status("job-999")).kind(), "unknown-job");
    assert_eq!(
        err(client.submit("t", "nope", "serial", &slow)).kind(),
        "unknown-dataset"
    );
    assert_eq!(
        err(client.register_tsv("t", "bad", "/nonexistent/data.tsv")).kind(),
        "bad-request"
    );
    assert_eq!(
        err(client.submit("t", "d", "msg:2", &slow)).kind(),
        "bad-request",
        "fabric engines must be refused by the service"
    );

    // Cancel the queued job: immediate, no worker involved.
    let reply = ok(client.cancel(&job_b));
    assert_eq!(reply["state"].as_str(), Some("cancelled"));

    // Cancel the running job: cooperative, lands at the next engine
    // event.
    ok(client.cancel(&job_a));
    wait_state(&mut client, &job_a, "cancelled", Duration::from_secs(60));
    assert_eq!(err(client.result_of(&job_a)).kind(), "conflict");
    // Cancelling twice is a typed conflict, not a crash.
    assert_eq!(err(client.cancel(&job_a)).kind(), "conflict");

    // The watch stream of a cancelled job terminates with its state.
    let mut seen = Vec::new();
    let done = client
        .watch(&job_a, 0, |line| seen.push(line.to_string()))
        .unwrap();
    assert_eq!(done["state"].as_str(), Some("cancelled"));
    assert!(
        seen.iter().any(|l| l.contains("\"cancelled\"")),
        "lifecycle events missing from watch replay: {seen:?}"
    );

    let accounting = ok(client.accounting(Some("t")));
    let acct = &accounting["tenants"]["t"];
    assert_eq!(acct["submitted"].as_u64(), Some(2));
    assert_eq!(acct["cancelled"].as_u64(), Some(2));
    assert_eq!(acct["completed"].as_u64(), Some(0));

    server.shutdown();
}

#[test]
fn suspend_then_elastic_resume_matches_the_batch_cli_bytes() {
    let server = TestServer::start("elastic", 1, 8);
    let mut client = server.client();
    ok(client.register_synthetic("t", "d", 48, 36, 7));

    // Catch a job mid-run on two ranks. Suspension is cooperative (it
    // lands at the next engine event), so a fast job can finish before
    // the request arrives — submit fresh jobs until one is caught.
    // Each attempt that slips through just completes; only the caught
    // one is resumed below.
    let state_of = |client: &mut Client, job: &str| -> String {
        ok(client.status(job))["state"].as_str().unwrap().to_string()
    };
    let mut caught = None;
    for _ in 0..10 {
        let job = ok(client.submit("t", "d", "threads:2", &slow_config(7)))["job"]
            .as_str()
            .unwrap()
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let state = state_of(&mut client, &job);
            if state != "queued" {
                break;
            }
            assert!(Instant::now() < deadline, "job {job} never left the queue");
        }
        if state_of(&mut client, &job) == "done" {
            continue; // finished before we could even ask
        }
        ok(client.suspend(&job));
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match state_of(&mut client, &job).as_str() {
                "suspended" => {
                    caught = Some(job.clone());
                    break;
                }
                "done" => break, // the request lost the race
                "running" => {
                    assert!(Instant::now() < deadline, "suspend of {job} never landed")
                }
                other => panic!("job {job} reached {other:?} after a suspend request"),
            }
        }
        if caught.is_some() {
            break;
        }
    }
    let job = caught.expect("no job could be caught mid-run in 10 attempts");

    // The job's checkpoint directory holds the completed units.
    let ckpt = server.state_dir.join("jobs").join(&job);
    assert!(
        std::fs::read_dir(&ckpt).map(|d| d.count() > 0).unwrap_or(false),
        "suspended job left no checkpoint state in {}",
        ckpt.display()
    );

    // A suspended job cannot produce a result and cannot resume onto a
    // fabric engine.
    assert_eq!(err(client.result_of(&job)).kind(), "conflict");
    assert_eq!(err(client.resume(&job, Some("proc:2"))).kind(), "bad-request");

    // ...resume elastically on one rank (p' != p).
    let reply = ok(client.resume(&job, Some("serial")));
    assert_eq!(reply["engine"].as_str(), Some("serial"));
    wait_state(&mut client, &job, "done", Duration::from_secs(120));
    let network_json = ok(client.result_of(&job))["network_json"]
        .as_str()
        .unwrap()
        .to_string();

    // The suspended-and-elastically-resumed run is byte-identical to a
    // one-shot batch CLI run of the same flags.
    let out = fresh_dir("elastic_cli").join("net.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "48,36",
            "--seed",
            "7",
            "--ganesh-runs",
            "2",
            "--trees",
            "2",
            "--engine",
            "threads:2",
            "--quiet",
            "--json",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let batch = std::fs::read_to_string(&out).unwrap();
    assert_eq!(
        network_json, batch,
        "served suspend/elastic-resume result differs from the batch CLI"
    );

    // Exactly one suspension landed; every submitted attempt (caught
    // or not) eventually completed.
    let accounting = ok(client.accounting(Some("t")));
    let acct = &accounting["tenants"]["t"];
    assert_eq!(acct["suspended"].as_u64(), Some(1));
    assert!(acct["completed"].as_u64().unwrap() >= 1);
    assert_eq!(
        acct["completed"].as_u64().unwrap(),
        acct["submitted"].as_u64().unwrap(),
        "every attempt should end done (the caught one after resume)"
    );

    server.shutdown();
}

#[test]
fn hostile_clients_get_typed_errors_and_never_wedge_the_server() {
    let server = TestServer::start("hostile", 1, 8);

    // A client killed mid-frame: write half a request, no newline,
    // drop the socket.
    {
        let mut stream = service_connect(&server.addr, Duration::from_secs(5)).unwrap();
        stream.write_all(b"{\"op\":\"submi").unwrap();
        stream.flush().unwrap();
        drop(stream); // connection dies mid-line
    }

    // A line bomb: an unterminated request far past MAX_LINE. The
    // server must refuse with bounded memory and a typed error.
    {
        let mut stream = service_connect(&server.addr, Duration::from_secs(5)).unwrap();
        let chunk = vec![b'x'; 64 * 1024];
        for _ in 0..((monet_serve::MAX_LINE / chunk.len()) + 2) {
            // Writes may fail once the server hangs up mid-bomb;
            // that's the point.
            if stream.write_all(&chunk).is_err() {
                break;
            }
        }
        // If the socket is still open, the refusal line is readable.
        let mut reader = std::io::BufReader::new(stream);
        if let Ok(Some(line)) = monet_serve::proto::read_line_bounded(&mut reader) {
            let value: Content = serde_json::from_str(&line).unwrap();
            assert_eq!(value["ok"].as_bool(), Some(false));
            assert_eq!(value["error"]["kind"].as_str(), Some("bad-request"));
        }
    }

    // Corrupt frames on a healthy connection: typed bad-request, and
    // the connection stays usable for well-formed requests after.
    let mut client = server.client();
    let refusal = client.raw("this is not json").unwrap();
    assert_eq!(refusal["ok"].as_bool(), Some(false));
    assert_eq!(refusal["error"]["kind"].as_str(), Some("bad-request"));
    let refusal = client.raw("{\"op\":\"frobnicate\"}").unwrap();
    assert_eq!(refusal["error"]["kind"].as_str(), Some("bad-request"));

    // After all that abuse the server still serves: a full job runs
    // end to end on the same process.
    ok(client.register_synthetic("t", "d", 12, 10, 1));
    let job = ok(client.submit("t", "d", "serial", &LearnerConfig::paper_minimum(1)))["job"]
        .as_str()
        .unwrap()
        .to_string();
    wait_state(&mut client, &job, "done", Duration::from_secs(120));
    let network = monet::from_json(
        ok(client.result_of(&job))["network_json"].as_str().unwrap(),
    )
    .unwrap();
    network.validate();

    server.shutdown();
}

#[test]
fn served_result_is_byte_identical_to_the_batch_cli() {
    let server = TestServer::start("bytes", 1, 8);
    let mut client = server.client();
    ok(client.register_synthetic("t", "d", 24, 16, 5));
    let job = ok(client.submit("t", "d", "serial", &LearnerConfig::paper_minimum(5)))["job"]
        .as_str()
        .unwrap()
        .to_string();
    wait_state(&mut client, &job, "done", Duration::from_secs(120));
    let network_json = ok(client.result_of(&job))["network_json"]
        .as_str()
        .unwrap()
        .to_string();

    let out = fresh_dir("bytes_cli").join("net.json");
    let output = Command::new(monet_bin())
        .args([
            "--synthetic",
            "24,16",
            "--seed",
            "5",
            "--quiet",
            "--json",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run monet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(network_json, std::fs::read_to_string(&out).unwrap());

    // The telemetry the job streamed is versioned JSONL: every line
    // carries the schema version, starting with a full snapshot.
    let mut lines = Vec::new();
    let done = client.watch(&job, 0, |line| lines.push(line.to_string())).unwrap();
    assert_eq!(done["state"].as_str(), Some("done"));
    let telemetry: Vec<Content> = lines
        .iter()
        .map(|l| serde_json::from_str(l).unwrap())
        .filter(|v: &Content| v["kind"].as_str().is_some())
        .collect();
    assert!(
        !telemetry.is_empty(),
        "watch replayed no telemetry lines: {lines:?}"
    );
    assert_eq!(telemetry[0]["kind"].as_str(), Some("snapshot"));
    for line in &telemetry {
        assert_eq!(
            line["schema_version"].as_u64(),
            Some(mn_obs::TELEMETRY_SCHEMA_VERSION as u64)
        );
    }

    server.shutdown();
}
