//! Cross-crate integration tests: the full learning pipeline end to
//! end, on all engines, with quality checks against planted structure.

use mn_comm::{SerialEngine, SimEngine, ThreadEngine};
use mn_consensus::{adjusted_rand_index, labels_from_clusters};
use mn_data::{synthetic, SyntheticConfig};
use mn_score::ScoreMode;
use monet::{learn_module_network, phases, LearnerConfig};

fn strong_signal_data(n: usize, m: usize, seed: u64) -> mn_data::synthetic::SyntheticDataset {
    synthetic::generate(&SyntheticConfig {
        noise_sd: 0.2,
        n_modules: Some(3),
        n_regulators: Some(3),
        ..SyntheticConfig::new(n, m, seed)
    })
}

#[test]
fn full_pipeline_on_serial_engine() {
    let s = strong_signal_data(30, 24, 100);
    let config = LearnerConfig::paper_minimum(1);
    let mut engine = SerialEngine::new();
    let (net, report) = learn_module_network(&mut engine, &s.dataset, &config);
    net.validate();
    assert!(net.n_modules() >= 2, "expected multiple modules");
    assert_eq!(report.phases.len(), 3);
    assert!(report.total_s() > 0.0);
}

#[test]
fn learned_modules_recover_planted_structure() {
    // The synthetic-substitution audit (DESIGN.md §2): with a strong
    // planted signal, the learned module assignment must agree with
    // the planted one far better than chance.
    let s = strong_signal_data(30, 40, 7);
    let mut config = LearnerConfig::paper_minimum(1);
    config.ganesh.update_steps = 3;
    let mut engine = SerialEngine::new();
    let (net, _) = learn_module_network(&mut engine, &s.dataset, &config);

    let learned_clusters: Vec<Vec<usize>> = net
        .modules
        .iter()
        .map(|module| module.vars.clone())
        .collect();
    let learned = labels_from_clusters(30, &learned_clusters);
    let ari = adjusted_rand_index(&learned, &s.truth.assignment);
    assert!(ari > 0.3, "ARI vs planted structure too low: {ari}");
}

#[test]
fn planted_regulators_score_highly() {
    // With the candidate-parent list restricted to the planted
    // regulators (the Lemon-Tree candidate-regulator workflow), a
    // module's top-ranked parent should be one of the regulators that
    // actually drives the module's planted counterpart — far above the
    // ~25 % chance level of 8 regulators with 1–3 true parents each.
    let s = synthetic::generate(&SyntheticConfig {
        noise_sd: 0.2,
        n_modules: Some(3),
        n_regulators: Some(8),
        ..SyntheticConfig::new(32, 48, 13)
    });
    let mut config = LearnerConfig::paper_minimum(2);
    config.ganesh.update_steps = 2;
    config.candidate_parents = Some(s.truth.regulators.clone());
    let mut engine = SerialEngine::new();
    let (net, _) = learn_module_network(&mut engine, &s.dataset, &config);

    // Aggregate over modules: candidates that are true planted parents
    // of a module's majority planted module must outscore the other
    // regulator candidates on average (unranked candidates score 0).
    let mut true_scores = Vec::new();
    let mut false_scores = Vec::new();
    for module in &net.modules {
        let mut counts = vec![0usize; s.truth.n_modules()];
        for &v in &module.vars {
            counts[s.truth.assignment[v]] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(k, _)| k)
            .unwrap();
        for &reg in &s.truth.regulators {
            let score = module.parents.weighted.get(&reg).copied().unwrap_or(0.0);
            if s.truth.parents[majority].contains(&reg) {
                true_scores.push(score);
            } else {
                false_scores.push(score);
            }
        }
    }
    assert!(!true_scores.is_empty() && !false_scores.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&true_scores) > mean(&false_scores),
        "true planted parents did not outscore non-parents: {:.3} vs {:.3}",
        mean(&true_scores),
        mean(&false_scores)
    );
}

#[test]
fn reference_and_optimized_learn_identical_networks() {
    // Table 1's correctness contract: "we verified that our
    // implementation learns the exact same MoNets as the ones learned
    // by Lemon-Tree in all the cases".
    let s = strong_signal_data(24, 18, 5);
    let base = LearnerConfig::paper_minimum(9);
    let (a, _) = learn_module_network(
        &mut SerialEngine::new(),
        &s.dataset,
        &base.clone().with_mode(ScoreMode::Incremental),
    );
    let (b, _) = learn_module_network(
        &mut SerialEngine::new(),
        &s.dataset,
        &base.with_mode(ScoreMode::Reference),
    );
    assert_eq!(a, b);
}

#[test]
fn xml_and_json_outputs_are_consistent() {
    let s = strong_signal_data(20, 14, 3);
    let config = LearnerConfig::paper_minimum(4);
    let (net, _) = learn_module_network(&mut SerialEngine::new(), &s.dataset, &config);
    let json = monet::to_json(&net);
    let back = monet::from_json(&json).unwrap();
    assert_eq!(net, back);
    let xml = monet::to_xml(&net);
    assert_eq!(xml.matches("<Module ").count(), net.n_modules());
}

#[test]
fn acyclicity_postprocessing_yields_dag() {
    let s = strong_signal_data(24, 20, 6);
    let config = LearnerConfig::paper_minimum(8);
    let (net, _) = learn_module_network(&mut SerialEngine::new(), &s.dataset, &config);
    let dag = monet::acyclic::dag_edges(&net);
    assert!(monet::acyclic::is_acyclic(net.n_modules(), &dag));
    // Post-processing only removes edges.
    let raw = net.module_edges();
    assert!(dag.len() <= raw.len());
    for e in &dag {
        assert!(raw.contains(e));
    }
}

#[test]
fn engines_report_comparable_phase_structure() {
    let s = strong_signal_data(20, 14, 2);
    let config = LearnerConfig::paper_minimum(1);
    let (_, serial) = learn_module_network(&mut SerialEngine::new(), &s.dataset, &config);
    let (_, sim) = learn_module_network(&mut SimEngine::new(8), &s.dataset, &config);
    let (_, threads) = learn_module_network(&mut ThreadEngine::new(2), &s.dataset, &config);
    for report in [&serial, &sim, &threads] {
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec![phases::GANESH, phases::CONSENSUS, phases::MODULES]);
    }
}

#[test]
fn two_step_baseline_runs_end_to_end() {
    let s = strong_signal_data(20, 16, 4);
    let config = LearnerConfig::paper_minimum(6);
    let params = monet::genomica::TwoStepParams {
        n_modules: 3,
        max_iters: 2,
        min_moves: 1,
    };
    let (net, report) =
        monet::genomica::learn_two_step(&mut SerialEngine::new(), &s.dataset, &config, &params);
    net.validate();
    assert!(report.phases.len() >= 3);
}
