//! The observability guarantees of the pipeline, end to end:
//!
//! * the deterministic event counters are bit-identical across all
//!   four engines and across rank counts (the `mn-obs` determinism
//!   contract);
//! * the counters match a committed golden record, so drift in the
//!   algorithm's event structure fails CI until acknowledged
//!   (regenerate with `UPDATE_GOLDEN=1 cargo test -p monet --test
//!   observability`);
//! * the chrome-trace export is schema-valid with one track per rank,
//!   and the observability snapshot round-trips through JSON;
//! * the flight recorder's deterministic event sequence is
//!   bit-identical across engines and rank counts (timestamps
//!   excluded) and matches its own committed golden record;
//! * the per-phase communication matrix of the real msg fabric equals
//!   the sim engine's synthesized matrix exactly and matches a golden
//!   record for a fixed seed;
//! * a broken determinism contract surfaces from `merge_ranks` as a
//!   typed [`obs::MergeError`] carrying the first divergence.

use mn_comm::{obs, spmd_run, ParEngine, SerialEngine, SimEngine, ThreadEngine};
use monet::{learn_module_network, LearnerConfig};
use std::collections::BTreeMap;

fn dataset() -> mn_data::Dataset {
    mn_data::synthetic::yeast_like(20, 14, 9).dataset
}

fn config() -> LearnerConfig {
    LearnerConfig::paper_minimum(7)
}

/// Run the full pipeline on `engine` and return its final counters.
fn counters_on<E: ParEngine>(engine: &mut E) -> BTreeMap<String, u64> {
    let d = dataset();
    let c = config();
    learn_module_network(engine, &d, &c);
    let now = engine.now_s();
    engine.obs().snapshot(now).counters
}

/// SPMD run over `p` real rank-threads; `merge_ranks` additionally
/// asserts the per-rank counters agree rank-to-rank.
fn msg_counters(p: usize) -> BTreeMap<String, u64> {
    let d = dataset();
    let c = config();
    let snapshots = spmd_run(p, |engine| {
        learn_module_network(engine, &d, &c);
        let now = engine.now_s();
        engine.obs().snapshot(now)
    });
    obs::merge_ranks(&snapshots)
        .expect("per-rank counters must agree")
        .counters
}

#[test]
fn counters_bit_identical_across_all_engines_and_rank_counts() {
    let serial = counters_on(&mut SerialEngine::new());
    // The counters exist and count real work.
    for key in [
        "engine.dist_maps",
        "engine.items",
        "gibbs.sweeps",
        "gibbs.moves_proposed",
        "gibbs.moves_accepted",
        // The default scoring path is the batched kernel; its dispatch
        // marker and cache traffic must show up (the naive counter
        // stays 0 unless `--gibbs-naive` flips the path).
        "gibbs.kernel_dispatches",
        "gibbs.cache_hits",
        "gibbs.cache_misses",
        "tree.modules",
        "tree.trees",
        "tree.merges",
        "splits.scored",
        "splits.nodes",
        // The score-layer memoization and arena counters of the
        // default kernel paths (PR 6): table-served ln Γ lookups in
        // tree building + Gibbs scoring, and split-kernel scratch
        // reuse.
        "score.ln_gamma_calls",
        "score.ln_gamma_table_hits",
        "score.scratch_reuses",
        "comm.collectives",
        // Task 2 on the default sparse backend: stored post-threshold
        // entries and sharded power-iteration matvecs.
        "consensus.nnz",
        "consensus.matvec_dispatches",
    ] {
        assert!(
            serial.get(key).copied().unwrap_or(0) > 0,
            "counter {key} never incremented: {serial:?}"
        );
    }

    assert_eq!(
        serial,
        counters_on(&mut ThreadEngine::new(3)),
        "threads:3 diverged from serial"
    );
    for p in [4usize, 9] {
        assert_eq!(
            serial,
            counters_on(&mut SimEngine::new(p)),
            "sim:{p} diverged from serial"
        );
    }
    for p in [2usize, 3] {
        assert_eq!(serial, msg_counters(p), "msg:{p} diverged from serial");
    }
}

#[test]
fn counters_match_golden_record() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/counters_synthetic_20x14_seed7.json"
    );
    let counters = counters_on(&mut SerialEngine::new());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let text = serde_json::to_string_pretty(&counters).expect("serialize counters");
        std::fs::write(path, text + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(path)
        .expect("golden counter record missing — run with UPDATE_GOLDEN=1 to create it");
    let golden: BTreeMap<String, u64> = serde_json::from_str(&text).expect("parse golden");
    assert_eq!(
        counters, golden,
        "deterministic counters drifted from tests/golden/\
         counters_synthetic_20x14_seed7.json; if the algorithm change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_is_schema_valid_with_one_track_per_rank() {
    let d = dataset();
    let c = config();
    let mut engine = SimEngine::new(5);
    learn_module_network(&mut engine, &d, &c);
    let now = engine.now_s();
    let snapshot = engine.obs().snapshot(now);
    let text = obs::chrome_trace_json(&snapshot);

    let value: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    // One thread_name metadata record per rank.
    let tracks: Vec<&serde_json::Value> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
        .collect();
    assert_eq!(tracks.len(), 5, "expected one track per rank");
    for (r, track) in tracks.iter().enumerate() {
        assert_eq!(track["args"]["name"].as_str(), Some(format!("rank {r}").as_str()));
    }

    // Every complete event is well-formed: µs timestamps, a rank-valued
    // tid, and the span path in args.
    let mut complete = 0;
    for e in events.iter().filter(|e| e["ph"].as_str() == Some("X")) {
        complete += 1;
        assert!(e["ts"].as_f64().is_some(), "ts missing: {e:?}");
        assert!(e["dur"].as_f64().expect("dur") >= 0.0);
        let tid = e["tid"].as_u64().expect("tid") as usize;
        assert!(tid < 5, "tid {tid} out of rank range");
        assert!(e["args"]["path"].as_str().is_some(), "args.path missing");
    }
    assert!(complete > 0, "no complete events in trace");
}

/// Canonical, timestamp-free rendering of one deterministic flight
/// record: `seq kind payload`.
fn det_line(r: &obs::flightrec::FlightRecord) -> String {
    use obs::FlightEvent;
    match &r.event {
        FlightEvent::SpanEnter { path } => format!("{} enter {path}", r.seq),
        FlightEvent::SpanExit { path } => format!("{} exit {path}", r.seq),
        FlightEvent::CkptUnit { unit, written } => {
            format!("{} ckpt {unit} written={written}", r.seq)
        }
        other => panic!("non-deterministic event in det ring: {other:?}"),
    }
}

/// Run the full pipeline on `engine` and return its deterministic
/// flight sequence, canonically rendered.
fn det_flight_on<E: ParEngine>(engine: &mut E) -> Vec<String> {
    let d = dataset();
    let c = config();
    learn_module_network(engine, &d, &c);
    engine.obs().flight().det_events().iter().map(det_line).collect()
}

/// FNV-1a over the joined sequence, so the golden record stays small.
fn fnv64(lines: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for line in lines {
        for byte in line.bytes().chain(std::iter::once(b'\n')) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

#[test]
fn flight_det_sequence_bit_identical_across_engines_and_ranks() {
    let serial = det_flight_on(&mut SerialEngine::new());
    assert!(!serial.is_empty(), "flight recorder captured nothing");
    assert_eq!(
        serial,
        det_flight_on(&mut ThreadEngine::new(3)),
        "threads:3 flight diverged from serial"
    );
    for p in [4usize, 9] {
        assert_eq!(
            serial,
            det_flight_on(&mut SimEngine::new(p)),
            "sim:{p} flight diverged from serial"
        );
    }
    for p in [2usize, 3] {
        let d = dataset();
        let c = config();
        let per_rank = spmd_run(p, |engine| {
            learn_module_network(engine, &d, &c);
            engine
                .obs()
                .flight()
                .det_events()
                .iter()
                .map(det_line)
                .collect::<Vec<_>>()
        });
        for (rank, seq) in per_rank.iter().enumerate() {
            assert_eq!(
                seq, &serial,
                "msg:{p} rank {rank} flight diverged from serial"
            );
        }
    }
}

#[test]
fn flight_det_sequence_matches_golden_record() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/flightrec_det_synthetic_20x14_seed7.txt"
    );
    let lines = det_flight_on(&mut SerialEngine::new());
    // Compact golden: length + FNV-64 digest + head/tail windows, so a
    // drift is both detected and legible in the diff.
    let mut record = String::new();
    record.push_str(&format!("det_len {}\n", lines.len()));
    record.push_str(&format!("fnv64 {:016x}\n", fnv64(&lines)));
    for line in lines.iter().take(40) {
        record.push_str(&format!("head {line}\n"));
    }
    for line in lines.iter().rev().take(40).rev() {
        record.push_str(&format!("tail {line}\n"));
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, record).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("flight-recorder golden missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        record, golden,
        "deterministic flight sequence drifted from tests/golden/\
         flightrec_det_synthetic_20x14_seed7.txt; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn comm_matrix_sim_equals_msg_and_matches_golden() {
    let p = 3;
    let d = dataset();
    let c = config();

    // The real fabric's per-rank matrices, merged.
    let snapshots = spmd_run(p, |engine| {
        learn_module_network(engine, &d, &c);
        let now = engine.now_s();
        engine.obs().snapshot(now)
    });
    let msg_comm = obs::merge_ranks(&snapshots).expect("ranks agree").comm;
    assert!(msg_comm.total_msgs() > 0, "fabric recorded no traffic");

    // The sim engine synthesizes the identical matrix from the same
    // collective schedules — per phase, per pair, msgs and bytes.
    let mut sim = SimEngine::new(p);
    learn_module_network(&mut sim, &d, &c);
    let now = sim.now_s();
    let sim_comm = sim.obs().snapshot(now).comm;
    assert_eq!(sim_comm, msg_comm, "sim comm matrix diverged from msg fabric");

    // Golden record for the fixed seed.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/comm_matrix_msg3_20x14_seed7.json"
    );
    let text_now = serde_json::to_string_pretty(&msg_comm).expect("serialize comm matrix");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, text_now + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(path)
        .expect("comm-matrix golden missing — run with UPDATE_GOLDEN=1 to create it");
    let golden: obs::CommMatrix = serde_json::from_str(&text).expect("parse golden");
    assert_eq!(
        msg_comm, golden,
        "communication matrix drifted from tests/golden/\
         comm_matrix_msg3_20x14_seed7.json; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn merge_ranks_divergence_is_a_typed_error_with_first_diff() {
    let mut a = obs::Recorder::new(2);
    let mut b = obs::Recorder::new(2);
    a.count_dist_map(10, 1);
    b.count_dist_map(10, 1);
    b.count_dist_map(5, 1); // rank 1 ran one dist_map too many
    let err = obs::merge_ranks(&[a.snapshot(1.0), b.snapshot(1.0)])
        .expect_err("divergence must be rejected");
    match &err {
        obs::MergeError::CounterDivergence { rank, counter, .. } => {
            assert_eq!(*rank, 1);
            // First diverging counter in sorted order (count_dist_map
            // also charges the all-gather word counter).
            assert_eq!(counter, "comm.allgather_words");
        }
        other => panic!("wrong error variant: {other:?}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("comm.allgather_words") && msg.contains("rank 1"),
        "diff not legible: {msg}"
    );
}

#[test]
fn snapshot_round_trips_through_json() {
    let d = dataset();
    let c = config();
    let mut engine = SimEngine::new(3);
    learn_module_network(&mut engine, &d, &c);
    let now = engine.now_s();
    let snapshot = engine.obs().snapshot(now);
    let text = serde_json::to_string(&snapshot).expect("serialize snapshot");
    let back: obs::ObsSnapshot = serde_json::from_str(&text).expect("parse snapshot");
    assert_eq!(snapshot, back);
}
