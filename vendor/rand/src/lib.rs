//! Vendored offline subset of the `rand` crate API.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, so the handful of external crates it names are vendored as
//! minimal, behaviour-compatible subsets under `vendor/`. Only the
//! items actually used by the workspace are provided.

/// The core generator trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}
