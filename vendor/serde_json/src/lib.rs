//! Vendored offline subset of the `serde_json` crate API.
//!
//! JSON text serialization/parsing over the vendored `serde` value
//! tree. Output conventions match serde_json where the workspace can
//! observe them: objects keep field order, floats print via Rust's
//! shortest-roundtrip formatter with a forced `.0` for integral
//! values, non-finite floats serialize as `null`, and pretty output
//! uses two-space indentation.

pub use serde::Content as Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_seq(out, items, indent, level),
        Value::Map(pairs) => write_map(out, pairs, indent, level),
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, pairs: &[(String, Value)], indent: Option<usize>, level: usize) {
    if pairs.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_escaped(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, value, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("recursion limit exceeded".into()));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                                } else {
                                    return Err(Error("lone leading surrogate".into()));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            continue;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error("control character in string".into()));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_composite() {
        let v = Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.5)])),
            ("s".into(), Value::Str("a \"b\"\nc".into())),
            ("none".into(), Value::Null),
            ("neg".into(), Value::I64(-7)),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0, -3.5e-9, 1234567.25, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn integral_floats_keep_float_form() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for s in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "--3", "\u{7}"] {
            assert!(from_str::<Value>(s).is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
