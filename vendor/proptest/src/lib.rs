//! Vendored offline subset of the `proptest` crate API.
//!
//! Implements the strategy/runner surface this workspace uses:
//! `proptest!` with optional `#![proptest_config]`, range / tuple /
//! `Just` / `any` / regex-literal strategies, `prop_map`,
//! `prop_oneof!`, `prop::collection::vec`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test PRNG
//! (seeded by test name and case number) so failures are reproducible.
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its inputs verbatim.

/// Deterministic case generation and failure reporting.
pub mod test_runner {
    /// Runner configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (treated as a skip).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic generator state (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// State for case `case` of property `name`.
        pub fn new(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case number.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            debug_assert!(bound > 0);
            let wide = (self.next_u64() as u128) * (bound as u128);
            (wide >> 64) as usize
        }
    }

    /// Drive `cases` generated cases of property `name`; panics with
    /// the case number and inputs on the first falsified case.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for case in 0..config.cases {
            let mut rng = TestRng::new(name, case as u64);
            let (inputs, result) = f(&mut rng);
            match result {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` falsified at case {case}/{}: {msg}\n  inputs: {inputs}",
                    config.cases
                ),
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy view with a fixed value type.
    pub trait DynStrategy<V> {
        /// Generate one value.
        fn dyn_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(pub Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        choices: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// A union over `choices` (must be non-empty).
        pub fn new(choices: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Self { choices }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.choices.len());
            self.choices[pick].dyn_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            v.clamp(self.start, f64::from_bits(self.end.to_bits() - 1))
        }
    }

    /// String pattern strategy: a `&str` literal acts as a (simplified)
    /// regex. Supported shape: `.{lo,hi}` — arbitrary text with length
    /// in `[lo, hi]`; anything else falls back to short arbitrary text.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            let mut out = String::new();
            for _ in 0..len {
                // Mostly printable ASCII, sprinkled with whitespace and
                // multi-byte scalars to exercise UTF-8 handling.
                let c = match rng.below(20) {
                    0 => '\n',
                    1 => '\t',
                    2 => 'é',
                    3 => '中',
                    4 => '😀',
                    _ => (b' ' + rng.below(95) as u8) as char,
                };
                out.push(c);
            }
            out
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64() * 2e6 - 1e6
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// `bool` strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A fair coin flip.
    pub const ANY: BoolAny = BoolAny;
}

/// Sampling strategies over fixed inventories
/// (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Uniform choice from a fixed, non-empty list of values.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select(choices)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let __vals = ( $($crate::strategy::Strategy::new_value(&($strat), __rng),)+ );
                    let __inputs = ::std::format!("{:?}", &__vals);
                    let ( $($p,)+ ) = __vals;
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__inputs, __result)
                });
            }
        )*
    };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

/// Assert inside a property body (fails the case, reporting inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.5f64..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0usize..4, 0usize..4).prop_map(|(a, b)| a + b),
                Just(99usize),
            ],
        ) {
            prop_assert!(v <= 6usize || v == 99usize);
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 3..9);
        let a = strat.new_value(&mut TestRng::new("t", 5));
        let b = strat.new_value(&mut TestRng::new("t", 5));
        assert_eq!(a, b);
    }
}
