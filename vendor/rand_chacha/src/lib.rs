//! Vendored offline subset of the `rand_chacha` crate API.
//!
//! Provides [`ChaCha12Rng`]: a from-scratch ChaCha implementation with
//! 12 rounds, a 64-bit block counter and O(1) `set_word_pos` /
//! `get_word_pos` seeking — the counter-mode contract `mn-rand`'s
//! block-splittable streams are built on. The keystream is a faithful
//! ChaCha permutation; the workspace's determinism tests compare runs
//! against each other (never against external golden vectors), so the
//! only hard requirements are statistical quality and exact
//! seek-position semantics (one 64-bit draw = two 32-bit words).

use rand::RngCore;

/// Subset of `rand_core` re-exported the way `rand_chacha` does.
pub mod rand_core {
    /// Seedable construction (subset of `rand_core::SeedableRng`).
    pub trait SeedableRng: Sized {
        /// The seed type (a byte array).
        type Seed;

        /// Construct from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;
    }
}

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 12;

/// ChaCha with 12 rounds and O(1) word-position seeking.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// Block counter of the block currently in `buf`.
    block: u64,
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next word index within `buf` (0..=16; 16 means exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.block as u32;
        state[13] = (self.block >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(s);
        }
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.block = self.block.wrapping_add(1);
            self.idx = 0;
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Seek so the next output word is keystream word `pos`
    /// (32-bit-word granularity, counted from the start of the stream).
    pub fn set_word_pos(&mut self, pos: u128) {
        self.block = (pos / BLOCK_WORDS as u128) as u64;
        self.idx = (pos % BLOCK_WORDS as u128) as usize;
        self.refill();
    }

    /// The current keystream word position (words consumed so far).
    pub fn get_word_pos(&self) -> u128 {
        self.block as u128 * BLOCK_WORDS as u128 + self.idx as u128
    }
}

impl rand_core::SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut rng = Self {
            key,
            block: 0,
            buf: [0; BLOCK_WORDS],
            idx: 0,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha12Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Low word first, matching rand_chacha's little-endian pairing,
        // so one u64 draw consumes exactly two keystream words.
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;

    #[test]
    fn word_pos_roundtrips_and_seeks() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        assert_eq!(a.get_word_pos(), 0);
        let first: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        assert_eq!(a.get_word_pos(), 80);
        a.set_word_pos(20);
        let again: Vec<u64> = (0..30).map(|_| a.next_u64()).collect();
        assert_eq!(&first[10..], &again[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::from_seed([1u8; 32]);
        let mut b = ChaCha12Rng::from_seed([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_not_degenerate() {
        let mut a = ChaCha12Rng::from_seed([0u8; 32]);
        let draws: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), draws.len(), "collisions in 64 draws");
        let ones: u32 = draws.iter().map(|d| d.count_ones()).sum();
        let frac = ones as f64 / (64.0 * 64.0);
        assert!((0.4..0.6).contains(&frac), "bit bias {frac}");
    }
}
