//! Vendored offline subset of the `serde` crate API.
//!
//! Instead of serde's zero-copy visitor architecture, this subset uses
//! a concrete value tree ([`Content`]): `Serialize` lowers a type into
//! the tree, `Deserialize` lifts it back. `serde_json` (also vendored)
//! re-exports [`Content`] as its `Value` and adds the JSON text layer.
//! The derive macros in `serde_derive` generate impls of these traits
//! for named-field structs and C-like enums — the only shapes this
//! workspace derives.
//!
//! Determinism note: objects preserve insertion order (a `Vec` of
//! pairs), so serialized output is a pure function of field
//! declaration order — which the workspace's byte-identity tests rely
//! on.

pub use serde_derive::{Deserialize, Serialize};

/// The serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, in insertion order.
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(f) => Some(f),
            Content::U64(u) => Some(u as f64),
            Content::I64(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Numeric value as `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(u) => Some(u),
            Content::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(i) => Some(i),
            Content::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Object member by key (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array element by position.
    pub fn get_index(&self, index: usize) -> Option<&Content> {
        self.as_array().and_then(|items| items.get(index))
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, index: usize) -> &Content {
        self.get_index(index).unwrap_or(&NULL)
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the value tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn serialize_value(&self) -> Content;
}

/// Lift a value back out of the value tree.
pub trait Deserialize: Sized {
    /// Parse `value` into `Self`.
    fn deserialize_value(value: &Content) -> Result<Self, DeError>;
}

/// Derive-support helper: fetch and deserialize an object field.
pub fn map_field<T: Deserialize>(value: &Content, name: &str) -> Result<T, DeError> {
    let field = value
        .get(name)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))?;
    T::deserialize_value(field)
        .map_err(|e| DeError::msg(format!("field `{name}`: {}", e.0)))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Content {
        (**self).serialize_value()
    }
}

impl Serialize for Content {
    fn serialize_value(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(())
        } else {
            Err(DeError::msg("expected null"))
        }
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Content) -> Result<Self, DeError> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| DeError::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Content) -> Result<Self, DeError> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| DeError::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        Ok(f64::deserialize_value(value)? as f32)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Content {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Content {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Content {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(value).map(Some)
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Content) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::msg("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types usable as map keys. Mirrors serde_json, which renders
/// integer keys as JSON strings.
pub trait MapKey: Ord + Sized {
    /// Render the key as an object-member name.
    fn to_key_string(&self) -> String;
    /// Parse the key back from an object-member name.
    fn from_key_str(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn from_key_str(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
            fn from_key_str(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError::msg(format!("invalid integer map key {s:?}")))
            }
        }
    )*};
}
impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key_str(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_tuple_roundtrip() {
        let v: (usize, Option<u32>, f64) = (3, None, -1.5);
        let c = v.serialize_value();
        let back = <(usize, Option<u32>, f64)>::deserialize_value(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn index_falls_back_to_null() {
        let c = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(c["a"].as_u64(), Some(1));
        assert!(c["missing"].is_null());
    }
}
