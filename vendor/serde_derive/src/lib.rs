//! Vendored offline subset of the `serde_derive` proc macros.
//!
//! Generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` value-tree traits. Supports exactly the shapes
//! this workspace derives: structs with named fields and C-like enums
//! (unit variants only). No `syn`/`quote` dependency — the input is
//! parsed directly from the token stream and the impl is emitted as a
//! formatted string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum of unit variants, in declaration order.
    Enum { name: String, variants: Vec<String> },
}

/// Skip one attribute (`#[...]`) if the cursor is on one.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(...)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive subset: unexpected token in struct body: {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive subset: expected `:` after field `{name}`: {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive subset: unexpected token in enum `{name}`: {other:?}"),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!(
                "serde_derive subset: enum `{name}` variant `{variant}` carries data; \
                 only unit variants are supported"
            );
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(variant);
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive subset: expected `struct` or `enum`: {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive subset: expected type name: {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive subset: generic type `{name}` is not supported");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive subset: `{name}` has no braced body (tuple/unit shapes unsupported): \
             {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            variants: parse_unit_variants(body, &name),
            name,
        },
        other => panic!("serde_derive subset: cannot derive for `{other}`"),
    }
}

/// Derive `serde::Serialize` (vendored value-tree subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored value-tree subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::map_field(value, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match ::serde::Content::as_str(value) {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::msg(\
                                 \"unknown variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
