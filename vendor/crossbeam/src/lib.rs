//! Vendored offline subset of the `crossbeam` crate API.
//!
//! Provides `channel::unbounded` with `Sender`/`Receiver` handles
//! that, like crossbeam's (and unlike `std::sync::mpsc`), are both
//! `Send + Sync` so endpoints can be shared across scoped threads by
//! reference. Implemented as a mutex-guarded queue with a condvar.

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the value that could not be delivered.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Dequeue the next value, waiting at most `timeout` while the
        /// channel is empty and at least one sender is alive.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, wait) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
                if wait.timed_out() && state.items.is_empty() && std::time::Instant::now() >= deadline
                {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_preserved() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn handles_are_sync_across_scoped_threads() {
            let (tx, rx) = unbounded::<usize>();
            std::thread::scope(|scope| {
                let tx_ref = &tx;
                let rx_ref = &rx;
                scope.spawn(move || {
                    for i in 0..100 {
                        tx_ref.send(i).unwrap();
                    }
                });
                scope.spawn(move || {
                    let mut total = 0;
                    for _ in 0..100 {
                        total += rx_ref.recv().unwrap();
                    }
                    assert_eq!(total, 4950);
                });
            });
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded::<&str>();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    tx.send("late").unwrap();
                });
                assert_eq!(rx.recv(), Ok("late"));
            });
        }
    }
}
