//! Vendored offline subset of the `criterion` crate API.
//!
//! A lightweight measurement harness exposing the Criterion call
//! surface this workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `BenchmarkId`,
//! `bench_with_input`, `Bencher::iter`). Each benchmark is warmed up,
//! auto-scaled to a small per-sample budget, and reported as the
//! median time per iteration. Statistical machinery (outlier
//! detection, HTML reports) is intentionally absent; budgets are kept
//! small so accidentally running benches under `cargo test` stays
//! cheap. Set `CRITERION_SAMPLE_MS` / `CRITERION_SAMPLES` to rescale.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times a routine over a chosen number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run one benchmark to completion and report the median ns/iter.
fn run_benchmark(label: &str, samples: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up / calibration pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(env_u64("CRITERION_SAMPLE_MS", 20));
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "{label:<50} time: [{} {} {}] ({iters} iters x {samples} samples)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            samples: env_u64("CRITERION_SAMPLES", 5) as usize,
        }
    }
}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; CLI configuration
    /// is limited to the environment variables documented above.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into_id(), self.samples, routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Keep accidental `cargo test` executions of bench binaries
        // cheap: the stub caps per-benchmark samples.
        self.samples = n.min(env_u64("CRITERION_SAMPLES_MAX", 10) as usize).max(2);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&label, self.samples, routine);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.samples, |b| routine(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_end_to_end() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &p| {
            b.iter(|| p * p)
        });
        group.finish();
    }
}
