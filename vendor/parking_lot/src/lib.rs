//! Vendored offline subset of the `parking_lot` crate API.
//!
//! A thin non-poisoning facade over `std::sync::Mutex` — the only
//! surface this workspace uses. Panics inside a critical section abort
//! the owning test anyway, so poison recovery is not needed.

use std::sync::MutexGuard;

/// Non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, ignoring poison (parking_lot mutexes do not poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![0.0f64; 3]);
        m.lock()[1] = 2.5;
        assert_eq!(m.into_inner(), vec![0.0, 2.5, 0.0]);
    }
}
