//! Small auxiliary generators used for key derivation and as a
//! leapfrog-capable reference generator.
//!
//! The paper's implementation uses the TRNG library's multiple recursive
//! generator with a Sophie-Germain prime modulus, chosen because TRNG
//! supports *block splitting* of a logical random stream in O(1) time.
//! We provide two equivalents:
//!
//! * [`SplitMix64`] — a tiny, fast, full-period generator used only to
//!   derive independent seeds for named streams (never for sampling
//!   decisions directly), and
//! * [`Lcg128`] — a 128-bit multiplicative LCG with O(1) `jump`, used in
//!   tests as an independent cross-check of the O(1)-jump contract that
//!   the ChaCha-based streams rely on.

/// SplitMix64: the seed-expansion generator from Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
///
/// Used exclusively to derive high-entropy sub-seeds from a master seed
/// plus a domain tag; its statistical quality is more than sufficient for
/// seed derivation, and its simplicity makes the derivation scheme easy
/// to document and reproduce in other languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose first outputs are determined by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit value and advance the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fill `out` with derived bytes (little-endian words).
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// A 128-bit truncated multiplicative-congruential generator with O(1)
/// jump-ahead.
///
/// `state_{k+1} = a * state_k + c (mod 2^128)`, output = high 64 bits.
/// Because the transition is affine, `jump(n)` composes the map `n` times
/// in O(log n) multiplications (O(1) for fixed-width n), mirroring the
/// "block splitting ... takes O(1) time" property of TRNG generators
/// quoted in §4.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg128 {
    state: u128,
}

/// Multiplier from Pierre L'Ecuyer's tables of good MCG multipliers
/// (128-bit, spectral-test vetted).
const LCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;
const LCG_INC: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

impl Lcg128 {
    /// The LCG multiplier `a` in `state' = a·state + c (mod 2^128)`.
    ///
    /// Exposed so that vectorized re-implementations of the *same*
    /// recurrence (e.g. limb-decomposed SIMD steppers) can be built and
    /// verified bit-for-bit against this scalar reference.
    pub const MULTIPLIER: u128 = LCG_MUL;
    /// The LCG increment `c` in `state' = a·state + c (mod 2^128)`.
    pub const INCREMENT: u128 = LCG_INC;

    /// The raw 128-bit state.
    ///
    /// Together with [`Lcg128::MULTIPLIER`]/[`Lcg128::INCREMENT`] this
    /// fully determines the future output sequence; vectorized steppers
    /// seed their lanes from it.
    #[inline]
    pub fn state(&self) -> u128 {
        self.state
    }
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let lo = sm.next_u64() as u128;
        let hi = sm.next_u64() as u128;
        Self {
            state: (hi << 64) | lo,
        }
    }

    /// Create an independent per-item generator from `(seed, tag, key)`.
    ///
    /// This is the light-weight counterpart of
    /// [`crate::MasterRng::stream`] for inner loops that derive one
    /// generator *per work item* (millions of candidate splits in
    /// Algorithm 5): construction costs a handful of multiplies, versus
    /// a full ChaCha key schedule. The derivation runs each component
    /// through SplitMix64, so distinct `(tag, key)` pairs give
    /// decorrelated sequences.
    #[inline]
    pub fn from_key(seed: u64, tag: u64, key: u64) -> Self {
        let a = SplitMix64::new(seed ^ tag.rotate_left(32)).next_u64();
        let b = SplitMix64::new(a ^ key).next_u64();
        let c = SplitMix64::new(b.wrapping_add(key).rotate_left(17)).next_u64();
        Self {
            state: ((b as u128) << 64) | c as u128,
        }
    }

    /// Uniform index in `[0, bound)` consuming one draw (fixed-point
    /// multiply; bias ≤ `bound / 2^64`).
    #[inline]
    pub fn index_one_draw(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        let wide = (self.next_u64() as u128) * (bound as u128);
        (wide >> 64) as usize
    }

    /// Next 64-bit output (high half of the 128-bit state).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        (self.state >> 64) as u64
    }

    /// Advance the generator by `n` steps in O(log n) time.
    ///
    /// Uses the standard affine-composition ("jump-ahead") identity:
    /// applying `x -> a x + c` n times equals `x -> a^n x + c (a^n - 1)/(a - 1)`,
    /// computed by binary decomposition without division.
    pub fn jump(&mut self, mut n: u64) {
        crate::observe::note_jump(n);
        // Running composition g(x) = cur_a * x + cur_c.
        let mut cur_a: u128 = 1;
        let mut cur_c: u128 = 0;
        // Step composition h(x) = a x + c, squared each round.
        let mut a = LCG_MUL;
        let mut c = LCG_INC;
        while n > 0 {
            if n & 1 == 1 {
                cur_a = cur_a.wrapping_mul(a);
                cur_c = cur_c.wrapping_mul(a).wrapping_add(c);
            }
            c = c.wrapping_mul(a).wrapping_add(c);
            a = a.wrapping_mul(a);
            n >>= 1;
        }
        self.state = self.state.wrapping_mul(cur_a).wrapping_add(cur_c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 0, from the canonical C
        // implementation of SplitMix64 (also used as the xoshiro seeding
        // test vector): e220a8397b1dcdaf, 6e789e6aa1b965f4, 06c45d188009454f.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn splitmix_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn splitmix_fill_bytes_partial_chunk() {
        let mut g = SplitMix64::new(7);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        let mut g2 = SplitMix64::new(7);
        let w0 = g2.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
    }

    #[test]
    fn lcg_jump_matches_iteration() {
        for n in [0u64, 1, 2, 3, 17, 100, 1000, 65537] {
            let mut a = Lcg128::new(99);
            let mut b = Lcg128::new(99);
            for _ in 0..n {
                a.next_u64();
            }
            b.jump(n);
            assert_eq!(a.next_u64(), b.next_u64(), "jump({n}) mismatch");
        }
    }

    #[test]
    fn from_key_is_deterministic_and_key_sensitive() {
        let mut a = Lcg128::from_key(1, 2, 3);
        let mut b = Lcg128::from_key(1, 2, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Lcg128::from_key(1, 2, 4);
        let mut d = Lcg128::from_key(1, 3, 3);
        let mut e = Lcg128::from_key(2, 2, 3);
        let base = Lcg128::from_key(1, 2, 3).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
        assert_ne!(base, e.next_u64());
    }

    #[test]
    fn from_key_sequential_keys_decorrelated() {
        // Adjacent item indices must not produce obviously correlated
        // first draws (the per-split MC loops key by item index).
        let draws: Vec<u64> = (0..64u64)
            .map(|k| Lcg128::from_key(7, 1, k).next_u64())
            .collect();
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), draws.len(), "collisions in first draws");
        // Crude uniformity check on the top bit.
        let ones = draws.iter().filter(|&&d| d >> 63 == 1).count();
        assert!((16..=48).contains(&ones), "top-bit bias: {ones}/64");
    }

    #[test]
    fn lcg_index_one_draw_in_range() {
        let mut g = Lcg128::from_key(5, 5, 5);
        for _ in 0..1000 {
            assert!(g.index_one_draw(13) < 13);
        }
    }

    #[test]
    fn lcg_block_split_partitions_stream() {
        // Block-splitting contract: p ranks each jumping to their block
        // start collectively reproduce the single sequential stream.
        let total = 96usize;
        let p = 4usize;
        let mut seq = Lcg128::new(5);
        let sequential: Vec<u64> = (0..total).map(|_| seq.next_u64()).collect();

        let mut stitched = Vec::new();
        for r in 0..p {
            let mut g = Lcg128::new(5);
            g.jump((r * total / p) as u64);
            for _ in 0..total / p {
                stitched.push(g.next_u64());
            }
        }
        assert_eq!(sequential, stitched);
    }
}
