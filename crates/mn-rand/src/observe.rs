//! Observation hook for O(1) stream jumps.
//!
//! The deterministic-stream contract (§4.2) makes jump positions part
//! of a run's identity: a rank that jumps to the wrong draw produces a
//! different network. The flight recorder in `mn-obs` therefore wants
//! to see every jump — but `mn-rand` must not depend on `mn-obs`, and
//! jump sites sit deep inside partitioned loops with no recorder in
//! scope. The bridge is a thread-local function pointer: engines
//! install an observer on each compute thread, and the jump primitives
//! call [`note_jump`]. No observer installed means a single
//! thread-local read per jump — effectively free.

use std::cell::Cell;

/// An installed jump observer: receives the logical draw position (for
/// absolute seeks) or jump length (for relative jumps).
pub type JumpObserver = fn(u64);

thread_local! {
    static OBSERVER: Cell<Option<JumpObserver>> = const { Cell::new(None) };
}

/// Install (or clear, with `None`) this thread's jump observer.
pub fn set_jump_observer(observer: Option<JumpObserver>) {
    OBSERVER.with(|slot| slot.set(observer));
}

/// Report one O(1) jump to this thread's observer, if any.
#[inline]
pub fn note_jump(draw: u64) {
    OBSERVER.with(|slot| {
        if let Some(observer) = slot.get() {
            observer(draw);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn capture(draw: u64) {
        SEEN.store(draw + 1, Ordering::SeqCst);
    }

    #[test]
    fn observer_sees_jumps_only_while_installed() {
        note_jump(7); // no observer: ignored
        assert_eq!(SEEN.load(Ordering::SeqCst), 0);
        set_jump_observer(Some(capture));
        note_jump(41);
        assert_eq!(SEEN.load(Ordering::SeqCst), 42);
        set_jump_observer(None);
        note_jump(7);
        assert_eq!(SEEN.load(Ordering::SeqCst), 42);
    }
}
