//! Continuous distributions needed by the synthetic data generator and
//! by tests.
//!
//! Implemented from first principles (Box–Muller, Marsaglia–Tsang)
//! rather than pulling in `rand_distr`, both to keep the dependency
//! footprint at the pre-approved list and because the synthetic
//! generator needs strict control over how many draws each sample
//! consumes for reproducibility audits.

use crate::stream::Stream;

/// Standard normal sampler (Box–Muller, polar-free form).
///
/// Produces one N(0,1) variate per call; caches the second Box–Muller
/// output so consecutive calls consume on average one draw-pair per two
/// samples.
#[derive(Debug, Clone, Default)]
pub struct Normal {
    cached: Option<f64>,
}

impl Normal {
    /// New sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one standard-normal variate.
    pub fn sample(&mut self, stream: &mut Stream) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let mut u1 = stream.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = stream.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let (s, c) = theta.sin_cos();
        self.cached = Some(r * s);
        r * c
    }

    /// Draw a normal variate with the given mean and standard deviation.
    pub fn sample_with(&mut self, stream: &mut Stream, mean: f64, sd: f64) -> f64 {
        debug_assert!(sd >= 0.0);
        mean + sd * self.sample(stream)
    }
}

/// Gamma(shape, scale) sampler using Marsaglia & Tsang's squeeze method
/// (2000), with the standard shape<1 boost.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Construct a sampler; `shape > 0`, `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
        Self { shape, scale }
    }

    /// Draw one Gamma(shape, scale) variate.
    pub fn sample(&self, stream: &mut Stream, normal: &mut Normal) -> f64 {
        if self.shape < 1.0 {
            // Boost: X ~ Gamma(a+1), U^(1/a) * X ~ Gamma(a).
            let boosted = Gamma::new(self.shape + 1.0, self.scale);
            let x = boosted.sample(stream, normal);
            let mut u = stream.next_f64();
            if u <= f64::MIN_POSITIVE {
                u = f64::MIN_POSITIVE;
            }
            return x * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = normal.sample(stream);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = stream.next_f64();
            // Squeeze check, then full check.
            if u < 1.0 - 0.0331 * (z * z) * (z * z) {
                return d * v3 * self.scale;
            }
            if u > 0.0 && u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Domain, MasterRng};

    fn stream(k: u64) -> Stream {
        MasterRng::new(777).stream(Domain::User, k)
    }

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut s = stream(0);
        let mut n = Normal::new();
        let xs: Vec<f64> = (0..100_000).map(|_| n.sample(&mut s)).collect();
        let (mean, var) = mean_var(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_with_params() {
        let mut s = stream(1);
        let mut n = Normal::new();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| n.sample_with(&mut s, 5.0, 2.0))
            .collect();
        let (mean, var) = mean_var(&xs);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut s = stream(2);
        let mut n = Normal::new();
        let g = Gamma::new(3.0, 2.0); // mean 6, var 12
        let xs: Vec<f64> = (0..100_000).map(|_| g.sample(&mut s, &mut n)).collect();
        let (mean, var) = mean_var(&xs);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut s = stream(3);
        let mut n = Normal::new();
        let g = Gamma::new(0.5, 1.0); // mean 0.5, var 0.5
        let xs: Vec<f64> = (0..200_000).map(|_| g.sample(&mut s, &mut n)).collect();
        let (mean, var) = mean_var(&xs);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((var - 0.5).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_is_positive() {
        let mut s = stream(4);
        let mut n = Normal::new();
        for &(a, b) in &[(0.3, 1.0), (1.0, 0.5), (10.0, 3.0)] {
            let g = Gamma::new(a, b);
            for _ in 0..1000 {
                assert!(g.sample(&mut s, &mut n) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_bad_params() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    fn samplers_are_deterministic() {
        let mut s1 = stream(5);
        let mut s2 = stream(5);
        let mut n1 = Normal::new();
        let mut n2 = Normal::new();
        let g = Gamma::new(2.0, 1.0);
        for _ in 0..100 {
            assert_eq!(n1.sample(&mut s1), n2.sample(&mut s2));
            assert_eq!(g.sample(&mut s1, &mut n1), g.sample(&mut s2, &mut n2));
        }
    }
}
