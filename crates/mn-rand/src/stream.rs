//! Named, splittable random streams.
//!
//! The determinism contract of the whole system (DESIGN.md §5) is
//! enforced here: every random decision made anywhere in the learner is
//! drawn from a [`Stream`] derived from a [`MasterRng`] by a *logical
//! name* — a [`Domain`] tag plus up to two integer keys — never from a
//! processor rank, thread id, or iteration order. Two executions that
//! make the same logical decisions therefore consume identical random
//! values regardless of how the work is partitioned, which is exactly
//! the property §4.2 of the paper achieves by initializing TRNG with the
//! same seed on all processors and block-splitting the streams.

use crate::splitmix::SplitMix64;
use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Logical domains for random streams.
///
/// Each domain corresponds to one source of randomness in the
/// Lemon-Tree algorithm. Keeping them distinct guarantees that, e.g.,
/// adding one extra draw in variable clustering cannot perturb the
/// stream seen by split assignment — which keeps the experiments in
/// `mn-bench` comparable across configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Domain {
    /// Random initial assignment of variables to clusters (Alg. 3 line 3).
    InitVarClusters,
    /// Random initial assignment of observations to clusters (Alg. 3 line 5).
    InitObsClusters,
    /// Variable reassignment sweep (Alg. 1, `Reassign-Var-Cluster`).
    ReassignVar,
    /// Variable cluster merging (Alg. 1, `Merge-Var-Cluster`).
    MergeVar,
    /// Observation reassignment sweep (Alg. 2, `Reassign-Obs-Cluster`).
    ReassignObs,
    /// Observation cluster merging (Alg. 2, `Merge-Obs-Cluster`).
    MergeObs,
    /// Observation sampling for regression-tree leaves (Alg. 4).
    TreeObsClusters,
    /// Posterior sampling steps for candidate splits (Alg. 5 lines 6-7).
    SplitPosterior,
    /// Weighted random split selection (Alg. 5 line 12).
    SplitSelectWeighted,
    /// Uniform random split selection (Alg. 5 line 13).
    SplitSelectUniform,
    /// Synthetic data generation (mn-data).
    Synthetic,
    /// Reserved for user extensions / tests.
    User,
}

impl Domain {
    /// A stable 64-bit tag for seed derivation. These values are part of
    /// the on-disk reproducibility contract: changing them changes every
    /// learned network, so they must never be reordered.
    #[inline]
    pub const fn tag(self) -> u64 {
        match self {
            Domain::InitVarClusters => 0x01,
            Domain::InitObsClusters => 0x02,
            Domain::ReassignVar => 0x03,
            Domain::MergeVar => 0x04,
            Domain::ReassignObs => 0x05,
            Domain::MergeObs => 0x06,
            Domain::TreeObsClusters => 0x07,
            Domain::SplitPosterior => 0x08,
            Domain::SplitSelectWeighted => 0x09,
            Domain::SplitSelectUniform => 0x0A,
            Domain::Synthetic => 0x0B,
            Domain::User => 0xFF,
        }
    }
}

/// The master source of randomness for one learning run.
///
/// Cheap to copy; holds only the 64-bit master seed. All processors (or
/// virtual ranks) construct the same `MasterRng`, mirroring the paper's
/// "initializing the PRNG with the same seed on all the processors".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterRng {
    seed: u64,
}

impl MasterRng {
    /// Create the master generator for a run.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed (recorded in experiment output for reproducibility).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the named stream `(domain, key_a, key_b)`.
    ///
    /// Derivation runs the master seed and the name through SplitMix64 to
    /// produce a 256-bit ChaCha key, so streams with different names are
    /// statistically independent.
    pub fn stream2(&self, domain: Domain, key_a: u64, key_b: u64) -> Stream {
        let mut sm = SplitMix64::new(self.seed);
        // Mix the name into the seed chain. Each component passes through
        // one SplitMix64 output so that sequential keys (0, 1, 2, ...) do
        // not produce correlated ChaCha keys.
        let mut acc = sm.next_u64();
        acc ^= SplitMix64::new(domain.tag().wrapping_add(acc)).next_u64();
        acc ^= SplitMix64::new(key_a.wrapping_add(acc.rotate_left(17))).next_u64();
        acc ^= SplitMix64::new(key_b.wrapping_add(acc.rotate_left(31))).next_u64();
        let mut key_sm = SplitMix64::new(acc);
        let mut key = [0u8; 32];
        key_sm.fill_bytes(&mut key);
        Stream {
            rng: ChaCha12Rng::from_seed(key),
        }
    }

    /// Derive the named stream `(domain, key)`.
    pub fn stream(&self, domain: Domain, key: u64) -> Stream {
        self.stream2(domain, key, 0)
    }

    /// Derive the stream for a domain with no per-entity key.
    pub fn domain_stream(&self, domain: Domain) -> Stream {
        self.stream2(domain, 0, 0)
    }
}

/// A deterministic random stream with O(1) jump-ahead.
///
/// Backed by ChaCha12, a counter-mode generator: `jump_to_draw(i)` seeks
/// directly to the i-th 64-bit draw, which is the block-splitting
/// operation the paper relies on ("block splitting the parallel PRNGs
/// ... takes O(1) time", §4.2). A rank that owns block `[lo, hi)` of a
/// logical work list jumps to draw `lo` and consumes `hi - lo` draws,
/// reproducing exactly the values a sequential execution would use for
/// those work items.
#[derive(Debug, Clone)]
pub struct Stream {
    rng: ChaCha12Rng,
}

impl Stream {
    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Next double in `[0, 1)`, using the top 53 bits of one draw.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53-bit mantissa; this is the standard "divide by 2^53" recipe
        // and guarantees next_f64 consumes exactly one 64-bit draw, which
        // the O(1)-jump accounting depends on.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias.
    ///
    /// Uses Lemire-style rejection; note this may consume more than one
    /// draw, so it must not be used inside block-split loops that assume
    /// one-draw-per-item (use [`Stream::index_one_draw`] there).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        let bound = bound as u64;
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi as usize;
            }
        }
    }

    /// Uniform index in `[0, bound)` consuming exactly one draw.
    ///
    /// Has a bias of at most `bound / 2^64`, which is negligible for the
    /// list sizes that occur here (≤ n·m), and keeps the
    /// one-draw-per-item invariant needed for O(1) block splitting.
    #[inline]
    pub fn index_one_draw(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        let wide = (self.next_u64() as u128) * (bound as u128);
        (wide >> 64) as usize
    }

    /// Jump so the next draw is logical draw number `i` of this stream.
    ///
    /// O(1): seeks the ChaCha counter. Draw numbering counts 64-bit
    /// outputs from stream construction.
    pub fn jump_to_draw(&mut self, i: u64) {
        crate::observe::note_jump(i);
        // ChaCha word position is counted in 32-bit words; one u64 draw
        // consumes two words.
        self.rng.set_word_pos((i as u128) * 2);
    }

    /// The current logical draw position (64-bit draws consumed).
    pub fn draw_pos(&self) -> u64 {
        (self.rng.get_word_pos() / 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let m = MasterRng::new(7);
        let mut a = m.stream(Domain::ReassignVar, 3);
        let mut b = m.stream(Domain::ReassignVar, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let m = MasterRng::new(7);
        let mut a = m.stream(Domain::ReassignVar, 3);
        let mut b = m.stream(Domain::ReassignVar, 4);
        let mut c = m.stream(Domain::MergeVar, 3);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MasterRng::new(1).stream(Domain::User, 0).next_u64();
        let b = MasterRng::new(2).stream(Domain::User, 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn jump_to_draw_matches_sequential() {
        let m = MasterRng::new(99);
        let mut seq = m.stream(Domain::SplitPosterior, 0);
        let values: Vec<u64> = (0..64).map(|_| seq.next_u64()).collect();

        for start in [0u64, 1, 7, 32, 63] {
            let mut jumped = m.stream(Domain::SplitPosterior, 0);
            jumped.jump_to_draw(start);
            assert_eq!(jumped.next_u64(), values[start as usize], "start={start}");
        }
    }

    #[test]
    fn block_split_reconstructs_sequential_stream() {
        // The core parallel-PRNG property: p ranks covering blocks of a
        // stream reproduce the sequential stream exactly.
        let m = MasterRng::new(123);
        let total = 100;
        let mut seq = m.stream(Domain::ReassignObs, 9);
        let sequential: Vec<u64> = (0..total).map(|_| seq.next_u64()).collect();

        for p in [1usize, 2, 3, 7, 10] {
            let mut stitched = Vec::with_capacity(total);
            for r in 0..p {
                let lo = r * total / p;
                let hi = (r + 1) * total / p;
                let mut s = m.stream(Domain::ReassignObs, 9);
                s.jump_to_draw(lo as u64);
                for _ in lo..hi {
                    stitched.push(s.next_u64());
                }
            }
            assert_eq!(stitched, sequential, "p={p}");
        }
    }

    #[test]
    fn next_f64_is_unit_interval_and_one_draw() {
        let m = MasterRng::new(5);
        let mut s = m.stream(Domain::User, 1);
        for i in 0..1000u64 {
            assert_eq!(s.draw_pos(), i);
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range() {
        let m = MasterRng::new(5);
        let mut s = m.stream(Domain::User, 2);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(s.below(bound) < bound);
            }
        }
    }

    #[test]
    fn index_one_draw_consumes_exactly_one() {
        let m = MasterRng::new(5);
        let mut s = m.stream(Domain::User, 3);
        for i in 0..100 {
            assert_eq!(s.draw_pos(), i);
            let v = s.index_one_draw(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let m = MasterRng::new(11);
        let mut s = m.stream(Domain::User, 4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[s.below(8)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }
}
