//! The random sampling oracles of §3.1.
//!
//! The paper assumes two collective sampling functions:
//!
//! * `Select-Unif-Rand(B)` — pick an element of a distributed list
//!   uniformly at random;
//! * `Select-Wtd-Rand(B, W)` — pick an element with probability
//!   proportional to its weight.
//!
//! Both are *collective*: every processor participates and every
//! processor learns the same chosen element. In this codebase the
//! weights have always been allgathered (or are computed redundantly on
//! every rank), so the oracles reduce to: every rank holds the full
//! weight list and consumes the same draw from a shared [`Stream`] —
//! which trivially yields identical choices on all ranks. The
//! communication cost the paper charges for these calls is modeled by
//! `mn-comm`'s cost accounting, not here.
//!
//! Scores in the Gibbs sampler are *log*-probabilities with a huge
//! dynamic range, so the weighted oracle comes in a log-space variant
//! using the standard max-shift trick.

use crate::stream::Stream;

/// Uniform selection from a list of `len` elements (Select-Unif-Rand).
///
/// Consumes exactly one draw, so block-split callers stay aligned.
#[inline]
pub fn select_unif_rand(stream: &mut Stream, len: usize) -> usize {
    assert!(len > 0, "cannot sample from an empty list");
    stream.index_one_draw(len)
}

/// Weighted selection with non-negative linear weights (Select-Wtd-Rand).
///
/// Returns the index of the chosen element. Elements with weight 0 are
/// never chosen. Panics if the weight sum is not positive and finite.
/// Consumes exactly one draw.
pub fn select_wtd_rand(stream: &mut Stream, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "cannot sample from an empty list");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weight sum must be positive and finite, got {total}"
    );
    let target = stream.next_f64() * total;
    pick_by_prefix(weights, target)
}

/// Weighted selection with log-space weights.
///
/// `log_weights[i] = ln w_i` (may be any finite float, or `-inf` for an
/// impossible choice). This is the form used for Gibbs reassignment and
/// merge moves, whose weights are Bayesian log-score differences
/// (§2.2.1): the probability of choice `i` is
/// `exp(lw_i - max) / Σ_j exp(lw_j - max)`.
/// Consumes exactly one draw.
pub fn select_wtd_log(stream: &mut Stream, log_weights: &[f64]) -> usize {
    assert!(!log_weights.is_empty(), "cannot sample from an empty list");
    let max = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max > f64::NEG_INFINITY,
        "all choices have zero probability"
    );
    // Shift by the max so the largest term is exp(0) = 1; with at least
    // one term equal to 1 the sum is well-conditioned.
    let mut total = 0.0;
    for &lw in log_weights {
        total += (lw - max).exp();
    }
    let target = stream.next_f64() * total;
    let mut acc = 0.0;
    let mut last_valid = 0;
    for (i, &lw) in log_weights.iter().enumerate() {
        let w = (lw - max).exp();
        if w > 0.0 {
            last_valid = i;
        }
        acc += w;
        if target < acc {
            return i;
        }
    }
    // Floating-point slack: fall back to the last element with nonzero
    // probability.
    last_valid
}

/// Batched weighted selection: bit-equivalent to `k` sequential
/// [`select_wtd_rand`] calls on the same stream, in one prefix walk.
///
/// The sequential oracle walks the full weight list once *per draw*;
/// callers picking several elements from the same (unchanged) weights —
/// the `J` split draws per tree node in Algorithm 5 — pay `k` walks.
/// Here the `k` targets are drawn first, in stream order (so the stream
/// advances by exactly `k` draws, identically to the sequential calls),
/// then a single merged walk assigns every target its pick.
///
/// Equivalence argument: the total is the same left-to-right sum, each
/// target is the same `next_f64() * total` at the same stream position,
/// and a target's pick is the first index `i` with
/// `target < prefix(i)` under the same accumulation order — the merged
/// walk pops each pending target at exactly that first crossing.
/// Targets left unassigned by floating-point slack fall back to the last
/// positive-weight index, as in the sequential walk.
///
/// `scratch` is a reusable `(target, draw index)` buffer so steady-state
/// callers stay allocation-free; `out` receives the `k` picks in draw
/// order.
pub fn select_wtd_rand_batch(
    stream: &mut Stream,
    weights: &[f64],
    k: usize,
    scratch: &mut Vec<(f64, usize)>,
    out: &mut Vec<usize>,
) {
    out.clear();
    assert!(!weights.is_empty(), "cannot sample from an empty list");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weight sum must be positive and finite, got {total}"
    );
    if k == 0 {
        return;
    }
    out.resize(k, 0);
    scratch.clear();
    for d in 0..k {
        scratch.push((stream.next_f64() * total, d));
    }
    // Ascending targets; the stable sort keeps equal targets in draw
    // order (they resolve to the same pick either way).
    scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut acc = 0.0;
    let mut last_valid = 0;
    let mut next = 0;
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight {w} at index {i}");
        if w > 0.0 {
            last_valid = i;
        }
        acc += w;
        while next < k && scratch[next].0 < acc {
            out[scratch[next].1] = i;
            next += 1;
        }
    }
    for &(_, d) in &scratch[next..] {
        out[d] = last_valid;
    }
}

/// Shared prefix-walk for linear weights.
fn pick_by_prefix(weights: &[f64], target: f64) -> usize {
    let mut acc = 0.0;
    let mut last_valid = 0;
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight {w} at index {i}");
        if w > 0.0 {
            last_valid = i;
        }
        acc += w;
        if target < acc {
            return i;
        }
    }
    last_valid
}

/// Reservoir-free weighted selection of `k` *distinct* indices, used by
/// tests and the ensemble tooling. Weights of already-chosen elements
/// are zeroed between draws. Consumes exactly `k` draws.
pub fn select_wtd_rand_distinct(stream: &mut Stream, weights: &[f64], k: usize) -> Vec<usize> {
    assert!(k <= weights.len(), "cannot choose {k} of {}", weights.len());
    let mut w = weights.to_vec();
    let mut chosen = Vec::with_capacity(k);
    for _ in 0..k {
        let i = select_wtd_rand(stream, &w);
        chosen.push(i);
        w[i] = 0.0;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Domain, MasterRng};

    fn stream() -> Stream {
        MasterRng::new(2024).stream(Domain::User, 0)
    }

    #[test]
    fn unif_is_uniform_enough() {
        let mut s = stream();
        let n = 5;
        let trials = 50_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[select_unif_rand(&mut s, n)] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: count {c}, expected ~{expect}");
        }
    }

    #[test]
    fn weighted_matches_weights() {
        let mut s = stream();
        let weights = [1.0, 3.0, 0.0, 6.0];
        let trials = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[select_wtd_rand(&mut s, &weights)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight element must never be chosen");
        let total: f64 = weights.iter().sum();
        for i in [0usize, 1, 3] {
            let want = weights[i] / total;
            let got = counts[i] as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.01,
                "index {i}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn log_weighted_matches_linear_weighted() {
        // select_wtd_log over ln(w) must produce the same distribution as
        // select_wtd_rand over w — and, since both consume a single draw
        // and use the same prefix walk, the *same choices* for the same
        // stream position.
        let weights = [0.5f64, 2.5, 4.0, 1.0];
        let logw: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
        let mut s1 = stream();
        let mut s2 = stream();
        for _ in 0..1000 {
            let a = select_wtd_rand(&mut s1, &weights);
            let b = select_wtd_log(&mut s2, &logw);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn log_weighted_handles_huge_magnitudes() {
        let mut s = stream();
        // Raw scores around -1e6: naive exponentiation would underflow
        // to all-zeros; the max-shift keeps the ratios exact.
        let logw = [-1_000_000.0, -1_000_000.0 + (2.0f64).ln(), -1_000_020.0];
        let trials = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[select_wtd_log(&mut s, &logw)] += 1;
        }
        // Ratios ~ 1 : 2 : e^-20 (≈ 0).
        let got = counts[1] as f64 / counts[0] as f64;
        assert!((got - 2.0).abs() < 0.15, "ratio {got}");
        assert!(counts[2] < trials / 100);
    }

    #[test]
    fn log_weighted_neg_infinity_excluded() {
        let mut s = stream();
        let logw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        for _ in 0..100 {
            assert_eq!(select_wtd_log(&mut s, &logw), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero probability")]
    fn log_weighted_all_impossible_panics() {
        let mut s = stream();
        select_wtd_log(&mut s, &[f64::NEG_INFINITY, f64::NEG_INFINITY]);
    }

    #[test]
    fn distinct_selection_is_distinct() {
        let mut s = stream();
        let weights = [1.0, 2.0, 3.0, 4.0, 5.0];
        for k in 0..=5 {
            let chosen = select_wtd_rand_distinct(&mut s, &weights, k);
            assert_eq!(chosen.len(), k);
            let mut sorted = chosen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {chosen:?}");
        }
    }

    #[test]
    fn batch_matches_sequential_weighted_draws() {
        // The batched oracle must reproduce k sequential calls exactly:
        // same picks, same stream advance. Exercised over weight lists
        // with zeros at the edges and interior, and across k values.
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![0.5, 2.5, 4.0, 1.0],
            vec![0.0, 3.0, 0.0, 0.0, 1.0, 0.0],
            vec![1e-12, 1e12, 1e-12],
            vec![0.0, 0.0, 7.0],
        ];
        for weights in &cases {
            for k in [0usize, 1, 2, 3, 7, 32] {
                let mut s_seq = stream();
                let mut s_bat = stream();
                let seq: Vec<usize> = (0..k).map(|_| select_wtd_rand(&mut s_seq, weights)).collect();
                let mut scratch = Vec::new();
                let mut out = Vec::new();
                select_wtd_rand_batch(&mut s_bat, weights, k, &mut scratch, &mut out);
                assert_eq!(seq, out, "picks diverged for weights {weights:?}, k={k}");
                assert_eq!(s_seq.draw_pos(), s_bat.draw_pos(), "stream advance diverged");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_on_random_weights() {
        // Randomized sweep: many weight vectors (some entries zeroed) and
        // draw counts, always comparing against the sequential oracle.
        let mut gen = stream();
        for round in 0..200 {
            let n = 1 + (round % 17);
            let weights: Vec<f64> = (0..n)
                .map(|_| {
                    let v = gen.next_f64();
                    if v < 0.3 {
                        0.0
                    } else {
                        v * 10.0
                    }
                })
                .collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let k = 1 + (round % 5);
            let mut s_seq = MasterRng::new(round as u64).stream(Domain::User, 1);
            let mut s_bat = MasterRng::new(round as u64).stream(Domain::User, 1);
            let seq: Vec<usize> = (0..k).map(|_| select_wtd_rand(&mut s_seq, &weights)).collect();
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            select_wtd_rand_batch(&mut s_bat, &weights, k, &mut scratch, &mut out);
            assert_eq!(seq, out, "round {round}: weights {weights:?}");
        }
    }

    #[test]
    fn oracles_consume_exactly_one_draw() {
        // Alignment property needed for O(1) block splitting: every
        // oracle call advances the stream by exactly one draw.
        let mut s = stream();
        let w = [1.0, 2.0];
        let lw = [0.0, 0.7];
        assert_eq!(s.draw_pos(), 0);
        select_unif_rand(&mut s, 10);
        assert_eq!(s.draw_pos(), 1);
        select_wtd_rand(&mut s, &w);
        assert_eq!(s.draw_pos(), 2);
        select_wtd_log(&mut s, &lw);
        assert_eq!(s.draw_pos(), 3);
    }
}
