//! # mn-rand — deterministic parallel randomness for `monet`
//!
//! This crate is the reproduction of §3.1 and §4.2 of *Parallel
//! Construction of Module Networks* (SC '21): the random-sampling
//! oracles (`Select-Unif-Rand`, `Select-Wtd-Rand`) and the parallel PRNG
//! discipline that makes the learned network **identical for every
//! processor count** and identical to a sequential run.
//!
//! The paper uses the TRNG library's multiple recursive generators,
//! whose streams can be *block split* in O(1) time so that the block
//! distribution of work matches the block distribution of random draws.
//! We provide the same contract on top of ChaCha12 (a counter-based
//! generator with O(1) seek) via [`Stream::jump_to_draw`], plus named
//! stream derivation ([`MasterRng::stream`]) so that every logical
//! source of randomness in the learner has its own independent stream.
//!
//! ## Layout
//! * [`stream`] — master seed, named-stream derivation, O(1) jump.
//! * [`sampling`] — the collective sampling oracles of §3.1, including a
//!   log-space weighted variant for Bayesian scores.
//! * [`distributions`] — Normal and Gamma samplers for the synthetic
//!   data generator.
//! * [`splitmix`] — seed derivation + an independent O(1)-jump LCG used
//!   to cross-check the block-splitting contract.
//! * [`observe`] — thread-local jump-observation hook for the flight
//!   recorder (no `mn-obs` dependency; engines install the bridge).

#![warn(missing_docs)]

pub mod distributions;
pub mod observe;
pub mod sampling;
pub mod splitmix;
pub mod stream;

pub use distributions::{Gamma, Normal};
pub use sampling::{
    select_unif_rand, select_wtd_log, select_wtd_rand, select_wtd_rand_batch,
    select_wtd_rand_distinct,
};
pub use splitmix::{Lcg128, SplitMix64};
pub use stream::{Domain, MasterRng, Stream};
