//! Acyclicity post-processing (extension).
//!
//! §2.2.3 of the paper notes that "the algorithm does not enforce the
//! acyclicity constraint. Therefore, the MoNets learned by the
//! algorithm may need to be post-processed using an existing method to
//! get the DAG for the learned network", and §5.1 declares that step
//! out of scope. We implement it as an extension: a deterministic
//! weighted feedback-edge heuristic that removes the cheapest
//! module-graph edges until the graph is a DAG.
//!
//! Edge weight = the strongest parent score that induces the edge, so
//! the heuristic preferentially keeps high-confidence regulation.

use crate::model::{ModuleEdge, ModuleNetwork};
use std::collections::BTreeMap;

/// A module-level edge with its supporting evidence weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// The edge.
    pub edge: ModuleEdge,
    /// Max parent score inducing the edge.
    pub weight: f64,
}

/// The weighted module-graph edges of a network (self-loops included —
/// they are trivially cyclic and always dropped first by
/// [`enforce_acyclicity`]).
pub fn weighted_edges(network: &ModuleNetwork) -> Vec<WeightedEdge> {
    let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for module in &network.modules {
        for (&parent_var, &score) in &module.parents.weighted {
            if let Some(src) = network.assignment[parent_var] {
                let w = weights.entry((src, module.index)).or_insert(f64::MIN);
                *w = w.max(score);
            }
        }
    }
    weights
        .into_iter()
        .map(|((from, to), weight)| WeightedEdge {
            edge: ModuleEdge { from, to },
            weight,
        })
        .collect()
}

/// Whether a set of directed edges over `n` vertices is acyclic
/// (Kahn's algorithm).
pub fn is_acyclic(n: usize, edges: &[ModuleEdge]) -> bool {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in edges {
        if e.from == e.to {
            return false;
        }
        adj[e.from].push(e.to);
        indeg[e.to] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in &adj[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    seen == n
}

/// Remove a minimum-weight-first set of edges so the remaining module
/// graph is a DAG. Returns `(kept, removed)`, both sorted.
///
/// Greedy: insert edges in descending weight (ties: edge order),
/// skipping any edge that would close a cycle — the classic
/// maximum-weight acyclic subgraph heuristic. Deterministic.
pub fn enforce_acyclicity(
    n_modules: usize,
    edges: &[WeightedEdge],
) -> (Vec<ModuleEdge>, Vec<ModuleEdge>) {
    let mut order: Vec<&WeightedEdge> = edges.iter().collect();
    order.sort_by(|a, b| {
        b.weight
            .total_cmp(&a.weight)
            .then(a.edge.cmp(&b.edge))
    });
    let mut kept: Vec<ModuleEdge> = Vec::new();
    let mut removed: Vec<ModuleEdge> = Vec::new();
    for we in order {
        if we.edge.from == we.edge.to {
            removed.push(we.edge);
            continue;
        }
        kept.push(we.edge);
        if is_acyclic(n_modules, &kept) {
            continue;
        }
        kept.pop();
        removed.push(we.edge);
    }
    kept.sort();
    removed.sort();
    (kept, removed)
}

/// Convenience: the DAG edges of a network after post-processing.
pub fn dag_edges(network: &ModuleNetwork) -> Vec<ModuleEdge> {
    enforce_acyclicity(network.n_modules(), &weighted_edges(network)).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: usize, to: usize) -> ModuleEdge {
        ModuleEdge { from, to }
    }

    fn we(from: usize, to: usize, weight: f64) -> WeightedEdge {
        WeightedEdge {
            edge: e(from, to),
            weight,
        }
    }

    #[test]
    fn acyclicity_detection() {
        assert!(is_acyclic(3, &[e(0, 1), e(1, 2)]));
        assert!(!is_acyclic(3, &[e(0, 1), e(1, 2), e(2, 0)]));
        assert!(!is_acyclic(2, &[e(0, 0)]), "self-loop is a cycle");
        assert!(is_acyclic(1, &[]));
    }

    #[test]
    fn two_cycle_drops_weaker_edge() {
        let edges = [we(0, 1, 0.9), we(1, 0, 0.3)];
        let (kept, removed) = enforce_acyclicity(2, &edges);
        assert_eq!(kept, vec![e(0, 1)]);
        assert_eq!(removed, vec![e(1, 0)]);
    }

    #[test]
    fn long_cycle_broken_at_minimum_weight() {
        let edges = [we(0, 1, 0.9), we(1, 2, 0.8), we(2, 0, 0.1)];
        let (kept, removed) = enforce_acyclicity(3, &edges);
        assert_eq!(removed, vec![e(2, 0)]);
        assert_eq!(kept.len(), 2);
        assert!(is_acyclic(3, &kept));
    }

    #[test]
    fn self_loops_always_removed() {
        let edges = [we(0, 0, 1.0), we(0, 1, 0.5)];
        let (kept, removed) = enforce_acyclicity(2, &edges);
        assert_eq!(kept, vec![e(0, 1)]);
        assert_eq!(removed, vec![e(0, 0)]);
    }

    #[test]
    fn dag_input_is_untouched() {
        let edges = [we(0, 1, 0.5), we(0, 2, 0.4), we(1, 2, 0.3)];
        let (kept, removed) = enforce_acyclicity(3, &edges);
        assert_eq!(kept.len(), 3);
        assert!(removed.is_empty());
    }

    #[test]
    fn result_is_always_acyclic_on_dense_cycles() {
        // Complete directed graph on 4 vertices (all 12 edges).
        let mut edges = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    edges.push(we(i, j, ((i * 4 + j) as f64) / 16.0));
                }
            }
        }
        let (kept, removed) = enforce_acyclicity(4, &edges);
        assert!(is_acyclic(4, &kept));
        assert_eq!(kept.len() + removed.len(), 12);
        // A tournament on 4 vertices can keep at most 6 edges.
        assert_eq!(kept.len(), 6);
    }
}
