//! GENOMICA-style iterative two-step learner (extension).
//!
//! §1.1 and §6 of the paper: the *other* MoNet learning approach is
//! the iterative two-step algorithm of Segal et al. (implemented in
//! GENOMICA), which alternates (a) learning each module's regression
//! tree / CPD given the current assignment with (b) reassigning each
//! variable to the module whose CPD explains it best. The paper's
//! conclusions name "a parallel solution for GENOMICA that scales to
//! thousands of cores" as future work built from the same components —
//! this module is that construction: both steps execute over the same
//! [`ParEngine`] substrate, so the two-step learner inherits the
//! scaling and determinism properties of the main pipeline.
//!
//! The comparison example (`examples/consensus_ensemble.rs`) and the
//! `ablation_partition` bench treat this learner as the related-work
//! baseline.

use crate::config::LearnerConfig;
use crate::model::{Module, ModuleNetwork};
use mn_comm::{Collective, ParEngine, RunReport};
use mn_data::Dataset;
use mn_rand::{Domain, MasterRng};
use mn_score::{SuffStats, COST_CELL, COST_LOGMARG};
use mn_tree::{assign_splits, learn_module_trees, learn_parents, ModuleEnsemble};

/// Parameters of the two-step learner.
#[derive(Debug, Clone)]
pub struct TwoStepParams {
    /// Number of modules K (fixed throughout, as in GENOMICA).
    pub n_modules: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop early when an iteration moves fewer than this many
    /// variables.
    pub min_moves: usize,
}

impl Default for TwoStepParams {
    fn default() -> Self {
        Self {
            n_modules: 4,
            max_iters: 3,
            min_moves: 1,
        }
    }
}

/// Score of one variable's row against a module's leaf partition: the
/// sum of normal-gamma marginals of the row restricted to each leaf of
/// the module's (first) regression tree.
fn row_fit(
    data: &Dataset,
    config: &LearnerConfig,
    ensemble: &ModuleEnsemble,
    var: usize,
) -> (f64, u64) {
    let row = data.values(var);
    let prior = &config.tree.prior;
    let mut score = 0.0;
    let mut work = 0u64;
    let tree = &ensemble.trees[0];
    for node in &tree.nodes {
        if !node.is_leaf() {
            continue;
        }
        let mut stats = SuffStats::empty();
        for &o in &node.obs {
            stats.add(row[o]);
        }
        work += node.obs.len() as u64 * COST_CELL;
        score += prior.log_marginal(&stats);
        work += COST_LOGMARG;
    }
    (score, work)
}

/// Learn a module network with the iterative two-step algorithm.
///
/// Uses the `tree` section of `config` for the CPD-learning step and
/// `config.seed` for all randomness. Returns the network and the
/// engine report (phases `"cpd"` and `"reassign"` alternate).
pub fn learn_two_step<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    params: &TwoStepParams,
) -> (ModuleNetwork, RunReport) {
    assert!(params.n_modules >= 1);
    assert!(params.max_iters >= 1);
    let master = MasterRng::new(config.seed);
    let n = data.n_vars();

    // Random initial assignment (one draw per variable).
    let mut stream = master.stream(Domain::InitVarClusters, u64::MAX);
    let mut assignment: Vec<usize> = (0..n)
        .map(|_| stream.index_one_draw(params.n_modules))
        .collect();

    let mut ensembles: Vec<ModuleEnsemble> = Vec::new();
    for iter in 0..params.max_iters {
        // Step (a): learn each module's tree ensemble under the current
        // assignment.
        engine.begin_phase("cpd");
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); params.n_modules];
        for (v, &k) in assignment.iter().enumerate() {
            members[k].push(v);
        }
        ensembles = members
            .iter()
            .enumerate()
            .map(|(k, vars)| {
                // An emptied module keeps a degenerate single-obs-cluster
                // ensemble so indices stay aligned.
                let vars = if vars.is_empty() { vec![] } else { vars.clone() };
                learn_module_trees(
                    engine,
                    data,
                    &master,
                    iter * params.n_modules + k,
                    &vars,
                    &config.tree,
                )
            })
            .collect();

        // Step (b): reassign every variable to its best-fitting module.
        engine.begin_phase("reassign");
        let ensembles_ref = &ensembles;
        let config_ref = config;
        let fits: Vec<Vec<f64>> = engine.dist_map(n, params.n_modules, &|v| {
            let mut scores = Vec::with_capacity(params.n_modules);
            let mut work = 0u64;
            for ens in ensembles_ref {
                if ens.trees.is_empty() {
                    scores.push(f64::NEG_INFINITY);
                    continue;
                }
                let (s, w) = row_fit(data, config_ref, ens, v);
                scores.push(s);
                work += w;
            }
            (scores, work)
        });
        engine.collective(Collective::AllGather, n);

        let mut moves = 0usize;
        for (v, scores) in fits.iter().enumerate() {
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(k, _)| k)
                .unwrap();
            if best != assignment[v] {
                assignment[v] = best;
                moves += 1;
            }
        }
        if moves < params.min_moves {
            break;
        }
    }

    // Final parent learning over the last ensembles (drop empty modules,
    // compacting indices).
    engine.begin_phase("parents");
    let keep: Vec<usize> = (0..ensembles.len())
        .filter(|&k| !ensembles[k].vars.is_empty())
        .collect();
    let mut compact: Vec<ModuleEnsemble> = Vec::with_capacity(keep.len());
    let mut remap = vec![usize::MAX; ensembles.len()];
    for (new_k, &old_k) in keep.iter().enumerate() {
        remap[old_k] = new_k;
        let mut ens = ensembles[old_k].clone();
        ens.module = new_k;
        compact.push(ens);
    }
    let parents_list = config.resolved_parents(n);
    let split_assignment = assign_splits(
        engine,
        data,
        &master,
        &compact,
        &parents_list,
        &config.tree,
    );
    let parents = learn_parents(engine, &compact, &split_assignment);

    let mut var_assignment: Vec<Option<usize>> = vec![None; n];
    let mut modules = Vec::with_capacity(compact.len());
    for (ens, parents) in compact.into_iter().zip(parents) {
        for &v in &ens.vars {
            var_assignment[v] = Some(ens.module);
        }
        modules.push(Module {
            index: ens.module,
            vars: ens.vars.clone(),
            ensemble: ens,
            parents,
        });
    }
    let network = ModuleNetwork {
        var_names: data.var_names.clone(),
        modules,
        assignment: var_assignment,
        seed: config.seed,
    };
    network.validate();
    (network, engine.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_comm::{SerialEngine, SimEngine};
    use mn_data::synthetic;

    #[test]
    fn two_step_learns_a_valid_network() {
        let d = synthetic::yeast_like(20, 14, 17).dataset;
        let config = LearnerConfig::paper_minimum(3);
        let params = TwoStepParams::default();
        let mut e = SerialEngine::new();
        let (net, report) = learn_two_step(&mut e, &d, &config, &params);
        net.validate();
        assert!(net.n_modules() >= 1);
        assert!(net.n_modules() <= params.n_modules);
        // All variables are assigned (two-step keeps everything).
        assert!(net.assignment.iter().all(|a| a.is_some()));
        assert!(report.phases.iter().any(|p| p.name == "cpd"));
        assert!(report.phases.iter().any(|p| p.name == "reassign"));
    }

    #[test]
    fn two_step_deterministic_across_engines() {
        let d = synthetic::yeast_like(20, 14, 17).dataset;
        let config = LearnerConfig::paper_minimum(3);
        let params = TwoStepParams::default();
        let (a, _) = learn_two_step(&mut SerialEngine::new(), &d, &config, &params);
        let (b, _) = learn_two_step(&mut SimEngine::new(128), &d, &config, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn reassignment_groups_correlated_variables() {
        // With strong planted structure and enough iterations, two
        // variables of the same planted module should usually co-locate.
        let s = synthetic::generate(&mn_data::SyntheticConfig {
            noise_sd: 0.15,
            n_modules: Some(2),
            ..mn_data::SyntheticConfig::new(16, 40, 23)
        });
        let config = LearnerConfig::paper_minimum(5);
        let params = TwoStepParams {
            n_modules: 2,
            max_iters: 4,
            min_moves: 1,
        };
        let mut e = SerialEngine::new();
        let (net, _) = learn_two_step(&mut e, &s.dataset, &config, &params);
        // Count pairs of same-planted-module members that share a
        // learned module; require better than chance.
        let regs = s.truth.regulators.len();
        let mut same = 0usize;
        let mut total = 0usize;
        for a in regs..16 {
            for b in (a + 1)..16 {
                if s.truth.assignment[a] == s.truth.assignment[b] {
                    total += 1;
                    if net.assignment[a] == net.assignment[b] {
                        same += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            same * 2 >= total,
            "only {same}/{total} planted pairs co-located"
        );
    }
}
