//! # monet — parallel construction of module networks
//!
//! A Rust reproduction of *Parallel Construction of Module Networks*
//! (Srivastava, Chockalingam, Aluru & Aluru, SC '21): the Lemon-Tree
//! module-network learning pipeline — GaneSH Gibbs co-clustering,
//! consensus clustering, and regression-tree module learning — with
//! the paper's distributed-memory parallelization, deterministic
//! parallel randomness (the learned network is identical for every
//! rank count), and both the optimized and reference (Lemon-Tree cost
//! profile) sequential implementations.
//!
//! ## Quickstart
//!
//! ```
//! use mn_comm::{ParEngine, SerialEngine};
//! use monet::{learn_module_network, LearnerConfig};
//!
//! let data = mn_data::synthetic::yeast_like(24, 16, 7).dataset;
//! let config = LearnerConfig::paper_minimum(7);
//! let mut engine = SerialEngine::new();
//! let (network, report) = learn_module_network(&mut engine, &data, &config);
//! assert!(network.n_modules() >= 1);
//! println!("learned {} modules in {:.3}s", network.n_modules(), report.total_s());
//! ```
//!
//! To reproduce the paper's cluster-scale runs, swap the engine:
//! `mn_comm::SimEngine::new(4096)` simulates 4096 ranks under the τ/μ
//! communication model; `mn_comm::ThreadEngine::new(p)` runs `p` real
//! rank-threads. The learned network is identical in all cases.
//!
//! ## Crate map
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | `mn-data` | §2.1, §5.1 | matrices, I/O, synthetic data |
//! | `mn-rand` | §3.1, §4.2 | splittable streams, sampling oracles |
//! | `mn-comm` | §3.1–3.2 | engines, τ/μ cost model, partitioning |
//! | `mn-score` | §2.2.1 | normal-gamma scores, sufficient statistics |
//! | `mn-gibbs` | §2.2.1, §3.2.1 | GaneSH co-clustering |
//! | `mn-consensus` | §2.2.2, §3.2.2 | co-occurrence + spectral clustering |
//! | `mn-tree` | §2.2.3, §3.2.3 | trees, split assignment, parents |
//! | `monet` | §2.2, §3.2, §6 | pipeline, model, output, extensions |

#![warn(missing_docs)]

pub mod acyclic;
pub mod checkpoint;
pub mod config;
pub mod genomica;
pub mod learn;
pub mod model;
pub mod output;
pub mod run_metrics;
pub mod stages;

pub use checkpoint::{CheckpointError, CheckpointStore, ResumePolicy};
pub use config::LearnerConfig;
pub use learn::{learn_module_network, phases};
pub use model::{Module, ModuleEdge, ModuleNetwork, NetworkSummary};
pub use output::{from_json, to_json, to_xml, write_json_file, write_xml_file};
pub use run_metrics::RunMetrics;
pub use stages::{learn_with_checkpoint, learn_with_checkpoint_policy};

// Re-export the sibling crates so downstream users (and the examples)
// need only one dependency.
pub use mn_comm;
pub use mn_consensus;
pub use mn_data;
pub use mn_gibbs;
pub use mn_obs;
pub use mn_rand;
pub use mn_score;
pub use mn_tree;
