//! The pipeline as resumable stages, with checkpointing.
//!
//! §5.3 of the paper: "any intermediate files and the final MoNet
//! structure ... are written to the disk by the process with rank 0".
//! This module exposes the three Lemon-Tree tasks as separate stage
//! functions with serializable outputs, plus a [`Checkpoint`] that
//! persists completed stages so a long run (the paper's runs last
//! hours even on 4096 cores) can resume after an interruption without
//! repeating finished work.
//!
//! [`crate::learn_module_network`] is the one-shot composition of
//! these stages; [`learn_with_checkpoint`] is the resumable one.

use crate::config::LearnerConfig;
use crate::learn::phases;
use crate::model::{Module, ModuleNetwork};
use mn_comm::ParEngine;
use mn_consensus::{cooccurrence_matrix, cooccurrence_work, spectral_clusters_counted};
use mn_data::Dataset;
use mn_gibbs::ganesh_ensemble;
use mn_rand::MasterRng;
use mn_tree::{assign_splits, learn_module_trees, learn_parents};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Output of task 1 (GaneSH): the sampled variable-cluster ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaneshOutput {
    /// `ensemble[g]` = the variable clusters of run `g`.
    pub ensemble: Vec<Vec<Vec<usize>>>,
}

/// Output of task 2 (consensus): the module member lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusOutput {
    /// `modules[k]` = sorted variables of module `k`.
    pub modules: Vec<Vec<usize>>,
}

/// Task 1: sample the GaneSH co-clustering ensemble.
pub fn run_ganesh<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
) -> GaneshOutput {
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::GANESH);
    GaneshOutput {
        ensemble: ganesh_ensemble(engine, data, &master, config.ganesh_runs, &config.ganesh),
    }
}

/// Task 2: consensus clustering of the ensemble (sequential,
/// replicated on all ranks per §3.2.2).
pub fn run_consensus<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    ganesh: &GaneshOutput,
) -> ConsensusOutput {
    engine.begin_phase(phases::CONSENSUS);
    let matrix = cooccurrence_matrix(
        data.n_vars(),
        &ganesh.ensemble,
        config.consensus_threshold,
    );
    let (modules, spectral_work) = spectral_clusters_counted(&matrix, &config.spectral);
    engine.replicated(
        cooccurrence_work(data.n_vars(), ganesh.ensemble.len()) + spectral_work,
    );
    ConsensusOutput { modules }
}

/// Task 3: learn trees, assign splits, score parents, and assemble the
/// network.
pub fn run_module_learning<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    consensus: &ConsensusOutput,
) -> ModuleNetwork {
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::MODULES);
    let ensembles: Vec<_> = consensus
        .modules
        .iter()
        .enumerate()
        .map(|(k, vars)| learn_module_trees(engine, data, &master, k, vars, &config.tree))
        .collect();
    let parents_list = config.resolved_parents(data.n_vars());
    let assignment = assign_splits(
        engine,
        data,
        &master,
        &ensembles,
        &parents_list,
        &config.tree,
    );
    let parents = learn_parents(engine, &ensembles, &assignment);

    let mut var_assignment: Vec<Option<usize>> = vec![None; data.n_vars()];
    let mut modules = Vec::with_capacity(ensembles.len());
    for ((k, ensemble), parents) in ensembles.into_iter().enumerate().zip(parents) {
        for &v in &ensemble.vars {
            var_assignment[v] = Some(k);
        }
        modules.push(Module {
            index: k,
            vars: ensemble.vars.clone(),
            ensemble,
            parents,
        });
    }
    let network = ModuleNetwork {
        var_names: data.var_names.clone(),
        modules,
        assignment: var_assignment,
        seed: config.seed,
    };
    network.validate();
    network
}

/// A persisted pipeline state: completed stage outputs plus the
/// fingerprint that guards against resuming with a different problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Master seed of the run.
    pub seed: u64,
    /// Data fingerprint: (n, m, sum of all cells) — cheap and
    /// sufficient to catch "resumed against the wrong matrix".
    pub fingerprint: (usize, usize, f64),
    /// Completed task 1, if any.
    pub ganesh: Option<GaneshOutput>,
    /// Completed task 2, if any.
    pub consensus: Option<ConsensusOutput>,
}

impl Checkpoint {
    /// Fresh checkpoint for a (data, config) pair.
    pub fn new(data: &Dataset, config: &LearnerConfig) -> Self {
        Self {
            seed: config.seed,
            fingerprint: Self::fingerprint(data),
            ganesh: None,
            consensus: None,
        }
    }

    fn fingerprint(data: &Dataset) -> (usize, usize, f64) {
        (
            data.n_vars(),
            data.n_obs(),
            data.matrix.as_slice().iter().sum(),
        )
    }

    /// Whether this checkpoint belongs to the given problem.
    pub fn matches(&self, data: &Dataset, config: &LearnerConfig) -> bool {
        self.seed == config.seed && self.fingerprint == Self::fingerprint(data)
    }

    /// Persist as JSON.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let text = serde_json::to_string(self).expect("checkpoint serialization");
        std::fs::write(path, text)
    }

    /// Load from JSON.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Run the pipeline, resuming from (and updating) the checkpoint file
/// at `path`. A checkpoint that does not match the problem is ignored
/// and overwritten. Returns the network and the engine report covering
/// only the stages that actually executed.
pub fn learn_with_checkpoint<E: ParEngine, P: AsRef<Path>>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    path: P,
) -> std::io::Result<(ModuleNetwork, mn_comm::RunReport)> {
    let path = path.as_ref();
    let mut checkpoint = match Checkpoint::load(path) {
        Ok(cp) if cp.matches(data, config) => cp,
        _ => Checkpoint::new(data, config),
    };

    if checkpoint.ganesh.is_none() {
        checkpoint.ganesh = Some(run_ganesh(engine, data, config));
        checkpoint.save(path)?;
    }
    if checkpoint.consensus.is_none() {
        let ganesh = checkpoint.ganesh.as_ref().expect("stage 1 present");
        checkpoint.consensus = Some(run_consensus(engine, data, config, ganesh));
        checkpoint.save(path)?;
    }
    let consensus = checkpoint.consensus.as_ref().expect("stage 2 present");
    let network = run_module_learning(engine, data, config, consensus);
    Ok((network, engine.report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_module_network;
    use mn_comm::SerialEngine;
    use mn_data::synthetic;

    fn setup() -> (Dataset, LearnerConfig) {
        (
            synthetic::yeast_like(20, 14, 31).dataset,
            LearnerConfig::paper_minimum(6),
        )
    }

    #[test]
    fn staged_run_equals_one_shot_run() {
        let (d, c) = setup();
        let (oneshot, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);

        let mut engine = SerialEngine::new();
        let t1 = run_ganesh(&mut engine, &d, &c);
        let t2 = run_consensus(&mut engine, &d, &c, &t1);
        let staged = run_module_learning(&mut engine, &d, &c, &t2);
        assert_eq!(oneshot, staged);
    }

    #[test]
    fn checkpoint_roundtrips_and_resumes() {
        let (d, c) = setup();
        let path = std::env::temp_dir().join("monet_checkpoint_test.json");
        std::fs::remove_file(&path).ok();

        // First run writes stage outputs.
        let (first, report1) =
            learn_with_checkpoint(&mut SerialEngine::new(), &d, &c, &path).unwrap();
        assert!(report1.phases.iter().any(|p| p.name == phases::GANESH));

        // Second run resumes: tasks 1-2 are skipped (no such phases in
        // the report), the network is identical.
        let (second, report2) =
            learn_with_checkpoint(&mut SerialEngine::new(), &d, &c, &path).unwrap();
        assert_eq!(first, second);
        assert!(
            !report2.phases.iter().any(|p| p.name == phases::GANESH),
            "GaneSH should have been resumed from the checkpoint"
        );
        assert!(report2.phases.iter().any(|p| p.name == phases::MODULES));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let (d, c) = setup();
        let path = std::env::temp_dir().join("monet_checkpoint_mismatch.json");
        std::fs::remove_file(&path).ok();
        learn_with_checkpoint(&mut SerialEngine::new(), &d, &c, &path).unwrap();

        // Different seed: stale checkpoint must not be reused.
        let mut c2 = c.clone();
        c2.seed = 999;
        let (net2, report) =
            learn_with_checkpoint(&mut SerialEngine::new(), &d, &c2, &path).unwrap();
        assert!(
            report.phases.iter().any(|p| p.name == phases::GANESH),
            "stale checkpoint should have been discarded"
        );
        let (reference, _) = learn_module_network(&mut SerialEngine::new(), &d, &c2);
        assert_eq!(net2, reference);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_serialization_roundtrip() {
        let (d, c) = setup();
        let mut cp = Checkpoint::new(&d, &c);
        cp.ganesh = Some(GaneshOutput {
            ensemble: vec![vec![vec![0, 1], vec![2]]],
        });
        let path = std::env::temp_dir().join("monet_checkpoint_serde.json");
        cp.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, loaded);
        std::fs::remove_file(&path).ok();
    }
}
