//! The pipeline as resumable stages, with checkpointing.
//!
//! §5.3 of the paper: "any intermediate files and the final MoNet
//! structure ... are written to the disk by the process with rank 0".
//! This module exposes the three Lemon-Tree tasks as separate stage
//! functions with serializable outputs, plus a [`Checkpoint`] that
//! persists completed stages so a long run (the paper's runs last
//! hours even on 4096 cores) can resume after an interruption without
//! repeating finished work.
//!
//! [`crate::learn_module_network`] is the one-shot composition of
//! these stages; [`learn_with_checkpoint`] is the resumable one.

use crate::checkpoint::{
    data_fingerprint, CheckpointError, CheckpointStore, ResumePolicy, UnitRecord,
};
use crate::config::LearnerConfig;
use crate::learn::phases;
use crate::model::{Module, ModuleNetwork};
use mn_comm::ParEngine;
use mn_consensus::{
    build_cooccurrence, consensus_outcome, extract_clusters, CoMatrix, ConsensusBackend,
    SparseSymMatrix,
};
use mn_data::Dataset;
use mn_gibbs::{ganesh, ganesh_ensemble};
use mn_rand::MasterRng;
use mn_tree::{assign_splits, learn_module_trees, learn_parents, ModuleEnsemble};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Output of task 1 (GaneSH): the sampled variable-cluster ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaneshOutput {
    /// `ensemble[g]` = the variable clusters of run `g`.
    pub ensemble: Vec<Vec<Vec<usize>>>,
}

/// Output of task 2 (consensus): the module member lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusOutput {
    /// `modules[k]` = sorted variables of module `k`.
    pub modules: Vec<Vec<usize>>,
}

/// Task 1: sample the GaneSH co-clustering ensemble.
pub fn run_ganesh<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
) -> GaneshOutput {
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::GANESH);
    GaneshOutput {
        ensemble: ganesh_ensemble(engine, data, &master, config.ganesh_runs, &config.ganesh),
    }
}

/// Task 2: consensus clustering of the ensemble on the configured
/// backend — sharded sparse by default, or the dense path replicated
/// on all ranks per §3.2.2 (`--consensus-dense`).
pub fn run_consensus<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    ganesh: &GaneshOutput,
) -> ConsensusOutput {
    engine.begin_phase(phases::CONSENSUS);
    let outcome = consensus_outcome(engine, data.n_vars(), &ganesh.ensemble, &config.consensus);
    ConsensusOutput {
        modules: outcome.clusters,
    }
}

/// Task 3: learn trees, assign splits, score parents, and assemble the
/// network.
pub fn run_module_learning<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    consensus: &ConsensusOutput,
) -> ModuleNetwork {
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::MODULES);
    let ensembles: Vec<_> = consensus
        .modules
        .iter()
        .enumerate()
        .map(|(k, vars)| learn_module_trees(engine, data, &master, k, vars, &config.tree))
        .collect();
    finish_module_learning(engine, data, config, &master, ensembles)
}

/// The tail of task 3 shared by the one-shot and checkpointed paths:
/// split assignment over the global candidate list, parent scoring,
/// and network assembly. Deterministic given the tree ensembles (the
/// split/parent streams are keyed, not positional), so checkpointed
/// runs recompute it instead of persisting it.
fn finish_module_learning<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    master: &MasterRng,
    ensembles: Vec<ModuleEnsemble>,
) -> ModuleNetwork {
    let parents_list = config.resolved_parents(data.n_vars());
    let assignment = assign_splits(engine, data, master, &ensembles, &parents_list, &config.tree);
    let parents = learn_parents(engine, &ensembles, &assignment);

    let mut var_assignment: Vec<Option<usize>> = vec![None; data.n_vars()];
    let mut modules = Vec::with_capacity(ensembles.len());
    for ((k, ensemble), parents) in ensembles.into_iter().enumerate().zip(parents) {
        for &v in &ensemble.vars {
            var_assignment[v] = Some(k);
        }
        modules.push(Module {
            index: k,
            vars: ensemble.vars.clone(),
            ensemble,
            parents,
        });
    }
    let network = ModuleNetwork {
        var_names: data.var_names.clone(),
        modules,
        assignment: var_assignment,
        seed: config.seed,
    };
    network.validate();
    network
}

/// A persisted pipeline state: completed stage outputs plus the
/// fingerprint that guards against resuming with a different problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Master seed of the run.
    pub seed: u64,
    /// Data fingerprint: (n, m, sum of all cells) — cheap and
    /// sufficient to catch "resumed against the wrong matrix".
    pub fingerprint: (usize, usize, f64),
    /// Completed task 1, if any.
    pub ganesh: Option<GaneshOutput>,
    /// Completed task 2, if any.
    pub consensus: Option<ConsensusOutput>,
}

impl Checkpoint {
    /// Fresh checkpoint for a (data, config) pair.
    pub fn new(data: &Dataset, config: &LearnerConfig) -> Self {
        Self {
            seed: config.seed,
            fingerprint: Self::fingerprint(data),
            ganesh: None,
            consensus: None,
        }
    }

    fn fingerprint(data: &Dataset) -> (usize, usize, f64) {
        (
            data.n_vars(),
            data.n_obs(),
            data.matrix.as_slice().iter().sum(),
        )
    }

    /// Whether this checkpoint belongs to the given problem.
    pub fn matches(&self, data: &Dataset, config: &LearnerConfig) -> bool {
        self.seed == config.seed && self.fingerprint == Self::fingerprint(data)
    }

    /// Persist as JSON.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let text = serde_json::to_string(self).expect("checkpoint serialization");
        std::fs::write(path, text)
    }

    /// Load from JSON.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Counter increments produced since the `before` snapshot — the
/// deltas persisted with a checkpoint unit so a resume can replay
/// them.
fn counter_delta<E: ParEngine>(
    before: &BTreeMap<String, u64>,
    engine: &E,
) -> BTreeMap<String, u64> {
    engine
        .obs()
        .counters()
        .iter()
        .filter_map(|(name, &after)| {
            let delta = after - before.get(name).copied().unwrap_or(0);
            // Keys that first appeared inside the window are recorded
            // even at delta 0 (`incr(_, 0)` creates a counter — e.g. a
            // consensus run that dropped nothing), so a resumed run
            // exposes the identical counter key set.
            (delta > 0 || !before.contains_key(name)).then(|| (name.clone(), delta))
        })
        .collect()
}

/// Execute one checkpoint unit: restore it (replaying its counter
/// deltas so the recorder state is bit-identical to having computed
/// it) when the store holds it, otherwise compute it, capture the
/// deltas, and persist both. `checkpoint.units_written` /
/// `checkpoint.units_skipped` are bumped *outside* the captured
/// window, identically on every rank, and excluded from cross-run
/// equivalence (see [`mn_obs::counters`]).
fn run_unit<E, T>(
    engine: &mut E,
    store: &mut CheckpointStore,
    unit: &str,
    compute: impl FnOnce(&mut E) -> T,
) -> Result<T, CheckpointError>
where
    E: ParEngine,
    T: Serialize + Deserialize,
{
    if let Some(record) = store.get::<T>(unit) {
        for (name, by) in &record.counters {
            engine.obs_mut().incr(name, *by);
        }
        engine.count(mn_obs::counters::CHECKPOINT_UNITS_SKIPPED, 1);
        // Restores happen identically on every rank (the post-load
        // io_barrier replicates the decision), so this is a
        // *deterministic* flight event: replay-comparable across
        // engines and rank counts.
        engine.obs().flight_event(mn_obs::FlightEvent::CkptUnit {
            unit: unit.to_string(),
            written: false,
        });
        return Ok(record.value);
    }
    let before = engine.obs().counters().clone();
    let value = compute(engine);
    let counters = counter_delta(&before, engine);
    let record = UnitRecord { value, counters };
    store.put(unit, &record)?;
    engine.count(mn_obs::counters::CHECKPOINT_UNITS_WRITTEN, 1);
    // Recorded on all ranks (not just the io rank): unit completion is
    // replicated control flow, and the deterministic flight sequence
    // must not depend on which rank holds the file handle.
    engine.obs().flight_event(mn_obs::FlightEvent::CkptUnit {
        unit: unit.to_string(),
        written: true,
    });
    Ok(record.value)
}

/// Run the pipeline with fine-grained checkpointing in the directory
/// `dir`, under [`ResumePolicy::Auto`] (an unusable or mismatched
/// checkpoint is silently discarded). See
/// [`learn_with_checkpoint_policy`] for the semantics.
pub fn learn_with_checkpoint<E: ParEngine, P: AsRef<Path>>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    dir: P,
) -> Result<(ModuleNetwork, mn_comm::RunReport), CheckpointError> {
    learn_with_checkpoint_policy(engine, data, config, dir, ResumePolicy::Auto)
}

/// Run the pipeline, resuming from (and extending) the checkpoint
/// directory `dir`.
///
/// Progress is persisted per *unit* — each GaneSH run of task 1
/// (`ganesh_run_<g>.json`), the consensus partition of task 2
/// (`consensus.json`), and each module's tree ensemble of task 3
/// (`module_<k>.json`) — so a run killed mid-task resumes after the
/// last completed unit rather than at a stage boundary. Split
/// assignment and parent scoring recompute from the stored ensembles
/// (they are deterministic under the keyed-stream discipline).
///
/// Restored units replay their recorded counter deltas, and every
/// phase is begun whether or not its units were skipped, so a resumed
/// run finishes with the same counters, phase sequence, and (by the
/// keyed-stream discipline) bit-identical network as the uninterrupted
/// run — the property `tests/fault_resume.rs` sweeps. Only
/// [`ParEngine::io_rank`] writes; an uncounted
/// [`ParEngine::io_barrier`] after the load keeps SPMD ranks' resume
/// decisions replicated without perturbing the accounting.
pub fn learn_with_checkpoint_policy<E: ParEngine, P: AsRef<Path>>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    dir: P,
    policy: ResumePolicy,
) -> Result<(ModuleNetwork, mn_comm::RunReport), CheckpointError> {
    let config = config.clone().validated().expect("invalid configuration");
    let mut store = CheckpointStore::open(
        dir,
        config.seed,
        data_fingerprint(data),
        engine.nranks(),
        policy,
        engine.io_rank(),
    )?;
    engine.io_barrier();

    // Task 1 — one unit per GaneSH run (independent keyed streams).
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::GANESH);
    let mut ensemble = Vec::with_capacity(config.ganesh_runs);
    for run in 0..config.ganesh_runs as u64 {
        let unit = format!("ganesh_run_{run}");
        ensemble.push(run_unit(engine, &mut store, &unit, |engine| {
            ganesh(engine, data, &master, run, &config.ganesh).var_cluster_members()
        })?);
    }
    let ganesh_out = GaneshOutput { ensemble };

    // Task 2 — on the sparse backend, two units: the thresholded
    // matrix (persisted in its canonical upper-triangle CSR form,
    // `consensus_cooc.json`) and the extracted partition
    // (`consensus.json`), so a run killed between the build and the
    // extraction resumes from the matrix. The dense baseline keeps the
    // single `consensus.json` unit (the full matrix is exactly the
    // footprint the sparse path exists to avoid persisting).
    engine.begin_phase(phases::CONSENSUS);
    let modules = match config.consensus.backend {
        ConsensusBackend::Dense => run_unit(engine, &mut store, "consensus", |engine| {
            consensus_outcome(engine, data.n_vars(), &ganesh_out.ensemble, &config.consensus)
                .clusters
        })?,
        ConsensusBackend::Sparse => {
            let parts = run_unit(engine, &mut store, "consensus_cooc", |engine| {
                match build_cooccurrence(
                    engine,
                    data.n_vars(),
                    &ganesh_out.ensemble,
                    &config.consensus,
                ) {
                    CoMatrix::Sparse(m) => m.to_parts(),
                    CoMatrix::Dense(_) => unreachable!("sparse backend built a dense matrix"),
                }
            })?;
            let matrix = CoMatrix::Sparse(SparseSymMatrix::from_parts(parts));
            run_unit(engine, &mut store, "consensus", |engine| {
                extract_clusters(engine, &matrix, &config.consensus).clusters
            })?
        }
    };
    let consensus = ConsensusOutput { modules };

    // Task 3 — one unit per module's tree ensemble, then the
    // deterministic tail (splits, parents, assembly) recomputed.
    let master = MasterRng::new(config.seed);
    engine.begin_phase(phases::MODULES);
    let mut ensembles = Vec::with_capacity(consensus.modules.len());
    for (k, vars) in consensus.modules.iter().enumerate() {
        let unit = format!("module_{k}");
        ensembles.push(run_unit(engine, &mut store, &unit, |engine| {
            learn_module_trees(engine, data, &master, k, vars, &config.tree)
        })?);
    }
    let network = finish_module_learning(engine, data, &config, &master, ensembles);
    Ok((network, engine.report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_module_network;
    use mn_comm::SerialEngine;
    use mn_data::synthetic;
    use std::path::PathBuf;

    fn setup() -> (Dataset, LearnerConfig) {
        (
            synthetic::yeast_like(20, 14, 31).dataset,
            LearnerConfig::paper_minimum(6),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("monet_stages_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Counters minus the `checkpoint.*` bookkeeping — the set the
    /// cross-run equivalence contract covers.
    fn equivalence_counters(engine: &SerialEngine) -> BTreeMap<String, u64> {
        engine
            .obs()
            .counters()
            .iter()
            .filter(|(name, _)| !name.starts_with("checkpoint."))
            .map(|(name, &v)| (name.clone(), v))
            .collect()
    }

    #[test]
    fn staged_run_equals_one_shot_run() {
        let (d, c) = setup();
        let (oneshot, _) = learn_module_network(&mut SerialEngine::new(), &d, &c);

        let mut engine = SerialEngine::new();
        let t1 = run_ganesh(&mut engine, &d, &c);
        let t2 = run_consensus(&mut engine, &d, &c, &t1);
        let staged = run_module_learning(&mut engine, &d, &c, &t2);
        assert_eq!(oneshot, staged);
    }

    #[test]
    fn checkpointed_run_is_identical_to_plain_run() {
        // The crash-consistency contract's fault-free half: enabling
        // checkpointing perturbs neither the network nor the counters.
        let (d, c) = setup();
        let dir = tmpdir("plain_eq");
        let mut plain_engine = SerialEngine::new();
        let (plain, plain_report) = learn_module_network(&mut plain_engine, &d, &c);

        let mut ckpt_engine = SerialEngine::new();
        let (ckpt, ckpt_report) =
            learn_with_checkpoint(&mut ckpt_engine, &d, &c, &dir).unwrap();
        assert_eq!(
            crate::to_json(&plain),
            crate::to_json(&ckpt),
            "checkpoint writes must not perturb the learned network"
        );
        assert_eq!(
            equivalence_counters(&plain_engine),
            equivalence_counters(&ckpt_engine)
        );
        let phase_names =
            |r: &mn_comm::RunReport| r.phases.iter().map(|p| p.name.clone()).collect::<Vec<_>>();
        assert_eq!(phase_names(&plain_report), phase_names(&ckpt_report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_roundtrips_and_resumes() {
        let (d, c) = setup();
        let dir = tmpdir("resume");

        let mut e1 = SerialEngine::new();
        let (first, _) = learn_with_checkpoint(&mut e1, &d, &c, &dir).unwrap();
        let written = e1.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_WRITTEN);
        assert!(written >= 3, "expected ≥3 units (G runs + consensus + modules)");
        assert_eq!(e1.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_SKIPPED), 0);

        // Second run restores every unit; network, equivalence
        // counters, and phase sequence are bit-identical.
        let mut e2 = SerialEngine::new();
        let (second, report2) = learn_with_checkpoint(&mut e2, &d, &c, &dir).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            e2.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_SKIPPED),
            written,
            "every persisted unit should have been restored"
        );
        assert_eq!(equivalence_counters(&e1), equivalence_counters(&e2));
        assert_eq!(report2.phases.len(), 3, "phases are begun even when skipped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_checkpoint_resumes_mid_task() {
        // Drop the consensus + module units from a finished checkpoint:
        // the resumed run restores the GaneSH runs, recomputes the rest,
        // and still matches bit-for-bit.
        let (d, c) = setup();
        let dir = tmpdir("partial");
        let mut e1 = SerialEngine::new();
        let (first, _) = learn_with_checkpoint(&mut e1, &d, &c, &dir).unwrap();

        let manifest_path = dir.join(crate::checkpoint::MANIFEST_FILE);
        let mut manifest: crate::checkpoint::Manifest =
            serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
        manifest
            .entries
            .retain(|unit, _| unit.starts_with("ganesh_run_"));
        std::fs::write(&manifest_path, serde_json::to_string(&manifest).unwrap()).unwrap();

        let mut e2 = SerialEngine::new();
        let (second, _) = learn_with_checkpoint(&mut e2, &d, &c, &dir).unwrap();
        assert_eq!(first, second);
        assert_eq!(equivalence_counters(&e1), equivalence_counters(&e2));
        assert!(
            e2.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_SKIPPED) > 0
                && e2.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_WRITTEN) > 0,
            "resume should mix restored and recomputed units"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let (d, c) = setup();
        let dir = tmpdir("mismatch");
        learn_with_checkpoint(&mut SerialEngine::new(), &d, &c, &dir).unwrap();

        // Different seed: stale checkpoint must not be reused (Auto
        // discards it silently).
        let mut c2 = c.clone();
        c2.seed = 999;
        let mut e2 = SerialEngine::new();
        let (net2, _) = learn_with_checkpoint(&mut e2, &d, &c2, &dir).unwrap();
        assert_eq!(
            e2.obs().counter(mn_obs::counters::CHECKPOINT_UNITS_SKIPPED),
            0,
            "stale checkpoint should have been discarded"
        );
        let (reference, _) = learn_module_network(&mut SerialEngine::new(), &d, &c2);
        assert_eq!(net2, reference);

        // Strict refuses the same mismatch with a typed error.
        let err = learn_with_checkpoint_policy(
            &mut SerialEngine::new(),
            &d,
            &c,
            &dir,
            ResumePolicy::Strict,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_serialization_roundtrip() {
        let (d, c) = setup();
        let mut cp = Checkpoint::new(&d, &c);
        cp.ganesh = Some(GaneshOutput {
            ensemble: vec![vec![vec![0, 1], vec![2]]],
        });
        let path = std::env::temp_dir().join("monet_checkpoint_serde.json");
        cp.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_matches_same_dims_different_data() {
        // Same (n, m) but different cells: the cell-sum component of
        // the fingerprint must reject the swap.
        let (d, c) = setup();
        let cp = Checkpoint::new(&d, &c);
        let mut other = d.clone();
        let first = other.matrix.get(0, 0);
        other.matrix.set(0, 0, first + 1.0);
        assert_eq!((d.n_vars(), d.n_obs()), (other.n_vars(), other.n_obs()));
        assert!(cp.matches(&d, &c));
        assert!(!cp.matches(&other, &c), "same dims, different cells");
    }

    #[test]
    fn checkpoint_matches_same_data_different_seed() {
        let (d, c) = setup();
        let cp = Checkpoint::new(&d, &c);
        let mut c2 = c.clone();
        c2.seed = c.seed + 1;
        assert!(cp.matches(&d, &c));
        assert!(!cp.matches(&d, &c2), "same data, different seed");
    }
}
