//! Learner configuration.

use mn_consensus::ConsensusParams;
use mn_gibbs::GaneshParams;
use mn_score::{CandidateScoring, NormalGamma, ScoreMode};
use mn_tree::TreeParams;
use serde::{Deserialize, Serialize};

/// The complete configuration of one module-network learning run —
/// all of Lemon-Tree's execution parameters in one place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Master PRNG seed (the experiments of §5 repeat each run with
    /// three different seeds).
    pub seed: u64,
    /// Number of independent GaneSH runs `G` (§5.1 uses `G = 1` for
    /// the minimum-runtime measurements; robustness studies use more).
    pub ganesh_runs: usize,
    /// GaneSH co-clustering parameters (task 1).
    pub ganesh: GaneshParams,
    /// Consensus-clustering parameters (task 2): threshold, backend
    /// (sparse sharded by default, `--consensus-dense` for the
    /// replicated §3.2.2 baseline), spectral extraction.
    pub consensus: ConsensusParams,
    /// Module-learning parameters (task 3).
    pub tree: TreeParams,
    /// Candidate parents `P`; `None` = every variable (§5.1: "we use
    /// all the genes in the data sets as the candidate regulators").
    pub candidate_parents: Option<Vec<usize>>,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ganesh_runs: 1,
            ganesh: GaneshParams::default(),
            consensus: ConsensusParams::default(),
            tree: TreeParams::default(),
            candidate_parents: None,
        }
    }
}

impl LearnerConfig {
    /// The paper's minimum-runtime configuration (§5.1): one GaneSH
    /// run, one update step, one regression tree per module, all
    /// variables as candidate parents.
    pub fn paper_minimum(seed: u64) -> Self {
        Self {
            seed,
            ganesh_runs: 1,
            ganesh: GaneshParams {
                update_steps: 1,
                ..GaneshParams::default()
            },
            tree: TreeParams {
                update_steps: 2,
                burn_in: 1, // R = 1 tree
                ..TreeParams::default()
            },
            ..Self::default()
        }
    }

    /// Switch both tasks to the given scoring mode.
    pub fn with_mode(mut self, mode: ScoreMode) -> Self {
        self.ganesh.mode = mode;
        self.tree.mode = mode;
        self
    }

    /// Switch every Gibbs sweep (GaneSH co-clustering and the tree
    /// task's observation sampler) to the given candidate-scoring
    /// path.
    pub fn with_candidate_scoring(mut self, scoring: CandidateScoring) -> Self {
        self.ganesh.candidate_scoring = scoring;
        self.tree.candidate_scoring = scoring;
        self
    }

    /// Set the shared prior everywhere.
    pub fn with_prior(mut self, prior: NormalGamma) -> Self {
        self.ganesh.prior = prior;
        self.tree.prior = prior;
        self
    }

    /// Validate cross-field consistency.
    pub fn validated(self) -> Result<Self, String> {
        if self.ganesh_runs == 0 {
            return Err("ganesh_runs must be >= 1".into());
        }
        if self.ganesh.update_steps == 0 {
            return Err("ganesh.update_steps must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.consensus.threshold) {
            return Err(format!(
                "consensus threshold must be in [0,1], got {}",
                self.consensus.threshold
            ));
        }
        let _ = self.tree.clone().validated()?;
        self.ganesh.prior.validated()?;
        Ok(self)
    }

    /// Resolve the candidate-parent list for a data set of `n` variables.
    pub fn resolved_parents(&self, n: usize) -> Vec<usize> {
        match &self.candidate_parents {
            Some(list) => {
                assert!(
                    list.iter().all(|&v| v < n),
                    "candidate parent out of range"
                );
                list.clone()
            }
            None => (0..n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(LearnerConfig::default().validated().is_ok());
        assert!(LearnerConfig::paper_minimum(7).validated().is_ok());
    }

    #[test]
    fn paper_minimum_has_one_tree() {
        let c = LearnerConfig::paper_minimum(0);
        assert_eq!(c.ganesh_runs, 1);
        assert_eq!(c.ganesh.update_steps, 1);
        assert_eq!(c.tree.trees_per_module(), 1);
    }

    #[test]
    fn bad_configs_rejected() {
        let c = LearnerConfig {
            ganesh_runs: 0,
            ..LearnerConfig::default()
        };
        assert!(c.validated().is_err());
        let c = LearnerConfig {
            consensus: ConsensusParams {
                threshold: 1.5,
                ..ConsensusParams::default()
            },
            ..LearnerConfig::default()
        };
        assert!(c.validated().is_err());
    }

    #[test]
    fn parents_default_to_all() {
        let c = LearnerConfig::default();
        assert_eq!(c.resolved_parents(4), vec![0, 1, 2, 3]);
        let c = LearnerConfig {
            candidate_parents: Some(vec![1, 3]),
            ..LearnerConfig::default()
        };
        assert_eq!(c.resolved_parents(4), vec![1, 3]);
    }

    #[test]
    fn with_mode_applies_everywhere() {
        let c = LearnerConfig::default().with_mode(ScoreMode::Reference);
        assert_eq!(c.ganesh.mode, ScoreMode::Reference);
        assert_eq!(c.tree.mode, ScoreMode::Reference);
    }

    #[test]
    fn with_candidate_scoring_applies_everywhere() {
        let c = LearnerConfig::default();
        assert_eq!(c.ganesh.candidate_scoring, CandidateScoring::Kernel);
        assert_eq!(c.tree.candidate_scoring, CandidateScoring::Kernel);
        let c = c.with_candidate_scoring(CandidateScoring::Naive);
        assert_eq!(c.ganesh.candidate_scoring, CandidateScoring::Naive);
        assert_eq!(c.tree.candidate_scoring, CandidateScoring::Naive);
    }
}
