//! Crash-consistent fine-grained checkpointing.
//!
//! [`crate::stages::learn_with_checkpoint`] persists the pipeline at
//! *unit* granularity — one GaneSH run, the consensus partition, one
//! module's tree ensemble — so a killed run resumes mid-task instead
//! of repeating a whole stage. This module is the storage layer:
//!
//! * A checkpoint is a **directory** holding one JSON file per
//!   completed unit plus `manifest.json`, a versioned index carrying
//!   the `(seed, data-fingerprint)` guard of the original run and an
//!   FNV-1a-64 content checksum per unit file.
//! * Every write is **atomic**: bytes go to `<file>.tmp` first, then a
//!   same-directory `rename` publishes them. The manifest is rewritten
//!   (atomically) *after* the unit file it references, so a crash at
//!   any instruction leaves either an ignored `.tmp` file or a
//!   complete-but-unreferenced unit file — never a manifest pointing
//!   at torn data.
//! * Loading verifies the version, the guard, and every checksum up
//!   front; what a [`ResumePolicy`] does about a problem is the
//!   caller's choice (silently start fresh, fail loudly, or wipe).
//!
//! Under SPMD every rank opens the store and tracks puts in memory so
//! resume decisions stay replicated, but only the I/O rank
//! ([`mn_comm::ParEngine::io_rank`]) touches the disk — the paper's
//! "rank 0 writes intermediate files" convention (§5.3), and what
//! makes tmp-file + rename atomicity race-free.

use mn_data::Dataset;
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Manifest format version; bumped on incompatible layout changes.
/// Version 2 added rank-count provenance (`nranks`); version-1
/// manifests are still readable — they simply predate the field.
pub const MANIFEST_VERSION: u32 = 2;

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name of the writer lock inside a checkpoint directory.
/// Deliberately not `*.json`: `ForceRestart`'s wipe must leave the
/// held lock alone.
pub const LOCK_FILE: &str = "ckpt.lock";

/// FNV-1a 64-bit hash — the unit-file content checksum. Not
/// cryptographic; it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `(n_vars, n_obs, cell sum)` fingerprint guarding a checkpoint
/// against being resumed with a different matrix. Cheap, and exact
/// float summation makes it deterministic across runs.
pub fn data_fingerprint(data: &Dataset) -> (usize, usize, f64) {
    (
        data.n_vars(),
        data.n_obs(),
        data.matrix.as_slice().iter().sum(),
    )
}

/// What `open` does when the on-disk state is unusable (corrupt,
/// version-skewed, or guarded against a different problem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Start fresh, silently overwriting the unusable state — the
    /// default for `--checkpoint-dir` without `--resume`.
    Auto,
    /// Fail with a descriptive [`CheckpointError`] — `--resume`, where
    /// the user asserted a resumable checkpoint exists.
    Strict,
    /// Delete the existing checkpoint files and start fresh —
    /// `--resume --force-restart`, the recovery path for a corrupt
    /// checkpoint.
    ForceRestart,
}

/// Typed failures of the checkpoint layer. Corruption is always an
/// `Err`, never a panic — the [`ResumePolicy`] decides whether the
/// caller sees it.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem failure.
    Io(io::Error),
    /// A file exists but its content is unusable (truncated or
    /// bit-flipped manifest, checksum mismatch, missing unit file).
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Human-readable description of what is wrong with it.
        reason: String,
    },
    /// The manifest was written by an incompatible format version.
    Version {
        /// Version found in the manifest.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The checkpoint belongs to a different problem — its seed or
    /// data fingerprint does not match the current run.
    Mismatch {
        /// Which guard failed and the two values.
        reason: String,
    },
    /// `--resume` was requested but the directory holds no manifest.
    NothingToResume {
        /// The checkpoint directory that was searched.
        dir: PathBuf,
    },
    /// Another live writer holds this checkpoint directory. Two
    /// concurrent writers would interleave manifest rewrites, so the
    /// second opener is refused instead of corrupting the first.
    Locked {
        /// The contested checkpoint directory.
        dir: PathBuf,
        /// Pid recorded in the lock file (0 if unreadable).
        holder: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt { file, reason } => {
                write!(f, "corrupt checkpoint: {}: {reason}", file.display())
            }
            CheckpointError::Version { found, expected } => write!(
                f,
                "checkpoint manifest version {found} is not supported \
                 (this build reads version {expected})"
            ),
            CheckpointError::Mismatch { reason } => {
                write!(f, "checkpoint belongs to a different run: {reason}")
            }
            CheckpointError::NothingToResume { dir } => write!(
                f,
                "--resume: no checkpoint manifest in {}",
                dir.display()
            ),
            CheckpointError::Locked { dir, holder } => write!(
                f,
                "checkpoint dir {} is locked by a live writer (pid {holder}); \
                 two concurrent writers would corrupt the manifest",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One persisted unit of progress: the unit's value plus the
/// deterministic counter increments its computation produced. Replaying
/// the increments when a unit is skipped on resume keeps the final
/// counter state bit-identical to the uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord<T> {
    /// The unit's computed output.
    pub value: T,
    /// Counter deltas (`mn_obs` counter name → increment) accumulated
    /// while computing the unit.
    pub counters: BTreeMap<String, u64>,
}

// The vendored serde_derive subset does not handle generics; the two
// impls below are exactly what it would emit for a named-field struct.
impl<T: Serialize> Serialize for UnitRecord<T> {
    fn serialize_value(&self) -> Content {
        Content::Map(vec![
            ("value".to_string(), self.value.serialize_value()),
            ("counters".to_string(), self.counters.serialize_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for UnitRecord<T> {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        Ok(Self {
            value: serde::map_field(value, "value")?,
            counters: serde::map_field(value, "counters")?,
        })
    }
}

/// The versioned checkpoint index: identity guard plus one checksum
/// per completed unit file.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Manifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Master seed of the run that wrote this checkpoint.
    pub seed: u64,
    /// Data fingerprint of the run ([`data_fingerprint`]).
    pub fingerprint: (usize, usize, f64),
    /// Rank count of the run that wrote this checkpoint (`None` for
    /// version-1 manifests, which predate the field). Provenance, not
    /// a guard: every stored unit is a rank-count-independent value
    /// (the determinism contract), so a checkpoint taken at `p` ranks
    /// resumes at any `p′` — elastic restart is asserting exactly this.
    pub nranks: Option<u64>,
    /// Unit name → FNV-1a-64 checksum of `<unit>.json`.
    pub entries: BTreeMap<String, u64>,
}

// Hand-written so version-1 manifests (no `nranks` key) still load;
// the derive's `map_field` would hard-error on the missing field.
impl Deserialize for Manifest {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        let version: u32 = serde::map_field(value, "version")?;
        let nranks: Option<u64> = if version >= 2 {
            serde::map_field(value, "nranks")?
        } else {
            None
        };
        Ok(Self {
            version,
            seed: serde::map_field(value, "seed")?,
            fingerprint: serde::map_field(value, "fingerprint")?,
            nranks,
            entries: serde::map_field(value, "entries")?,
        })
    }
}

impl Manifest {
    fn fresh(seed: u64, fingerprint: (usize, usize, f64), nranks: usize) -> Self {
        Self {
            version: MANIFEST_VERSION,
            seed,
            fingerprint,
            nranks: Some(nranks as u64),
            entries: BTreeMap::new(),
        }
    }
}

/// Checkpoint dirs locked by *this* process. The on-disk lock file
/// carries only a pid, which cannot tell two threads of one process
/// apart (the serve worker pool runs many jobs in one pid); this set
/// is the in-process authority, keyed by canonical path.
fn locked_dirs() -> &'static Mutex<BTreeSet<PathBuf>> {
    static DIRS: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    DIRS.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Exclusive writer lock on a checkpoint directory: an entry in the
/// in-process registry plus an on-disk [`LOCK_FILE`] holding the
/// owner pid, created with `create_new` so two processes cannot both
/// win. Held for the lifetime of the writer-rank store and released
/// on drop. A lock file whose pid no longer designates a live process
/// is stale — the writer was SIGKILLed or exited without unwinding —
/// and is stolen, so kill-resume drills still resume.
#[derive(Debug)]
struct DirLock {
    dir: PathBuf,
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<DirLock, CheckpointError> {
        fs::create_dir_all(dir)?;
        let canon = fs::canonicalize(dir)?;
        {
            let mut held = locked_dirs()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !held.insert(canon.clone()) {
                return Err(CheckpointError::Locked {
                    dir: canon,
                    holder: mn_comm::sys::current_pid(),
                });
            }
        }
        let path = canon.join(LOCK_FILE);
        let me = mn_comm::sys::current_pid();
        // Two attempts: the second runs only after removing a stale file.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use io::Write;
                    let _ = write!(f, "{me}");
                    return Ok(DirLock { dir: canon, path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok())
                        .unwrap_or(0);
                    // The registry above is authoritative for our own
                    // pid: a same-pid file with a free registry slot is
                    // a leftover from a previous store, not a holder.
                    // Signal 0 probes existence without delivering.
                    let live =
                        holder != 0 && holder != me && mn_comm::sys::send_signal(holder, 0);
                    if live {
                        Self::release_registry(&canon);
                        return Err(CheckpointError::Locked { dir: canon, holder });
                    }
                    let _ = fs::remove_file(&path);
                }
                Err(e) => {
                    Self::release_registry(&canon);
                    return Err(e.into());
                }
            }
        }
        // Lost the create_new race twice in a row: someone else is live.
        Self::release_registry(&canon);
        Err(CheckpointError::Locked {
            dir: canon,
            holder: 0,
        })
    }

    fn release_registry(dir: &Path) {
        locked_dirs()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(dir);
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
        Self::release_registry(&self.dir);
    }
}

/// A checkpoint directory opened for a specific `(seed, data)` run.
///
/// Completed units live both on disk and in an in-memory cache of
/// checksum-verified bytes; [`CheckpointStore::get`] reads only the
/// cache, so resume decisions are identical on every SPMD rank
/// regardless of how far the writer rank has raced ahead (all ranks
/// load before anyone writes — the engine's `io_barrier` orders this).
///
/// The writer rank additionally holds a [`DirLock`] for the store's
/// lifetime: a second concurrent writer on the same directory gets a
/// typed [`CheckpointError::Locked`] instead of silently interleaving
/// manifest rewrites with the first.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    write_enabled: bool,
    manifest: Manifest,
    units: BTreeMap<String, Vec<u8>>,
    _lock: Option<DirLock>,
}

impl CheckpointStore {
    /// Open (or create) the checkpoint directory `dir` for the run
    /// identified by `(seed, fingerprint)`. `nranks` is the *current*
    /// engine's rank count, stamped into fresh manifests as
    /// provenance; it is deliberately NOT a resume guard — stored
    /// units are rank-count-independent, so a checkpoint taken at `p`
    /// ranks resumes at any `p′` (elastic restart). `write_enabled`
    /// should be `engine.io_rank()` — non-writer ranks mirror every
    /// operation in memory only.
    pub fn open<P: AsRef<Path>>(
        dir: P,
        seed: u64,
        fingerprint: (usize, usize, f64),
        nranks: usize,
        policy: ResumePolicy,
        write_enabled: bool,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        // The writer rank takes the exclusive lock before reading or
        // wiping anything; non-writer ranks never touch the disk. The
        // lock travels inside the store and releases on drop.
        let lock = if write_enabled {
            Some(DirLock::acquire(&dir)?)
        } else {
            None
        };
        let fresh = Self {
            manifest: Manifest::fresh(seed, fingerprint, nranks),
            units: BTreeMap::new(),
            write_enabled,
            dir: dir.clone(),
            _lock: lock,
        };

        if policy == ResumePolicy::ForceRestart {
            if write_enabled {
                wipe_checkpoint_files(&dir)?;
            }
            return fresh.published();
        }

        match load_verified(&dir, seed, fingerprint) {
            Ok(Some((manifest, units))) => Ok(Self {
                manifest,
                units,
                ..fresh
            }),
            Ok(None) => {
                if policy == ResumePolicy::Strict {
                    return Err(CheckpointError::NothingToResume { dir });
                }
                fresh.published()
            }
            Err(e) => match policy {
                // Auto recovers silently: the fresh (empty) manifest
                // immediately supersedes the unusable state on disk.
                ResumePolicy::Auto => fresh.published(),
                ResumePolicy::Strict => Err(e),
                ResumePolicy::ForceRestart => unreachable!("handled above"),
            },
        }
    }

    /// Publish a fresh store: on the writer rank, create the directory
    /// and write the (empty) manifest so even a run killed before its
    /// first completed unit leaves a resumable, correctly-stamped
    /// checkpoint behind.
    fn published(self) -> Result<Self, CheckpointError> {
        if self.write_enabled {
            fs::create_dir_all(&self.dir)?;
            self.write_manifest()?;
        }
        Ok(self)
    }

    /// Atomically (re)write `manifest.json` from the in-memory state.
    fn write_manifest(&self) -> Result<(), CheckpointError> {
        let manifest =
            serde_json::to_string_pretty(&self.manifest).expect("manifest serialization");
        write_atomic(&self.dir.join(MANIFEST_FILE), manifest.as_bytes())?;
        Ok(())
    }

    /// The unit names currently recorded as complete.
    pub fn completed_units(&self) -> impl Iterator<Item = &str> {
        self.manifest.entries.keys().map(String::as_str)
    }

    /// Number of completed units.
    pub fn len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Whether no units are recorded.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// The directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rank count of the run that originally created this checkpoint:
    /// `Some(p)` from version-2 manifests, `None` when resuming a
    /// version-1 checkpoint that predates the provenance field. Purely
    /// informational — resume never requires it to match.
    pub fn origin_nranks(&self) -> Option<usize> {
        self.manifest.nranks.map(|n| n as usize)
    }

    /// Fetch a completed unit. Returns `None` when the unit was never
    /// recorded (or its bytes, though checksum-clean, fail to parse as
    /// `T` — schema drift; the caller simply recomputes).
    pub fn get<T: Deserialize>(&self, unit: &str) -> Option<UnitRecord<T>> {
        let bytes = self.units.get(unit)?;
        serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()
    }

    /// Record a completed unit: cache it in memory (every rank) and —
    /// on the writer rank — publish `<unit>.json` then the updated
    /// manifest, each via atomic tmp-file + rename, in that order.
    pub fn put<T: Serialize>(
        &mut self,
        unit: &str,
        record: &UnitRecord<T>,
    ) -> Result<(), CheckpointError> {
        let bytes = serde_json::to_string(record)
            .expect("unit serialization")
            .into_bytes();
        self.manifest
            .entries
            .insert(unit.to_string(), fnv1a64(&bytes));
        self.units.insert(unit.to_string(), bytes.clone());
        if self.write_enabled {
            write_atomic(&self.dir.join(format!("{unit}.json")), &bytes)?;
            self.write_manifest()?;
        }
        Ok(())
    }
}

/// Write `bytes` to `path` atomically: `<path>.tmp` first, then
/// rename. A crash before the rename leaves only the `.tmp` file,
/// which loading ignores.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Load and fully verify an existing checkpoint. `Ok(None)` means no
/// manifest exists (nothing to resume); every defect in files that do
/// exist is a typed error.
#[allow(clippy::type_complexity)]
fn load_verified(
    dir: &Path,
    seed: u64,
    fingerprint: (usize, usize, f64),
) -> Result<Option<(Manifest, BTreeMap<String, Vec<u8>>)>, CheckpointError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = match fs::read(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let text = String::from_utf8(text).map_err(|e| CheckpointError::Corrupt {
        file: manifest_path.clone(),
        reason: format!("unparseable manifest: {e}"),
    })?;
    let manifest: Manifest =
        serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt {
            file: manifest_path.clone(),
            reason: format!("unparseable manifest: {e}"),
        })?;
    // Version 1 stays readable: it only lacks the rank-provenance
    // field, which deserialization already defaulted to `None`.
    if manifest.version != MANIFEST_VERSION && manifest.version != 1 {
        return Err(CheckpointError::Version {
            found: manifest.version,
            expected: MANIFEST_VERSION,
        });
    }
    if manifest.seed != seed {
        return Err(CheckpointError::Mismatch {
            reason: format!("seed {} on disk, {} requested", manifest.seed, seed),
        });
    }
    if manifest.fingerprint != fingerprint {
        return Err(CheckpointError::Mismatch {
            reason: format!(
                "data fingerprint {:?} on disk, {:?} requested",
                manifest.fingerprint, fingerprint
            ),
        });
    }
    let mut units = BTreeMap::new();
    for (unit, &checksum) in &manifest.entries {
        let path = dir.join(format!("{unit}.json"));
        let bytes = fs::read(&path).map_err(|e| CheckpointError::Corrupt {
            file: path.clone(),
            reason: format!("unit {unit:?} listed in manifest but unreadable: {e}"),
        })?;
        let found = fnv1a64(&bytes);
        if found != checksum {
            return Err(CheckpointError::Corrupt {
                file: path,
                reason: format!(
                    "unit {unit:?} checksum mismatch: manifest says {checksum:#018x}, \
                     file hashes to {found:#018x}"
                ),
            });
        }
        units.insert(unit.clone(), bytes);
    }
    Ok(Some((manifest, units)))
}

/// Remove the files a checkpoint owns (`*.json`, `*.json.tmp`) from
/// `dir`, leaving anything else in the directory alone. Missing
/// directory is fine.
fn wipe_checkpoint_files(dir: &Path) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_file() && (name.ends_with(".json") || name.ends_with(".json.tmp")) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monet_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const FP: (usize, usize, f64) = (3, 4, 12.5);

    fn record(v: u32) -> UnitRecord<u32> {
        let mut counters = BTreeMap::new();
        counters.insert("gibbs.sweeps".to_string(), 7);
        UnitRecord { value: v, counters }
    }

    #[test]
    fn put_get_roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        assert!(store.is_empty());
        store.put("unit_a", &record(42)).unwrap();
        store.put("unit_b", &record(43)).unwrap();
        drop(store); // release the writer lock before reopening

        let reopened =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get::<u32>("unit_a").unwrap(), record(42));
        assert_eq!(reopened.get::<u32>("unit_b").unwrap(), record(43));
        assert!(reopened.get::<u32>("unit_c").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_manifest_is_typed_not_a_panic() {
        let dir = tmpdir("truncated");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        let manifest = dir.join(MANIFEST_FILE);
        let full = fs::read(&manifest).unwrap();
        fs::write(&manifest, &full[..full.len() / 2]).unwrap();
        drop(store);

        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        match &err {
            CheckpointError::Corrupt { file, reason } => {
                assert_eq!(file, &manifest);
                assert!(reason.contains("unparseable manifest"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Auto silently starts fresh on the same corruption.
        let store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_unit_file_fails_its_checksum() {
        let dir = tmpdir("bitflip");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(9)).unwrap();
        let unit = dir.join("unit_a.json");
        let mut bytes = fs::read(&unit).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&unit, &bytes).unwrap();
        drop(store);

        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        match &err {
            CheckpointError::Corrupt { file, reason } => {
                assert_eq!(file, &unit);
                assert!(reason.contains("checksum mismatch"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_seed_and_wrong_fingerprint_are_mismatches() {
        let dir = tmpdir("mismatch");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(5)).unwrap();
        drop(store);

        let err = CheckpointStore::open(&dir, 2, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("seed 1 on disk, 2 requested"));

        let err = CheckpointStore::open(&dir, 1, (3, 4, 99.0), 4, ResumePolicy::Strict, true)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err:?}");

        // Auto discards the mismatched checkpoint instead of erroring.
        let store = CheckpointStore::open(&dir, 2, FP, 4, ResumePolicy::Auto, true).unwrap();
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_is_reported() {
        let dir = tmpdir("version");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(5)).unwrap();
        let manifest = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, text.replace("\"version\": 2", "\"version\": 99")).unwrap();
        drop(store);

        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        match err {
            CheckpointError::Version { found, expected } => {
                assert_eq!((found, expected), (99, MANIFEST_VERSION));
            }
            other => panic!("unexpected error {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_window_tmp_written_rename_not_applied() {
        // Simulate a crash between fs::write(tmp) and fs::rename: the
        // tmp file exists, the published unit does not, the manifest
        // never mentioned it. Loading must ignore the leftover.
        let dir = tmpdir("crash_tmp");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        fs::write(dir.join("unit_b.json.tmp"), b"{\"torn\":").unwrap();
        drop(store);

        let reopened =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.get::<u32>("unit_b").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_window_unit_renamed_manifest_not_updated() {
        // Crash between the unit rename and the manifest rewrite: a
        // complete unit file exists but no manifest entry references
        // it. It is simply recomputed (and overwritten) on resume.
        let dir = tmpdir("crash_unref");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        let orphan = serde_json::to_string(&record(2)).unwrap();
        fs::write(dir.join("unit_b.json"), orphan.as_bytes()).unwrap();
        drop(store);

        let reopened =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap();
        assert_eq!(reopened.len(), 1, "orphan unit must not be trusted");
        assert!(reopened.get::<u32>("unit_b").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_unit_file_is_corrupt() {
        let dir = tmpdir("missing_unit");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        fs::remove_file(dir.join("unit_a.json")).unwrap();
        drop(store);
        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn force_restart_wipes_and_starts_fresh() {
        let dir = tmpdir("force");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        // Corrupt the manifest; ForceRestart must recover anyway.
        fs::write(dir.join(MANIFEST_FILE), b"garbage").unwrap();
        drop(store);

        let store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::ForceRestart, true).unwrap();
        assert!(store.is_empty());
        assert!(!dir.join("unit_a.json").exists());
        drop(store);
        // A fresh store is published immediately: the wiped directory
        // holds a valid empty manifest, so a crash straight after the
        // restart still resumes cleanly.
        let reopened =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap();
        assert!(reopened.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_with_no_manifest_is_nothing_to_resume() {
        let dir = tmpdir("nothing");
        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Strict, true).unwrap_err();
        match &err {
            CheckpointError::NothingToResume { dir: d } => assert_eq!(d, &dir),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("--resume"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_writer_rank_stays_off_disk() {
        let dir = tmpdir("nonwriter");
        let mut store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, false).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        // In-memory view sees the unit; the disk was never touched.
        assert_eq!(store.get::<u32>("unit_a").unwrap(), record(1));
        assert!(!dir.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_records_origin_nranks_and_resume_ignores_mismatch() {
        let dir = tmpdir("elastic");
        let mut store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        assert_eq!(store.origin_nranks(), Some(4));
        drop(store);

        // Reopening at a different rank count is not an error — stored
        // units are rank-count-independent — and the manifest keeps
        // reporting the *original* writer's rank count.
        let reopened = CheckpointStore::open(&dir, 1, FP, 9, ResumePolicy::Strict, true).unwrap();
        assert_eq!(reopened.origin_nranks(), Some(4));
        assert_eq!(reopened.get::<u32>("unit_a").unwrap(), record(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_1_manifest_without_nranks_still_loads() {
        let dir = tmpdir("v1_compat");
        let mut store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(7)).unwrap();
        // Rewrite the manifest as a version-1 writer would have: no
        // `nranks` key at all.
        let manifest = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).unwrap();
        let v1 = text
            .replace("\"version\": 2", "\"version\": 1")
            .replace("\"nranks\": 4,", "");
        assert!(!v1.contains("nranks"), "test setup left the field behind");
        fs::write(&manifest, v1).unwrap();
        drop(store);

        let reopened = CheckpointStore::open(&dir, 1, FP, 8, ResumePolicy::Strict, true).unwrap();
        assert_eq!(reopened.origin_nranks(), None);
        assert_eq!(reopened.get::<u32>("unit_a").unwrap(), record(7));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_get_typed_locked_error() {
        let dir = tmpdir("locked");
        let first = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        assert!(dir.join(LOCK_FILE).exists());

        // Same thread: the second writer is refused, typed, no panic.
        let err = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap_err();
        match &err {
            CheckpointError::Locked { holder, .. } => {
                assert_eq!(*holder, mn_comm::sys::current_pid());
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("locked by a live writer"));

        // Another thread racing on the same dir loses the same way.
        let race_dir = dir.clone();
        let racer = std::thread::spawn(move || {
            CheckpointStore::open(&race_dir, 1, FP, 4, ResumePolicy::Auto, true)
                .err()
                .map(|e| matches!(e, CheckpointError::Locked { .. }))
        });
        assert_eq!(racer.join().unwrap(), Some(true));

        // The first writer never saw the contenders: its state is intact.
        drop(first);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases the lock");
        let reopened = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        drop(reopened);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_stolen() {
        // A SIGKILLed writer leaves its lock file behind; the pid in it
        // no longer designates a live process, so resume steals it.
        let dir = tmpdir("stale_lock");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOCK_FILE), b"999999999").unwrap();

        let store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        let holder = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(
            holder.trim().parse::<u32>().unwrap(),
            mn_comm::sys::current_pid(),
            "stolen lock must be re-stamped with the new writer's pid"
        );
        drop(store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_lock_file_counts_as_stale() {
        let dir = tmpdir("garbled_lock");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOCK_FILE), b"not a pid").unwrap();
        let store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        drop(store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn readers_are_not_blocked_by_the_writer_lock() {
        // Non-writer ranks mirror state in memory only — they take no
        // lock and coexist with a live writer on the same directory.
        let dir = tmpdir("reader_coexist");
        let writer = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        let reader = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, false).unwrap();
        drop(reader);
        drop(writer);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn force_restart_wipe_leaves_the_held_lock_alone() {
        let dir = tmpdir("wipe_keeps_lock");
        let mut store = CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::Auto, true).unwrap();
        store.put("unit_a", &record(1)).unwrap();
        drop(store);

        // ForceRestart wipes *.json / *.json.tmp but must keep the
        // opener's own freshly-acquired lock file.
        let store =
            CheckpointStore::open(&dir, 1, FP, 4, ResumePolicy::ForceRestart, true).unwrap();
        assert!(!dir.join("unit_a.json").exists());
        assert!(dir.join(LOCK_FILE).exists());
        drop(store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
