//! Serialization of learned networks.
//!
//! The paper's implementation writes "the final MoNet structure in XML
//! format" (§5.3) — the Lemon-Tree convention. We provide that XML
//! layout plus a JSON form (serde) that the experiment harness uses
//! for machine-readable records.

use crate::model::ModuleNetwork;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Serialize the network as pretty JSON.
pub fn to_json(network: &ModuleNetwork) -> String {
    serde_json::to_string_pretty(network).expect("network serialization cannot fail")
}

/// Parse a network from JSON.
pub fn from_json(text: &str) -> Result<ModuleNetwork, serde_json::Error> {
    serde_json::from_str(text)
}

/// Minimal XML escaping for names.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the network in a Lemon-Tree-style XML layout:
/// `<ModuleNetwork>` with one `<Module>` per module, listing member
/// genes, ranked regulators, and the module-level edges.
pub fn to_xml(network: &ModuleNetwork) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        out,
        "<ModuleNetwork seed=\"{}\" modules=\"{}\" variables=\"{}\">",
        network.seed,
        network.n_modules(),
        network.n_vars()
    );
    for module in &network.modules {
        let _ = writeln!(
            out,
            "  <Module id=\"{}\" size=\"{}\">",
            module.index,
            module.vars.len()
        );
        for &v in &module.vars {
            let _ = writeln!(
                out,
                "    <Gene name=\"{}\" index=\"{v}\"/>",
                escape(&network.var_names[v])
            );
        }
        for (var, score) in module.parents.ranked() {
            let _ = writeln!(
                out,
                "    <Regulator name=\"{}\" index=\"{var}\" score=\"{score:.6}\"/>",
                escape(&network.var_names[var])
            );
        }
        let _ = writeln!(out, "    <Trees count=\"{}\"/>", module.ensemble.trees.len());
        let _ = writeln!(out, "  </Module>");
    }
    for edge in network.module_edges() {
        let _ = writeln!(out, "  <Edge from=\"{}\" to=\"{}\"/>", edge.from, edge.to);
    }
    out.push_str("</ModuleNetwork>\n");
    out
}

/// Write the XML form to a file.
pub fn write_xml_file<P: AsRef<Path>>(network: &ModuleNetwork, path: P) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_xml(network).as_bytes())
}

/// Write the JSON form to a file.
pub fn write_json_file<P: AsRef<Path>>(network: &ModuleNetwork, path: P) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(network).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearnerConfig;
    use crate::learn::learn_module_network;
    use mn_comm::SerialEngine;
    use mn_data::synthetic;

    fn network() -> ModuleNetwork {
        let d = synthetic::yeast_like(18, 12, 8).dataset;
        let mut e = SerialEngine::new();
        learn_module_network(&mut e, &d, &LearnerConfig::paper_minimum(2)).0
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let net = network();
        let text = to_json(&net);
        let back = from_json(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn xml_contains_all_modules_and_genes() {
        let net = network();
        let xml = to_xml(&net);
        assert!(xml.starts_with("<?xml"));
        assert_eq!(xml.matches("<Module ").count(), net.n_modules());
        let genes = xml.matches("<Gene ").count();
        let assigned = net.assignment.iter().filter(|a| a.is_some()).count();
        assert_eq!(genes, assigned);
        assert_eq!(xml.matches("<Edge ").count(), net.module_edges().len());
    }

    #[test]
    fn xml_escapes_names() {
        let mut net = network();
        net.var_names[net.modules[0].vars[0]] = "a<b&\"c\">".to_string();
        let xml = to_xml(&net);
        assert!(xml.contains("a&lt;b&amp;&quot;c&quot;&gt;"));
        assert!(!xml.contains("a<b&"));
    }

    #[test]
    fn file_writers_produce_readable_output() {
        let net = network();
        let dir = std::env::temp_dir();
        let xml_path = dir.join("monet_test_net.xml");
        let json_path = dir.join("monet_test_net.json");
        write_xml_file(&net, &xml_path).unwrap();
        write_json_file(&net, &json_path).unwrap();
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert_eq!(from_json(&json).unwrap(), net);
        std::fs::remove_file(xml_path).ok();
        std::fs::remove_file(json_path).ok();
    }
}
