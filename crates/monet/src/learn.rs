//! The full learning pipeline: the three Lemon-Tree tasks wired
//! together over one execution engine (Fig. 2 of the paper).
//!
//! The stages themselves live in [`crate::stages`] (which also offers
//! checkpointed execution); this module is the one-shot composition.

use crate::config::LearnerConfig;
use crate::model::ModuleNetwork;
use crate::stages::{run_consensus, run_ganesh, run_module_learning};
use mn_comm::{ParEngine, RunReport};
use mn_data::Dataset;

/// Phase names used in every [`RunReport`] (the per-task breakdown of
/// Fig. 5a/5c/6b/6c).
pub mod phases {
    /// GaneSH co-clustering (task 1).
    pub const GANESH: &str = "ganesh";
    /// Consensus clustering (task 2).
    pub const CONSENSUS: &str = "consensus";
    /// Module learning — trees, splits, parents (task 3).
    pub const MODULES: &str = "modules";
}

/// Learn a module network from `data` under `config`, executing on
/// `engine`. Returns the network and the engine's per-phase report.
///
/// The pipeline is the paper's Figure 2:
/// 1. `G` GaneSH runs sample an ensemble of variable clusterings
///    (Alg. 3);
/// 2. consensus clustering (sequential, replicated on all ranks)
///    produces the modules;
/// 3. per module, regression-tree structures are learned (Alg. 4),
///    then parent splits are assigned over the global block-partitioned
///    candidate list (Alg. 5) and parent scores derived (Alg. 6).
pub fn learn_module_network<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
) -> (ModuleNetwork, RunReport) {
    let config = config.clone().validated().expect("invalid configuration");
    let task1 = run_ganesh(engine, data, &config);
    let task2 = run_consensus(engine, data, &config, &task1);
    let network = run_module_learning(engine, data, &config, &task2);
    (network, engine.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_comm::SerialEngine;
    use mn_data::synthetic;

    #[test]
    fn pipeline_learns_a_valid_network() {
        let d = synthetic::yeast_like(24, 16, 42).dataset;
        let config = LearnerConfig::paper_minimum(1);
        let mut engine = SerialEngine::new();
        let (net, report) = learn_module_network(&mut engine, &d, &config);
        net.validate();
        assert!(net.n_modules() >= 1, "no modules learned");
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[0].name, phases::GANESH);
        assert_eq!(report.phases[1].name, phases::CONSENSUS);
        assert_eq!(report.phases[2].name, phases::MODULES);
    }

    #[test]
    fn module_learning_dominates_runtime() {
        // The paper's Fig. 5a claim: >90 % of sequential time is in the
        // module-learning task. At toy scale the share is smaller but
        // the ordering must already hold.
        let d = synthetic::yeast_like(24, 20, 42).dataset;
        let config = LearnerConfig::paper_minimum(1);
        let mut engine = SerialEngine::new();
        let (_, report) = learn_module_network(&mut engine, &d, &config);
        assert!(report.phase_s(phases::MODULES) > report.phase_s(phases::CONSENSUS));
    }
}
