//! The learned module-network model (§2.1).
//!
//! A module network is a DAG over module variables: a vertex per
//! module and an edge `M_j → M_k` iff some variable assigned to `M_j`
//! is a parent of `M_k` (Fig. 1 of the paper). The learner additionally
//! retains each module's regression-tree ensemble and parent scores,
//! which is what Lemon-Tree writes out for downstream analysis.

use mn_tree::{ModuleEnsemble, ModuleParents};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One learned module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module index (vertex id in the module graph).
    pub index: usize,
    /// Sorted member variables.
    pub vars: Vec<usize>,
    /// The regression-tree ensemble (R trees).
    pub ensemble: ModuleEnsemble,
    /// Parent scores (weighted + uniform baselines).
    pub parents: ModuleParents,
}

/// The learned module network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleNetwork {
    /// Variable names from the data set.
    pub var_names: Vec<String>,
    /// The modules, in extraction order.
    pub modules: Vec<Module>,
    /// `assignment[v]` = module index of variable `v`, or `None` for
    /// variables not placed in any consensus module.
    pub assignment: Vec<Option<usize>>,
    /// The master seed the network was learned with.
    pub seed: u64,
}

/// A directed edge between modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleEdge {
    /// Source module (the module containing the parent variable).
    pub from: usize,
    /// Target module (the module the parent regulates).
    pub to: usize,
}

impl ModuleNetwork {
    /// Number of modules (the paper's K).
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The module-level edges implied by the parent sets (§2.1's
    /// definition: `M_j → M_k` iff `A(X) = M_j` and `X ∈ Pa(M_k)`).
    /// Deduplicated and sorted. Self-loops are retained — the raw
    /// Lemon-Tree output may contain cycles (§2.2.3's closing note);
    /// see [`crate::acyclic`] for the post-processing.
    pub fn module_edges(&self) -> Vec<ModuleEdge> {
        let mut edges = BTreeSet::new();
        for module in &self.modules {
            for &parent_var in module.parents.weighted.keys() {
                if let Some(src) = self.assignment[parent_var] {
                    edges.insert(ModuleEdge {
                        from: src,
                        to: module.index,
                    });
                }
            }
        }
        edges.into_iter().collect()
    }

    /// The parent variables of one module, ranked by score.
    pub fn ranked_parents(&self, module: usize) -> Vec<(usize, f64)> {
        self.modules[module].parents.ranked()
    }

    /// Summary statistics used by the examples and experiment logs.
    pub fn summary(&self) -> NetworkSummary {
        let assigned = self.assignment.iter().filter(|a| a.is_some()).count();
        let edges = self.module_edges();
        NetworkSummary {
            n_vars: self.n_vars(),
            n_modules: self.n_modules(),
            n_assigned_vars: assigned,
            n_edges: edges.len(),
            mean_module_size: if self.n_modules() == 0 {
                0.0
            } else {
                assigned as f64 / self.n_modules() as f64
            },
        }
    }

    /// Structural invariants: member lists sorted and consistent with
    /// the assignment, module indices contiguous.
    pub fn validate(&self) {
        for (k, module) in self.modules.iter().enumerate() {
            assert_eq!(module.index, k, "module indices must be contiguous");
            assert!(
                module.vars.windows(2).all(|w| w[0] < w[1]),
                "module {k} vars not sorted"
            );
            for &v in &module.vars {
                assert_eq!(self.assignment[v], Some(k), "assignment of var {v}");
            }
            assert_eq!(module.ensemble.vars, module.vars);
        }
        for (v, &a) in self.assignment.iter().enumerate() {
            if let Some(k) = a {
                assert!(
                    self.modules[k].vars.binary_search(&v).is_ok(),
                    "var {v} missing from module {k}"
                );
            }
        }
    }
}

/// Compact description of a learned network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Total variables in the data set.
    pub n_vars: usize,
    /// Number of modules.
    pub n_modules: usize,
    /// Variables placed in some module.
    pub n_assigned_vars: usize,
    /// Module-level edges.
    pub n_edges: usize,
    /// Mean module size.
    pub mean_module_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tree::ModuleParents;

    fn tiny_network() -> ModuleNetwork {
        // Two modules over 4 vars; var 0 (module 0) regulates module 1.
        let mk_ensemble = |module: usize, vars: Vec<usize>| ModuleEnsemble {
            module,
            vars,
            trees: vec![],
        };
        let mut parents1 = ModuleParents::default();
        parents1.weighted.insert(0, 0.9);
        ModuleNetwork {
            var_names: (0..4).map(|i| format!("G{i}")).collect(),
            modules: vec![
                Module {
                    index: 0,
                    vars: vec![0, 1],
                    ensemble: mk_ensemble(0, vec![0, 1]),
                    parents: ModuleParents::default(),
                },
                Module {
                    index: 1,
                    vars: vec![2, 3],
                    ensemble: mk_ensemble(1, vec![2, 3]),
                    parents: parents1,
                },
            ],
            assignment: vec![Some(0), Some(0), Some(1), Some(1)],
            seed: 0,
        }
    }

    #[test]
    fn edges_follow_paper_definition() {
        let net = tiny_network();
        net.validate();
        assert_eq!(
            net.module_edges(),
            vec![ModuleEdge { from: 0, to: 1 }]
        );
    }

    #[test]
    fn unassigned_parent_vars_make_no_edges() {
        let mut net = tiny_network();
        net.assignment[0] = None;
        net.modules[0].vars = vec![1];
        net.modules[0].ensemble.vars = vec![1];
        net.validate();
        assert!(net.module_edges().is_empty());
    }

    #[test]
    fn summary_counts() {
        let s = tiny_network().summary();
        assert_eq!(s.n_vars, 4);
        assert_eq!(s.n_modules, 2);
        assert_eq!(s.n_assigned_vars, 4);
        assert_eq!(s.n_edges, 1);
        assert!((s.mean_module_size - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn validate_catches_bad_indices() {
        let mut net = tiny_network();
        net.modules[1].index = 5;
        net.validate();
    }
}
