//! `RUN_METRICS.json` — the machine-readable run record.
//!
//! A superset of [`RunReport`]: the per-phase breakdown the engines
//! have always produced, plus everything the observability layer
//! ([`mn_obs`]) collected during the run — per-span aggregates with the
//! paper's §5.3.1 imbalance metric computed for *every* span (not just
//! the three top-level phases), the deterministic event counters, and
//! the span-duration histograms.
//!
//! The counters are bit-identical across engines and rank counts (the
//! `mn-obs` determinism contract), so two `RUN_METRICS.json` files from
//! the same problem on different engines differ only in their timing
//! fields — CI's counter-golden check relies on exactly this.

use mn_comm::RunReport;
use mn_obs::{CommMatrix, Histogram, ObsSnapshot, SpanAgg, TELEMETRY_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// The full metrics record of one run, written by `monet
/// --metrics-out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Format version, shared with the telemetry stream
    /// ([`mn_obs::TELEMETRY_SCHEMA_VERSION`]). Version 1 denotes the
    /// legacy record that carried no version field (and no `comm`
    /// matrix or span percentiles); readers should treat a missing
    /// field as `1`. See DESIGN.md §13 for the compatibility note.
    pub schema_version: u32,
    /// Number of ranks that executed the run.
    pub nranks: usize,
    /// The engine's per-phase report, embedded verbatim: the span
    /// aggregates below refine, never replace, these totals.
    pub report: RunReport,
    /// Per-span-path aggregates (busy max/avg, comm, imbalance),
    /// sorted by path.
    pub spans: Vec<SpanAgg>,
    /// Deterministic event counters (engine-independent).
    pub counters: BTreeMap<String, u64>,
    /// Span-duration histograms keyed by span name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-phase src→dst communication matrix (messages and shallow
    /// wire bytes, recorded at the sender). Merged across ranks on the
    /// msg engine; synthesized from the same collective edge schedules
    /// on the sim engine; empty (all zeros, or 1×1) on the
    /// shared-memory engines, whose collectives move no bytes.
    pub comm: CommMatrix,
}

impl RunMetrics {
    /// Assemble the record from an engine's report and observability
    /// snapshot (taken *after* [`mn_comm::ParEngine::report`], so all
    /// spans are closed).
    pub fn new(report: &RunReport, snapshot: &ObsSnapshot) -> Self {
        Self {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            nranks: snapshot.nranks,
            report: report.clone(),
            spans: snapshot.aggregate_spans(),
            counters: snapshot.counters.clone(),
            histograms: snapshot.histograms.clone(),
            comm: snapshot.comm.clone(),
        }
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialization")
    }

    /// Write the record as JSON to `path`.
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Busy-time imbalance of the span `path` (0 if absent) — the
    /// §5.3.1 metric, now available at any granularity of the span
    /// tree rather than only per phase.
    pub fn span_imbalance(&self, path: &str) -> f64 {
        self.spans
            .iter()
            .find(|s| s.path == path)
            .map_or(0.0, |s| s.imbalance)
    }

    /// Variables the consensus extraction dropped because their
    /// cluster fell below the minimum size (the
    /// `consensus.dropped_vars` counter; 0 when the run never reached
    /// task 2). Surfaced here so truncation is observable from the
    /// metrics record alone, per the no-silent-caps rule.
    pub fn consensus_dropped_vars(&self) -> u64 {
        self.counters
            .get(mn_obs::counters::CONSENSUS_DROPPED_VARS)
            .copied()
            .unwrap_or(0)
    }

    /// `ln Γ` evaluations requested through the half-integer memo
    /// tables (tree building and Gibbs candidate scoring). Together
    /// with [`RunMetrics::ln_gamma_table_hits`], `calls - hits` is the
    /// number of Lanczos series evaluations the run actually executed.
    pub fn ln_gamma_calls(&self) -> u64 {
        self.counters
            .get(mn_obs::counters::SCORE_LN_GAMMA_CALLS)
            .copied()
            .unwrap_or(0)
    }

    /// `ln Γ` evaluations served from a memo table (no Lanczos run).
    pub fn ln_gamma_table_hits(&self) -> u64 {
        self.counters
            .get(mn_obs::counters::SCORE_LN_GAMMA_TABLE_HITS)
            .copied()
            .unwrap_or(0)
    }

    /// Scratch-arena reuses in the split-assignment kernel (segments
    /// scored into already-warm buffers).
    pub fn scratch_reuses(&self) -> u64 {
        self.counters
            .get(mn_obs::counters::SCORE_SCRATCH_REUSES)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{learn_module_network, LearnerConfig};
    use mn_comm::{ParEngine, SimEngine};
    use mn_data::synthetic;

    #[test]
    fn metrics_embed_report_and_refine_phases() {
        let d = synthetic::yeast_like(18, 12, 3).dataset;
        let config = LearnerConfig::paper_minimum(3);
        let mut engine = SimEngine::new(4);
        let (_, report) = learn_module_network(&mut engine, &d, &config);
        let now = engine.now_s();
        let snapshot = engine.obs().snapshot(now);
        let metrics = RunMetrics::new(&report, &snapshot);

        assert_eq!(metrics.nranks, 4);
        assert_eq!(metrics.report, report);
        // Every engine phase appears as a depth-1 span under the root,
        // with matching elapsed time (the sim engine charges simulated
        // time into both structures from the same clock).
        for phase in &report.phases {
            let path = format!("run/{}", phase.name);
            let agg = metrics
                .spans
                .iter()
                .find(|s| s.path == path)
                .unwrap_or_else(|| panic!("missing span {path}"));
            assert!(
                (agg.elapsed_s - phase.elapsed_s).abs() < 1e-9,
                "span {path}: {} vs phase {}",
                agg.elapsed_s,
                phase.elapsed_s
            );
        }
        assert!(metrics.counters["gibbs.sweeps"] > 0);
        assert!(metrics.counters["splits.scored"] > 0);
        // The memoization/arena counters of the default (kernel)
        // scoring paths surface in the record.
        assert!(metrics.ln_gamma_calls() > metrics.ln_gamma_table_hits());
        assert!(metrics.ln_gamma_table_hits() > 0);
        assert!(metrics.scratch_reuses() > 0);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let d = synthetic::yeast_like(16, 10, 1).dataset;
        let config = LearnerConfig::paper_minimum(1);
        let mut engine = SimEngine::new(3);
        let (_, report) = learn_module_network(&mut engine, &d, &config);
        let now = engine.now_s();
        let metrics = RunMetrics::new(&report, &engine.obs().snapshot(now));
        let text = metrics.to_json();
        let back: RunMetrics = serde_json::from_str(&text).expect("parse");
        assert_eq!(metrics, back);
    }

    /// Regression (ISSUE 5 satellite 4): variables discarded by the
    /// minimum-cluster-size filter are no longer silent — the counter
    /// lands in the metrics record.
    #[test]
    fn dropped_vars_surface_in_metrics() {
        use crate::stages::{run_consensus, run_ganesh};
        let d = synthetic::yeast_like(16, 10, 5).dataset;
        let mut config = LearnerConfig::paper_minimum(5);
        // Impossible bar: every extracted cluster is dropped.
        config.consensus.spectral.min_cluster_size = d.n_vars() + 1;
        let mut engine = SimEngine::new(2);
        let t1 = run_ganesh(&mut engine, &d, &config);
        let t2 = run_consensus(&mut engine, &d, &config, &t1);
        assert!(t2.modules.is_empty(), "nothing can clear the size bar");
        let report = engine.report();
        let now = engine.now_s();
        let metrics = RunMetrics::new(&report, &engine.obs().snapshot(now));
        assert!(
            metrics.consensus_dropped_vars() > 0,
            "dropped variables must be observable: {:?}",
            metrics.counters
        );
    }

    #[test]
    fn span_imbalance_lookup() {
        let d = synthetic::yeast_like(16, 10, 1).dataset;
        let config = LearnerConfig::paper_minimum(1);
        let mut engine = SimEngine::new(5);
        let (_, report) = learn_module_network(&mut engine, &d, &config);
        let now = engine.now_s();
        let metrics = RunMetrics::new(&report, &engine.obs().snapshot(now));
        // The root span exists and the metric is finite.
        assert!(metrics.span_imbalance("run").is_finite());
        assert_eq!(metrics.span_imbalance("no/such/span"), 0.0);
    }
}
