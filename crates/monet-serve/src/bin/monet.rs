//! `monet` — command-line module-network learner.
//!
//! ```text
//! monet --input expression.tsv [--engine serial|threads:<p>|sim:<p>|msg:<p>|proc:<p>]
//!       [--partition block|segment-owner|self-scheduling|lpt|chunked|cost-guided]
//!       [--seed N] [--ganesh-runs G] [--update-steps U]
//!       [--init-clusters K0] [--trees R] [--splits-per-node J]
//!       [--sampling-steps S] [--threshold T] [--reference]
//!       [--gibbs-naive] [--consensus-dense]
//!       [--candidates file.txt] [--xml out.xml] [--json out.json]
//!       [--trace trace.json] [--metrics-out metrics.json]
//!       [--checkpoint-dir dir] [--resume] [--force-restart]
//!       [--fault spec] [--comm-timeout-ms T]
//!       [--telemetry-out path|-] [--telemetry-interval-ms T]
//!       [--flightrec-dir dir]
//!       [--dag] [--quiet]
//! monet --synthetic n,m [--engine ...]   # demo without an input file
//! monet serve --listen unix:<path>|tcp:<host:port> [--state-dir dir]
//!       [--workers N] [--max-queue N] [--telemetry-interval-ms T]
//! monet client --connect <addr> <op> [flags]   # talk to a server
//! ```
//!
//! The defaults reproduce the paper's minimum-runtime configuration
//! (§5.1): one GaneSH run, one update step, one regression tree per
//! module, every gene a candidate regulator.
//!
//! `--trace` writes a chrome://tracing timeline (open in
//! `chrome://tracing` or <https://ui.perfetto.dev>) with one track per
//! rank; `--metrics-out` writes `RUN_METRICS.json`, the machine-readable
//! superset of the run report (see [`monet::RunMetrics`]).
//!
//! `--checkpoint-dir` enables fine-grained checkpointing (per GaneSH
//! run / per module tree; DESIGN.md §10): a killed run resumes after
//! the last completed unit. `--resume` requires a valid checkpoint to
//! exist (a corrupt or mismatched one is a clean error); add
//! `--force-restart` to wipe it and start over. `--fault` plants
//! deterministic faults (`kill:<rank>@<event>`, `delay:<rank>@<event>:<ms>`,
//! `drop:<rank>@<event>`, `seed:<n>`) for kill–resume drills; a
//! fault-aborted run exits with code 3. `--comm-timeout-ms` bounds
//! every fabric receive on the msg engine so dropped messages surface
//! as timeouts instead of hangs.
//!
//! `--telemetry-out` streams live run telemetry as versioned JSONL
//! (DESIGN.md §13): a full snapshot line, then deltas, with heartbeat
//! lines while the run is between snapshots; `-` streams to stdout.
//! `--telemetry-interval-ms` sets both the snapshot rate limit and the
//! heartbeat cadence (default 1000).
//!
//! The flight recorder is always on: every rank keeps a bounded ring
//! of compact events (spans, sends/receives, checkpoint units, fault
//! injections, RNG jumps). A failed run dumps one
//! `flightrec-rank<k>.jsonl` per rank into `--flightrec-dir` (default
//! `.`); passing the flag explicitly also dumps after successful runs.
//!
//! `--engine proc:<p>` runs the msg fabric over `p` real supervised OS
//! processes (DESIGN.md §15): this process becomes the supervisor, and
//! each rank is a `monet worker` child connected over a Unix-domain
//! socket (`MN_PROC_ADDR=tcp:host:port` switches to TCP loopback). The
//! hidden `worker` subcommand is that child entrypoint — it takes
//! `--proc-rank`/`--proc-nranks`/`--proc-socket` plus the forwarded run
//! flags, and is not meant to be invoked by hand. A worker that dies —
//! a real SIGKILL, a `sigkill:<r>@<k>` fault, or an injected kill — is
//! detected by the supervisor (socket EOF, or heartbeat staleness for
//! stalls), the survivors abort with `PeerDisconnected`, and the run
//! exits 3 with per-rank flight-recorder dumps; results on the happy
//! path are byte-identical to every other engine.
//!
//! `monet serve` runs the learner as a long-lived multi-tenant service
//! (DESIGN.md §16): line-delimited JSON over a Unix or TCP socket,
//! a fixed worker pool with fair per-tenant scheduling and bounded
//! admission, live telemetry via `watch`, cooperative cancel/suspend,
//! and per-job checkpointing with elastic resume. `monet client` is
//! the matching command-line client (ops: `ping`, `register`,
//! `submit`, `status`, `watch`, `result`, `cancel`, `suspend`,
//! `resume`, `accounting`, `jobs`, `shutdown`, `raw`); a served job's
//! result is byte-identical to this binary's batch `--json` output for
//! the same dataset, seed, and config.

use mn_comm::msg::proc::{
    connect_worker, ProcAddr, Supervisor, WorkerConfig, DEFAULT_CONNECT_TIMEOUT,
};
use mn_comm::{
    silence_injected_panics, spmd_run_faulty_recorded, CommError, EngineSpec, Fabric, FaultAbort,
    FaultPlan, InjectedCrash, ObsSnapshot, ParEngine, PartitionStrategy, RunReport, SerialEngine,
    SimEngine, ThreadEngine,
};
use mn_data::Dataset;
use mn_obs::{FlightRec, SnapshotStash, TelemetryHandle, TelemetrySink};
use mn_score::{CandidateScoring, ScoreMode};
use monet::{
    learn_module_network, learn_with_checkpoint_policy, LearnerConfig, ModuleNetwork,
    ResumePolicy, RunMetrics,
};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    input: Option<String>,
    synthetic: Option<(usize, usize)>,
    engine: EngineSpec,
    partition: PartitionStrategy,
    seed: u64,
    ganesh_runs: usize,
    update_steps: usize,
    init_clusters: Option<usize>,
    trees: usize,
    splits_per_node: usize,
    sampling_steps: usize,
    threshold: f64,
    reference: bool,
    gibbs_naive: bool,
    consensus_dense: bool,
    candidates: Option<String>,
    xml: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    metrics_out: Option<String>,
    checkpoint_dir: Option<String>,
    resume: bool,
    force_restart: bool,
    fault: Option<String>,
    comm_timeout_ms: Option<u64>,
    telemetry_out: Option<String>,
    telemetry_interval_ms: u64,
    flightrec_dir: Option<String>,
    dag: bool,
    quiet: bool,
    /// Set when invoked as the hidden `worker` subcommand: this process
    /// is one rank of a `proc:<p>` run.
    worker: Option<WorkerOpts>,
}

impl Options {
    /// Flag defaults — shared by the batch parser and the `client
    /// submit` learn-flag parser, so a served job's config defaults
    /// match the batch CLI's exactly.
    fn defaults() -> Options {
        Options {
            input: None,
            synthetic: None,
            engine: EngineSpec::Serial,
            partition: PartitionStrategy::Block,
            seed: 0,
            ganesh_runs: 1,
            update_steps: 1,
            init_clusters: None,
            trees: 1,
            splits_per_node: 2,
            sampling_steps: 8,
            threshold: 0.0,
            reference: false,
            gibbs_naive: false,
            consensus_dense: false,
            candidates: None,
            xml: None,
            json: None,
            trace: None,
            metrics_out: None,
            checkpoint_dir: None,
            resume: false,
            force_restart: false,
            fault: None,
            comm_timeout_ms: None,
            telemetry_out: None,
            telemetry_interval_ms: 1000,
            flightrec_dir: None,
            dag: false,
            quiet: false,
            worker: None,
        }
    }
}

/// The `monet worker` coordinates: which rank this process is, how
/// many ranks the fabric has, and where the supervisor listens.
struct WorkerOpts {
    rank: usize,
    nranks: usize,
    socket: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: monet --input <expression.tsv> | --synthetic <n,m>\n\
         \x20      [--engine serial|threads:<p>|sim:<p>|msg:<p>|proc:<p>] [--seed N]\n\
         \x20      [--partition block|segment-owner|self-scheduling|lpt|chunked|cost-guided]\n\
         \x20      [--ganesh-runs G] [--update-steps U] [--init-clusters K0]\n\
         \x20      [--trees R] [--splits-per-node J] [--sampling-steps S]\n\
         \x20      [--threshold T] [--reference] [--gibbs-naive] [--consensus-dense]\n\
         \x20      [--candidates file]\n\
         \x20      [--xml out.xml] [--json out.json]\n\
         \x20      [--trace trace.json] [--metrics-out metrics.json]\n\
         \x20      [--checkpoint-dir dir] [--resume] [--force-restart]\n\
         \x20      [--fault kill:<r>@<k>|sigkill:<r>@<k>|delay:<r>@<k>:<ms>|drop:<r>@<k>|seed:<n>]\n\
         \x20      [--comm-timeout-ms T]\n\
         \x20      [--telemetry-out path|-] [--telemetry-interval-ms T]\n\
         \x20      [--flightrec-dir dir]\n\
         \x20      [--dag] [--quiet]\n\
         \x20apart from batch runs: monet serve --listen <addr> [...]\n\
         \x20                       monet client --connect <addr> <op> [...]"
    );
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden subcommand: `monet worker --proc-rank k --proc-nranks p
    // --proc-socket addr <forwarded run flags>` — the per-rank child
    // entrypoint the proc-engine supervisor spawns.
    let is_worker = args.first().map(String::as_str) == Some("worker");
    if is_worker {
        args.remove(0);
    }
    let mut proc_rank: Option<usize> = None;
    let mut proc_nranks: Option<usize> = None;
    let mut proc_socket: Option<String> = None;
    let mut opts = Options::defaults();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--input" => opts.input = Some(value(&args, &mut i)),
            "--synthetic" => {
                let v = value(&args, &mut i);
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    usage();
                }
                let n = parts[0].parse().unwrap_or_else(|_| usage());
                let m = parts[1].parse().unwrap_or_else(|_| usage());
                opts.synthetic = Some((n, m));
            }
            "--engine" => {
                opts.engine = value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--partition" => {
                opts.partition = value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--seed" => opts.seed = value(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--ganesh-runs" => {
                opts.ganesh_runs = value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--update-steps" => {
                opts.update_steps = value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--init-clusters" => {
                opts.init_clusters =
                    Some(value(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--trees" => opts.trees = value(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--splits-per-node" => {
                opts.splits_per_node = value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--sampling-steps" => {
                opts.sampling_steps = value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--threshold" => {
                opts.threshold = value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--reference" => opts.reference = true,
            "--gibbs-naive" => opts.gibbs_naive = true,
            "--consensus-dense" => opts.consensus_dense = true,
            "--candidates" => opts.candidates = Some(value(&args, &mut i)),
            "--xml" => opts.xml = Some(value(&args, &mut i)),
            "--json" => opts.json = Some(value(&args, &mut i)),
            "--trace" => opts.trace = Some(value(&args, &mut i)),
            "--metrics-out" => opts.metrics_out = Some(value(&args, &mut i)),
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value(&args, &mut i)),
            "--resume" => opts.resume = true,
            "--force-restart" => opts.force_restart = true,
            "--fault" => opts.fault = Some(value(&args, &mut i)),
            "--comm-timeout-ms" => {
                opts.comm_timeout_ms =
                    Some(value(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--telemetry-out" => opts.telemetry_out = Some(value(&args, &mut i)),
            "--telemetry-interval-ms" => {
                opts.telemetry_interval_ms =
                    value(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--flightrec-dir" => opts.flightrec_dir = Some(value(&args, &mut i)),
            "--dag" => opts.dag = true,
            "--quiet" => opts.quiet = true,
            "--proc-rank" if is_worker => {
                proc_rank = Some(value(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--proc-nranks" if is_worker => {
                proc_nranks = Some(value(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--proc-socket" if is_worker => proc_socket = Some(value(&args, &mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    if opts.input.is_none() == opts.synthetic.is_none() {
        eprintln!("exactly one of --input / --synthetic is required");
        usage();
    }
    if (opts.resume || opts.force_restart) && opts.checkpoint_dir.is_none() {
        eprintln!("--resume / --force-restart require --checkpoint-dir");
        usage();
    }
    if is_worker {
        match (proc_rank, proc_nranks, proc_socket) {
            (Some(rank), Some(nranks), Some(socket)) if rank < nranks && nranks >= 1 => {
                opts.worker = Some(WorkerOpts {
                    rank,
                    nranks,
                    socket,
                });
            }
            _ => {
                eprintln!("worker requires --proc-rank < --proc-nranks and --proc-socket");
                usage();
            }
        }
    }
    opts
}

fn load_data(opts: &Options) -> Result<Dataset, String> {
    if let Some(path) = &opts.input {
        return mn_data::read_tsv_file(path).map_err(|e| format!("reading {path}: {e}"));
    }
    let (n, m) = opts.synthetic.unwrap();
    Ok(mn_data::synthetic::yeast_like(n, m, opts.seed).dataset)
}

/// The data-independent part of [`build_config`]: everything except
/// candidate-regulator resolution. `client submit` uses it directly,
/// which is what makes a served job's config byte-identical to the
/// batch CLI's for the same flags.
fn base_config(opts: &Options) -> LearnerConfig {
    let mut config = LearnerConfig::paper_minimum(opts.seed);
    config.ganesh_runs = opts.ganesh_runs;
    config.ganesh.update_steps = opts.update_steps;
    config.ganesh.init_clusters = opts.init_clusters;
    config.consensus.threshold = opts.threshold;
    if opts.consensus_dense {
        // A/B baseline: §3.2.2's dense sequential consensus, replicated
        // on every rank. Extracts the identical modules (bit-identical
        // eigenvector stream); only footprint and wall-clock differ.
        config.consensus.backend = monet::mn_consensus::ConsensusBackend::Dense;
    }
    config.tree.update_steps = opts.trees + 1;
    config.tree.burn_in = 1;
    config.tree.splits_per_node = opts.splits_per_node;
    config.tree.max_sampling_steps = opts.sampling_steps;
    if opts.reference {
        config = config.with_mode(ScoreMode::Reference);
    }
    if opts.gibbs_naive {
        // A/B baseline: per-candidate naive scoring in every Gibbs
        // sweep. Learns the identical network (bit-identical weights),
        // only the wall-clock differs.
        config = config.with_candidate_scoring(CandidateScoring::Naive);
    }
    config
}

fn build_config(opts: &Options, data: &Dataset) -> Result<LearnerConfig, String> {
    let mut config = base_config(opts);
    if let Some(path) = &opts.candidates {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let names: Vec<String> = text.split_whitespace().map(String::from).collect();
        let mut indices = Vec::with_capacity(names.len());
        for name in &names {
            match data.var_names.iter().position(|v| v == name) {
                Some(idx) => indices.push(idx),
                None => return Err(format!("candidate regulator {name:?} not in data set")),
            }
        }
        config.candidate_parents = Some(indices);
    }
    config.validated()
}

/// Why a run produced no network: an ordinary error (exit 1) or a
/// fault abort — injected or observed communication failure (exit 3,
/// so kill–resume drills can tell the two apart).
enum RunFailure {
    Error(String),
    Fault(String),
}

/// Per-rank post-mortem handles collected *outside* the unwind path:
/// flight recorders (always usable, even for ranks that died) and
/// death stashes (filled by a dying rank with its final snapshot).
/// Index = rank.
#[derive(Default)]
struct Capture {
    flights: Vec<FlightRec>,
    stashes: Vec<SnapshotStash>,
}

impl Capture {
    /// Dump every rank's flight recorder as `flightrec-rank<k>.jsonl`
    /// into `dir` (created if missing). Best-effort: dump failures are
    /// reported but never change the exit code — post-mortem tooling
    /// must not mask the original failure.
    fn dump_flight_recorders(&self, dir: &str, quiet: bool) {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: flight recorder dir {}: {e}", dir.display());
            return;
        }
        for flight in &self.flights {
            match flight.dump_to_dir(dir) {
                Ok(path) => {
                    if !quiet {
                        eprintln!("flight recorder: {}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: flight recorder dump: {e}"),
            }
        }
    }

    /// The first stashed death snapshot, if any rank left one — the
    /// best post-mortem timeline a failed run has.
    fn death_snapshot(&self) -> Option<ObsSnapshot> {
        self.stashes.iter().find_map(|s| s.get())
    }
}

/// The checkpoint request derived from the flags: directory plus
/// resume policy.
fn checkpoint_request(opts: &Options) -> Option<(String, ResumePolicy)> {
    opts.checkpoint_dir.as_ref().map(|dir| {
        let policy = if opts.force_restart {
            ResumePolicy::ForceRestart
        } else if opts.resume {
            ResumePolicy::Strict
        } else {
            ResumePolicy::Auto
        };
        (dir.clone(), policy)
    })
}

fn run_on<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    config: &LearnerConfig,
    ckpt: Option<&(String, ResumePolicy)>,
) -> Result<(ModuleNetwork, RunReport, ObsSnapshot), RunFailure> {
    let (network, report) = match ckpt {
        Some((dir, policy)) => {
            learn_with_checkpoint_policy(engine, data, config, dir, *policy)
                .map_err(|e| RunFailure::Error(e.to_string()))?
        }
        None => learn_module_network(engine, data, config),
    };
    let now = engine.now_s();
    let snapshot = engine.obs().snapshot(now);
    Ok((network, report, snapshot))
}

/// Convert a caught panic payload into a fault failure, or propagate
/// it unchanged when it is not a fault-injection payload.
fn fault_failure(payload: Box<dyn std::any::Any + Send>) -> RunFailure {
    match payload.downcast::<InjectedCrash>() {
        Ok(crash) => RunFailure::Fault(format!(
            "injected kill: rank {} at event {}",
            crash.rank, crash.event
        )),
        Err(payload) => match payload.downcast::<FaultAbort>() {
            Ok(abort) => RunFailure::Fault(format!("communication failure: {}", abort.0)),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Run a single-process engine, catching fault-injection unwinds so an
/// aborted run exits cleanly (code 3) instead of with a panic trace.
/// The engine's flight recorder and death stash are cloned into
/// `capture` *before* the unwind-catching closure takes the engine, so
/// post-mortem dumps work even when the run dies.
fn run_single<E: ParEngine>(
    mut engine: E,
    partition: PartitionStrategy,
    data: &Dataset,
    config: &LearnerConfig,
    ckpt: Option<&(String, ResumePolicy)>,
    telemetry: Option<&TelemetryHandle>,
    capture: &mut Capture,
) -> Result<(ModuleNetwork, RunReport, ObsSnapshot), RunFailure> {
    engine.set_partition_strategy(partition);
    if let Some(handle) = telemetry {
        engine.obs_mut().set_telemetry(handle.clone());
    }
    capture.flights.push(engine.obs().flight());
    capture.stashes.push(engine.death_stash());
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_on(&mut engine, data, config, ckpt)
    })) {
        Ok(result) => result,
        Err(payload) => Err(fault_failure(payload)),
    }
}

fn run(
    opts: &Options,
    data: &Dataset,
    config: &LearnerConfig,
    telemetry: Option<&TelemetryHandle>,
    capture: &mut Capture,
) -> Result<(ModuleNetwork, RunReport, ObsSnapshot), RunFailure> {
    let ckpt = checkpoint_request(opts);
    let nranks = match opts.engine {
        EngineSpec::Serial => 1,
        EngineSpec::Threads(p) | EngineSpec::Sim(p) | EngineSpec::Msg(p)
        | EngineSpec::Proc(p) => p,
    };
    let plan = match &opts.fault {
        Some(spec) => FaultPlan::parse(spec, nranks).map_err(RunFailure::Error)?,
        None => FaultPlan::new(),
    };
    if !plan.is_empty() {
        silence_injected_panics();
    }
    match opts.engine {
        // Single-process engines count *engine* events (each dist_map /
        // collective / replicated call), attributed to rank 0.
        EngineSpec::Serial => run_single(
            SerialEngine::new().with_fault_plan(plan),
            opts.partition,
            data,
            config,
            ckpt.as_ref(),
            telemetry,
            capture,
        ),
        EngineSpec::Threads(p) => run_single(
            ThreadEngine::new(p).with_fault_plan(plan),
            opts.partition,
            data,
            config,
            ckpt.as_ref(),
            telemetry,
            capture,
        ),
        EngineSpec::Sim(p) => run_single(
            SimEngine::new(p).with_fault_plan(plan),
            opts.partition,
            data,
            config,
            ckpt.as_ref(),
            telemetry,
            capture,
        ),
        EngineSpec::Msg(p) => {
            // True SPMD: every rank learns the full network. All ranks
            // produce the identical network and report (the determinism
            // contract); the per-rank observability snapshots are merged
            // so the timeline carries every rank's busy time. Faults are
            // fabric events (sends + receives, per endpoint); an empty
            // plan makes this path identical to the plain spmd_run.
            let timeout = opts.comm_timeout_ms.map(Duration::from_millis);
            let (outcomes, spmd_capture) = spmd_run_faulty_recorded(p, plan, timeout, |engine| {
                // Replicated SPMD call: every rank installs the same
                // strategy so the governors stay in lock-step.
                engine.set_partition_strategy(opts.partition);
                // The telemetry delta stream is a single per-stream
                // state machine, so exactly one rank feeds it.
                if engine.rank() == 0 {
                    if let Some(handle) = telemetry {
                        engine.obs_mut().set_telemetry(handle.clone());
                    }
                }
                run_on(engine, data, config, ckpt.as_ref())
            });
            capture.flights = spmd_capture.flights;
            capture.stashes = spmd_capture.stashes;
            let mut results = Vec::with_capacity(p);
            // Survivors abort *because* a peer was killed; report the
            // injected kill as the cause, not the downstream abort.
            let mut survivor_failure: Option<RunFailure> = None;
            for (rank, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    Ok(Ok(triple)) => results.push(triple),
                    Ok(Err(failure)) => return Err(failure),
                    Err(CommError::Injected { rank: r, event }) => {
                        return Err(RunFailure::Fault(format!(
                            "injected kill: rank {r} at fabric event {event}"
                        )))
                    }
                    Err(e) => {
                        survivor_failure.get_or_insert(RunFailure::Fault(format!(
                            "rank {rank} aborted: {e}"
                        )));
                    }
                }
            }
            if let Some(failure) = survivor_failure {
                return Err(failure);
            }
            let snapshots: Vec<ObsSnapshot> =
                results.iter().map(|(_, _, s)| s.clone()).collect();
            // A merge failure here means the determinism contract
            // itself broke — surface the first divergence, don't panic.
            let merged = mn_comm::obs::merge_ranks(&snapshots)
                .map_err(|e| RunFailure::Error(format!("rank merge failed: {e}")))?;
            let (network, report, _) = results.swap_remove(0);
            Ok((network, report, merged))
        }
        // Dispatched to run_supervisor/run_worker_entry before run()
        // is ever reached; kept for match exhaustiveness.
        EngineSpec::Proc(_) => Err(RunFailure::Error(
            "proc engine must be launched from main".to_string(),
        )),
    }
}

/// Open the `--telemetry-out` sink, if requested.
fn open_telemetry(opts: &Options) -> Result<Option<TelemetrySink>, String> {
    match &opts.telemetry_out {
        Some(path) => {
            let interval = Duration::from_millis(opts.telemetry_interval_ms);
            TelemetrySink::to_path(path, interval)
                .map(Some)
                .map_err(|e| format!("opening telemetry stream {path}: {e}"))
        }
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    // Service subcommands dispatch before the batch flag parser (the
    // same pattern as the hidden `worker` subcommand).
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("client") => return client_main(&args[1..]),
        _ => {}
    }
    let opts = parse_options();
    if let Some(worker) = &opts.worker {
        return run_worker_entry(&opts, worker);
    }
    if let EngineSpec::Proc(p) = opts.engine {
        return run_supervisor(&opts, p);
    }
    if opts.quiet {
        mn_comm::obs::set_quiet(true);
    }
    let data = match load_data(&opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match build_config(&opts, &data) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sink = match open_telemetry(&opts) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = sink.as_ref().map(|s| s.handle());
    let mut capture = Capture::default();
    let result = run(&opts, &data, &config, handle.as_ref(), &mut capture);
    drop(handle);
    if let Some(sink) = sink {
        // The engines (and their cloned handles) are gone by now, so
        // this only drains buffered lines and joins the writer.
        if let Err(e) = sink.finish() {
            eprintln!("warning: telemetry stream: {e}");
        }
    }
    let (network, report, snapshot) = match result {
        Ok(result) => {
            // An explicit dump directory asks for recorders even from
            // clean runs (replay comparison across engines).
            if let Some(dir) = &opts.flightrec_dir {
                capture.dump_flight_recorders(dir, opts.quiet);
            }
            result
        }
        Err(failure) => {
            // Post-mortem: every failed run leaves its per-rank flight
            // recorder dumps, and — when a dying rank stashed its final
            // snapshot — the best-effort timeline the --trace flag asked
            // for.
            let dir = opts.flightrec_dir.clone().unwrap_or_else(|| ".".to_string());
            capture.dump_flight_recorders(&dir, opts.quiet);
            if let Some(path) = &opts.trace {
                if let Some(snap) = capture.death_snapshot() {
                    let trace = mn_comm::obs::chrome_trace_json(&snap);
                    if let Err(e) = std::fs::write(path, trace) {
                        eprintln!("warning: writing {path}: {e}");
                    } else if !opts.quiet {
                        eprintln!("post-mortem trace: {path}");
                    }
                }
            }
            match failure {
                RunFailure::Error(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                RunFailure::Fault(e) => {
                    eprintln!("fault: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    };

    write_outputs(&opts, &network, &report, &snapshot)
}

/// Print the run summary and write every requested output artifact —
/// the tail of a successful run, shared by the single-process engines
/// (from `main`) and the rank-0 proc worker.
fn write_outputs(
    opts: &Options,
    network: &ModuleNetwork,
    report: &RunReport,
    snapshot: &ObsSnapshot,
) -> ExitCode {
    if !opts.quiet {
        let summary = network.summary();
        println!(
            "learned {} modules over {} genes ({} assigned), {} module edges",
            summary.n_modules, summary.n_vars, summary.n_assigned_vars, summary.n_edges
        );
        for phase in &report.phases {
            println!("  task {:<10} {:.4}s", phase.name, phase.elapsed_s);
        }
        println!("total: {:.4}s on {} rank(s)", report.total_s(), report.nranks);
        if opts.dag {
            let dag = monet::acyclic::dag_edges(network);
            println!("acyclic module graph: {} edges", dag.len());
        }
    }
    if let Some(path) = &opts.xml {
        if let Err(e) = monet::write_xml_file(network, path) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.json {
        if let Err(e) = monet::write_json_file(network, path) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.trace {
        let trace = mn_comm::obs::chrome_trace_json(snapshot);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.metrics_out {
        let metrics = RunMetrics::new(report, snapshot);
        if let Err(e) = metrics.write_file(path) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One rank of a `proc:<p>` run: connect to the supervisor, learn the
/// network over the proc fabric, and — on rank 0 — write every output
/// the user asked for. This is the `monet worker` entrypoint; the
/// supervisor spawns one per rank with the run flags forwarded
/// verbatim, so data loading and configuration are replicated exactly.
fn run_worker_entry(opts: &Options, w: &WorkerOpts) -> ExitCode {
    // Only rank 0 speaks: the summary, telemetry stream, and output
    // files all come from rank 0; the other ranks run silent.
    let quiet = opts.quiet || w.rank != 0;
    if quiet {
        mn_comm::obs::set_quiet(true);
    }
    let data = match load_data(opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match build_config(opts, &data) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match &opts.fault {
        Some(spec) => match FaultPlan::parse(spec, w.nranks) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::new(),
    };
    if !plan.is_empty() {
        silence_injected_panics();
    }
    let addr = match ProcAddr::parse(&w.socket) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: --proc-socket: {e}");
            return ExitCode::FAILURE;
        }
    };
    let timeout = opts.comm_timeout_ms.map(Duration::from_millis);
    let dump_dir = opts
        .flightrec_dir
        .clone()
        .unwrap_or_else(|| ".".to_string());
    // A supervisor that never appears (or never finishes the
    // handshake) is a bounded, typed failure — the same exit code 3 a
    // mid-run fault gets, since from this rank's perspective the
    // fabric failed.
    let ep = match connect_worker(WorkerConfig {
        rank: w.rank,
        nranks: w.nranks,
        addr,
        connect_timeout: timeout.unwrap_or(DEFAULT_CONNECT_TIMEOUT),
        recv_timeout: timeout,
        faults: plan,
        dump_dir: dump_dir.clone().into(),
    }) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("fault: rank {} handshake: {e}", w.rank);
            return ExitCode::from(3);
        }
    };
    let (mut engine, flight, stash) = mn_comm::msg::spmd_worker_engine(ep);
    // A SIGTERMed or panicking worker still leaves its flight ring on
    // disk — this process IS the rank; nothing else holds the handle.
    {
        let flight = flight.clone();
        let dir = dump_dir.clone();
        mn_comm::sys::on_sigterm(move || {
            let _ = std::fs::create_dir_all(&dir);
            let _ = flight.dump_to_dir(std::path::Path::new(&dir));
        });
    }
    {
        let flight = flight.clone();
        let dir = dump_dir.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = std::fs::create_dir_all(&dir);
            let _ = flight.dump_to_dir(std::path::Path::new(&dir));
            prev(info);
        }));
    }
    let sink = if w.rank == 0 {
        match open_telemetry(opts) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let handle = sink.as_ref().map(|s| s.handle());
    let ckpt = checkpoint_request(opts);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.set_partition_strategy(opts.partition);
        if let Some(handle) = &handle {
            engine.obs_mut().set_telemetry(handle.clone());
        }
        let (network, report, snapshot) = run_on(&mut engine, &data, &config, ckpt.as_ref())?;
        // Post-run snapshot gather so rank 0 can merge every rank's
        // timeline, mirroring the in-process launcher's thread-join
        // collection. Muted: post-run traffic is outside the
        // deterministic accounting contract.
        engine.endpoint().set_obs_muted(true);
        let all = mn_comm::msg::allgatherv(engine.endpoint(), vec![snapshot])
            .map_err(|e| RunFailure::Fault(format!("snapshot gather: {e}")))?;
        engine.endpoint().set_obs_muted(false);
        Ok((network, report, all))
    }));
    let result = match outcome {
        Ok(result) => result,
        Err(payload) => Err(fault_failure(payload)),
    };
    // Goodbye on every deliberate exit — success or diagnosed fault —
    // so the supervisor's EOF-is-death detection only fires for ranks
    // that really vanished (SIGKILL, crash). A survivor aborting on a
    // peer's death reports it through exit code 3, not by looking dead
    // itself.
    engine.endpoint().goodbye();
    drop(handle);
    if let Some(sink) = sink {
        if let Err(e) = sink.finish() {
            eprintln!("warning: telemetry stream: {e}");
        }
    }
    let dump_flight = |always: bool| {
        if always || opts.flightrec_dir.is_some() {
            let dir = std::path::Path::new(&dump_dir);
            let _ = std::fs::create_dir_all(dir);
            match flight.dump_to_dir(dir) {
                Ok(path) => {
                    if !quiet {
                        eprintln!("flight recorder: {}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: flight recorder dump: {e}"),
            }
        }
    };
    match result {
        Ok((network, report, snapshots)) => {
            dump_flight(false);
            if w.rank != 0 {
                return ExitCode::SUCCESS;
            }
            let merged = match mn_comm::obs::merge_ranks(&snapshots) {
                Ok(merged) => merged,
                Err(e) => {
                    eprintln!("error: rank merge failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            write_outputs(opts, &network, &report, &merged)
        }
        Err(failure) => {
            dump_flight(true);
            if w.rank == 0 {
                if let Some(path) = &opts.trace {
                    if let Some(snap) = stash.get() {
                        let trace = mn_comm::obs::chrome_trace_json(&snap);
                        if std::fs::write(path, trace).is_ok() && !quiet {
                            eprintln!("post-mortem trace: {path}");
                        }
                    }
                }
            }
            match failure {
                RunFailure::Error(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
                RunFailure::Fault(e) => {
                    eprintln!("fault: rank {}: {e}", w.rank);
                    ExitCode::from(3)
                }
            }
        }
    }
}

/// The `--engine proc:<p>` parent: bind the socket, spawn one `monet
/// worker` child per rank, route messages and watch liveness until
/// every worker departs, then fold the children's exits into the run's
/// exit code — 0 clean, 3 for any real or injected fault (with a
/// one-line diagnosis naming the dead rank and its heartbeat age), 1
/// for ordinary errors.
fn run_supervisor(opts: &Options, p: usize) -> ExitCode {
    // Validate everything cheap before spawning: a typo should fail in
    // one process, not p+1.
    let data = match load_data(opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = build_config(opts, &data) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    drop(data);
    if let Some(spec) = &opts.fault {
        if let Err(e) = FaultPlan::parse(spec, p) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let addr = match std::env::var("MN_PROC_ADDR") {
        Ok(spec) => match ProcAddr::parse(&spec) {
            Ok(addr) => addr,
            Err(e) => {
                eprintln!("error: MN_PROC_ADDR: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => ProcAddr::Unix(
            std::env::temp_dir().join(format!("mn-proc-{}.sock", std::process::id())),
        ),
    };
    let mut sup = match Supervisor::bind(&addr, p) {
        Ok(sup) => sup,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let worker_addr = sup.addr().to_string();
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: resolving own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Forward the original command line verbatim (workers ignore
    // --engine); each child re-loads data and re-derives the identical
    // config, the SPMD way.
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let mut children = Vec::with_capacity(p);
    for rank in 0..p {
        let spawned = std::process::Command::new(&exe)
            .arg("worker")
            .arg("--proc-rank")
            .arg(rank.to_string())
            .arg("--proc-nranks")
            .arg(p.to_string())
            .arg("--proc-socket")
            .arg(&worker_addr)
            .args(&forwarded)
            .spawn();
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("error: spawning worker {rank}: {e}");
                for child in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let timeout = opts
        .comm_timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_CONNECT_TIMEOUT);
    if let Err(e) = sup.accept_workers(timeout) {
        eprintln!("error: worker handshake: {e}");
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
        return ExitCode::FAILURE;
    }
    let pids = sup.pids();
    let report = sup.route(|rank| {
        // The stall monitor declared this rank dead; make it so, which
        // turns the stall into an ordinary socket-EOF death.
        let _ = mn_comm::sys::send_signal(pids[rank], mn_comm::sys::SIGKILL);
    });
    if let ProcAddr::Unix(path) = &addr {
        let _ = std::fs::remove_file(path);
    }
    use std::os::unix::process::ExitStatusExt;
    let mut fault: Option<String> = None;
    let mut error: Option<String> = None;
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = match child.wait() {
            Ok(status) => status,
            Err(e) => {
                error.get_or_insert(format!("waiting on rank {rank}: {e}"));
                continue;
            }
        };
        if let Some(sig) = status.signal() {
            fault.get_or_insert(format!("rank {rank} killed by signal {sig}"));
        } else {
            match status.code() {
                Some(0) | None => {}
                Some(3) => {
                    fault.get_or_insert(format!(
                        "rank {rank} aborted on a fault (diagnosis on its stderr above)"
                    ));
                }
                Some(code) => {
                    error.get_or_insert(format!("rank {rank} exited with code {code}"));
                }
            }
        }
    }
    // A routed death carries the most precise diagnosis: which rank
    // vanished, how it was detected, and how stale its heartbeat was.
    if let Some((rank, age, stalled)) = report.first_death() {
        let how = if stalled {
            "stalled (heartbeat timeout)"
        } else {
            "died (socket closed)"
        };
        eprintln!(
            "fault: rank {rank} {how}; last heartbeat {} ms before detection",
            age.as_millis()
        );
        return ExitCode::from(3);
    }
    if let Some(msg) = fault {
        eprintln!("fault: {msg}");
        return ExitCode::from(3);
    }
    if let Some(msg) = error {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// `monet serve` / `monet client` — the long-lived service (DESIGN.md
// §16)
// ---------------------------------------------------------------------

fn serve_usage() -> ! {
    eprintln!(
        "usage: monet serve --listen unix:<path>|tcp:<host:port>\n\
         \x20      [--state-dir dir] [--workers N] [--max-queue N]\n\
         \x20      [--telemetry-interval-ms T]"
    );
    std::process::exit(2)
}

fn serve_main(args: &[String]) -> ExitCode {
    use monet_serve::{ServeConfig, Server};
    let mut listen: Option<String> = None;
    let mut state_dir = "monet-serve-state".to_string();
    let mut workers = 2usize;
    let mut max_queue = 64usize;
    let mut interval_ms = 50u64;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| serve_usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => listen = Some(value(args, &mut i)),
            "--state-dir" => state_dir = value(args, &mut i),
            "--workers" => workers = value(args, &mut i).parse().unwrap_or_else(|_| serve_usage()),
            "--max-queue" => {
                max_queue = value(args, &mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            "--telemetry-interval-ms" => {
                interval_ms = value(args, &mut i).parse().unwrap_or_else(|_| serve_usage())
            }
            _ => serve_usage(),
        }
        i += 1;
    }
    let Some(listen) = listen else { serve_usage() };
    let addr = match ProcAddr::parse(&listen) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: --listen {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = ServeConfig::new(addr, state_dir.into());
    cfg.workers = workers.max(1);
    cfg.max_queue = max_queue.max(1);
    cfg.telemetry_interval = Duration::from_millis(interval_ms.max(1));
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding listener: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts (CI, tests) wait for this exact line before connecting.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serving: {e}");
            ExitCode::FAILURE
        }
    }
}

fn client_usage() -> ! {
    eprintln!(
        "usage: monet client --connect <addr> <op> [flags]\n\
         ops:\n\
         \x20 ping\n\
         \x20 register --tenant T --dataset D (--synthetic n,m [--seed s] | --tsv path)\n\
         \x20 submit --tenant T --dataset D [--engine serial|threads:<p>|sim:<p>]\n\
         \x20        [--seed N] [--ganesh-runs G] [--update-steps U] [--init-clusters K0]\n\
         \x20        [--trees R] [--splits-per-node J] [--sampling-steps S] [--threshold T]\n\
         \x20        [--reference] [--gibbs-naive] [--consensus-dense]\n\
         \x20 status --job J | watch --job J [--from N] | result --job J [--json path]\n\
         \x20 cancel --job J | suspend --job J | resume --job J [--engine E]\n\
         \x20 accounting [--tenant T] | jobs [--tenant T] | shutdown | raw <line>"
    );
    std::process::exit(2)
}

/// Flat `--flag value` parser for one client op. Boolean flags map to
/// `"true"`.
fn client_flags(args: &[String], bools: &[&str]) -> std::collections::BTreeMap<String, String> {
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let name = match args[i].strip_prefix("--") {
            Some(name) => name.to_string(),
            None => client_usage(),
        };
        if bools.contains(&name.as_str()) {
            flags.insert(name, "true".to_string());
        } else {
            i += 1;
            let Some(v) = args.get(i) else { client_usage() };
            flags.insert(name, v.clone());
        }
        i += 1;
    }
    flags
}

fn client_main(args: &[String]) -> ExitCode {
    use monet_serve::client::Reply;
    use monet_serve::Client;

    // `--connect` may appear before or after the op token.
    let mut connect: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--connect" {
            i += 1;
            connect = Some(args.get(i).cloned().unwrap_or_else(|| client_usage()));
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let Some(connect) = connect else {
        client_usage()
    };
    if rest.is_empty() {
        client_usage();
    }
    let op = rest.remove(0);
    let addr = match ProcAddr::parse(&connect) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: --connect {connect}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut client = match Client::connect(&addr, Duration::from_secs(10)) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: connecting to {connect}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Each op prints the server's response line on stdout; a typed
    // refusal prints it and exits 1 (except `raw`, which only reports
    // transport failures — CI asserts on its output with jq).
    let finish = |reply: std::io::Result<Reply>| -> ExitCode {
        match reply {
            Ok(Reply::Ok(value)) => {
                println!("{}", serde_json::to_string(&value).expect("response reserializes"));
                ExitCode::SUCCESS
            }
            Ok(Reply::Err(err)) => {
                println!("{}", monet_serve::proto::err_line(&err));
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    };

    match op.as_str() {
        "ping" => finish(client.ping()),
        "register" => {
            let flags = client_flags(&rest, &[]);
            let (Some(tenant), Some(dataset)) = (flags.get("tenant"), flags.get("dataset"))
            else {
                client_usage()
            };
            if let Some(tsv) = flags.get("tsv") {
                return finish(client.register_tsv(tenant, dataset, tsv));
            }
            let Some(synth) = flags.get("synthetic") else {
                client_usage()
            };
            let parts: Vec<&str> = synth.split(',').collect();
            if parts.len() != 2 {
                client_usage();
            }
            let n: usize = parts[0].parse().unwrap_or_else(|_| client_usage());
            let m: usize = parts[1].parse().unwrap_or_else(|_| client_usage());
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().unwrap_or_else(|_| client_usage()))
                .unwrap_or(0);
            finish(client.register_synthetic(tenant, dataset, n, m, seed))
        }
        "submit" => {
            let flags = client_flags(&rest, &["reference", "gibbs-naive", "consensus-dense"]);
            let (Some(tenant), Some(dataset)) = (flags.get("tenant"), flags.get("dataset"))
            else {
                client_usage()
            };
            let engine = flags.get("engine").map(String::as_str).unwrap_or("serial");
            // Learn flags land in the same Options the batch parser
            // fills, then go through the same config builder.
            let mut opts = Options::defaults();
            let parse = |flags: &std::collections::BTreeMap<String, String>,
                         name: &str,
                         default: usize|
             -> usize {
                flags
                    .get(name)
                    .map(|v| v.parse().unwrap_or_else(|_| client_usage()))
                    .unwrap_or(default)
            };
            opts.seed = flags
                .get("seed")
                .map(|v| v.parse().unwrap_or_else(|_| client_usage()))
                .unwrap_or(0);
            opts.ganesh_runs = parse(&flags, "ganesh-runs", opts.ganesh_runs);
            opts.update_steps = parse(&flags, "update-steps", opts.update_steps);
            opts.init_clusters = flags
                .get("init-clusters")
                .map(|v| v.parse().unwrap_or_else(|_| client_usage()));
            opts.trees = parse(&flags, "trees", opts.trees);
            opts.splits_per_node = parse(&flags, "splits-per-node", opts.splits_per_node);
            opts.sampling_steps = parse(&flags, "sampling-steps", opts.sampling_steps);
            opts.threshold = flags
                .get("threshold")
                .map(|v| v.parse().unwrap_or_else(|_| client_usage()))
                .unwrap_or(0.0);
            opts.reference = flags.contains_key("reference");
            opts.gibbs_naive = flags.contains_key("gibbs-naive");
            opts.consensus_dense = flags.contains_key("consensus-dense");
            let config = match base_config(&opts).validated() {
                Ok(config) => config,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            finish(client.submit(tenant, dataset, engine, &config))
        }
        "status" | "result" | "cancel" | "suspend" | "resume" | "watch" => {
            let flags = client_flags(&rest, &[]);
            let Some(job) = flags.get("job") else {
                client_usage()
            };
            match op.as_str() {
                "status" => finish(client.status(job)),
                "cancel" => finish(client.cancel(job)),
                "suspend" => finish(client.suspend(job)),
                "resume" => finish(client.resume(job, flags.get("engine").map(String::as_str))),
                "watch" => {
                    let from: usize = flags
                        .get("from")
                        .map(|v| v.parse().unwrap_or_else(|_| client_usage()))
                        .unwrap_or(0);
                    match client.watch(job, from, |line| println!("{line}")) {
                        Ok(done) => {
                            println!(
                                "{}",
                                serde_json::to_string(&done).expect("response reserializes")
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                "result" => match client.result_of(job) {
                    Ok(monet_serve::client::Reply::Ok(value)) => {
                        let Some(network_json) = value["network_json"].as_str() else {
                            eprintln!("error: response carried no network_json");
                            return ExitCode::FAILURE;
                        };
                        if let Some(path) = flags.get("json") {
                            // The exact batch-CLI `--json` bytes.
                            if let Err(e) = std::fs::write(path, network_json) {
                                eprintln!("error: writing {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        } else {
                            println!("{network_json}");
                        }
                        ExitCode::SUCCESS
                    }
                    other => finish(other),
                },
                _ => unreachable!(),
            }
        }
        "accounting" => {
            let flags = client_flags(&rest, &[]);
            finish(client.accounting(flags.get("tenant").map(String::as_str)))
        }
        "jobs" => {
            let flags = client_flags(&rest, &[]);
            finish(client.jobs(flags.get("tenant").map(String::as_str)))
        }
        "shutdown" => finish(client.shutdown()),
        "raw" => {
            // Send one arbitrary line and print whatever comes back —
            // the hostile-input drill hook. Exit 0 iff a response line
            // arrived; content assertions belong to the caller (jq).
            if rest.is_empty() {
                client_usage();
            }
            let line = rest.join(" ");
            match client.raw(&line) {
                Ok(value) => {
                    println!(
                        "{}",
                        serde_json::to_string(&value).expect("response reserializes")
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => client_usage(),
    }
}
