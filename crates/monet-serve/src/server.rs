//! The server: accept loop, fair scheduler, worker pool, job runner.

use crate::error::ServeError;
use crate::jobs::{Job, JobState};
use crate::proto::{self, DataSpec, Request};
use mn_comm::msg::proc::{ProcAddr, ServiceListener, ServiceStream};
use mn_comm::{
    CancelKind, CancelToken, EngineSpec, JobCancelled, ParEngine, SerialEngine, SimEngine,
    ThreadEngine,
};
use mn_data::Dataset;
use mn_obs::{TelemetryHandle, TelemetryHub, TelemetryStream};
use monet::{CheckpointError, LearnerConfig, ResumePolicy};
use serde::Content;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server configuration (the `monet serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `unix:<path>` or `tcp:<host:port>`.
    pub addr: ProcAddr,
    /// Worker pool size: jobs learning concurrently.
    pub workers: usize,
    /// Admission limit: queued (not yet running) jobs across all
    /// tenants; submissions beyond it get a typed backpressure error.
    pub max_queue: usize,
    /// Root for persistent state; job checkpoints live under
    /// `<state_dir>/jobs/<job-id>`.
    pub state_dir: PathBuf,
    /// Telemetry emission interval for running jobs.
    pub telemetry_interval: Duration,
}

impl ServeConfig {
    /// Defaults for everything but the address and state dir.
    pub fn new(addr: ProcAddr, state_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            addr,
            workers: 2,
            max_queue: 64,
            state_dir,
            telemetry_interval: Duration::from_millis(50),
        }
    }
}

/// Per-tenant accounting totals.
#[derive(Debug, Default, Clone)]
pub struct TenantAccount {
    /// Jobs ever admitted.
    pub submitted: u64,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs that reached `Cancelled`.
    pub cancelled: u64,
    /// Suspensions that took effect (a job may suspend repeatedly).
    pub suspended: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Learning seconds charged (completed segments).
    pub busy_s: f64,
    /// Deterministic engine counters summed over completed jobs.
    pub counters: BTreeMap<String, u64>,
}

/// Scheduler state: one mutex, locked briefly; never held while
/// learning or doing I/O. Lock order is `Sched` before `Job::inner`.
struct Sched {
    /// Registered datasets by `(tenant, name)`.
    datasets: BTreeMap<(String, String), Arc<Dataset>>,
    /// All jobs ever admitted, by id.
    jobs: BTreeMap<String, Arc<Job>>,
    /// Job ids in admission order (for listing).
    order: Vec<String>,
    /// Queued job ids, FIFO per tenant.
    queues: BTreeMap<String, VecDeque<String>>,
    /// Tenant served last — fairness resumes strictly after it.
    rr_last: Option<String>,
    /// Total queued jobs (the backpressure measure).
    queued_total: usize,
    /// Next job id suffix.
    next_job: u64,
    /// Accounting per tenant.
    accounts: BTreeMap<String, TenantAccount>,
}

impl Sched {
    /// Pop the next job fairly: round-robin over tenants in sorted
    /// cyclic order starting strictly after the last-served tenant,
    /// FIFO within each tenant. One tenant with a deep queue cannot
    /// starve the others.
    fn pop_fair(&mut self) -> Option<Arc<Job>> {
        let tenants: Vec<String> = self.queues.keys().cloned().collect();
        if tenants.is_empty() {
            return None;
        }
        let start = match &self.rr_last {
            Some(last) => tenants.iter().position(|t| t > last).unwrap_or(0),
            None => 0,
        };
        for i in 0..tenants.len() {
            let tenant = &tenants[(start + i) % tenants.len()];
            if let Some(id) = self.queues.get_mut(tenant).and_then(VecDeque::pop_front) {
                self.rr_last = Some(tenant.clone());
                self.queued_total -= 1;
                self.queues.retain(|_, q| !q.is_empty());
                return self.jobs.get(&id).cloned();
            }
        }
        None
    }

    fn enqueue(&mut self, tenant: &str, id: String) {
        self.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(id);
        self.queued_total += 1;
    }

    /// Remove a queued job id; true if it was actually queued.
    fn dequeue(&mut self, tenant: &str, id: &str) -> bool {
        let Some(q) = self.queues.get_mut(tenant) else {
            return false;
        };
        let Some(pos) = q.iter().position(|j| j == id) else {
            return false;
        };
        q.remove(pos);
        self.queued_total -= 1;
        self.queues.retain(|_, queue| !queue.is_empty());
        true
    }

    fn account(&mut self, tenant: &str) -> &mut TenantAccount {
        self.accounts.entry(tenant.to_string()).or_default()
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cfg: ServeConfig,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn sched(&self) -> MutexGuard<'_, Sched> {
        unpoison(self.sched.lock())
    }
}

/// A bound, not-yet-running server. Split from [`Server::run`] so the
/// caller can learn the resolved address (ephemeral TCP ports) before
/// blocking.
pub struct Server {
    listener: ServiceListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and initialize empty state.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        // Engine-event unwinds (fault drills, cancellation) are normal
        // control flow here; keep them off stderr.
        mn_comm::silence_injected_panics();
        std::fs::create_dir_all(&cfg.state_dir)?;
        let listener = ServiceListener::bind(&cfg.addr)?;
        // Record the *resolved* address (tcp:host:0 gets a real port)
        // so shutdown's self-connect wake-up can reach the listener.
        let mut cfg = cfg;
        cfg.addr = listener.addr().clone();
        let shared = Arc::new(Shared {
            cfg,
            sched: Mutex::new(Sched {
                datasets: BTreeMap::new(),
                jobs: BTreeMap::new(),
                order: Vec::new(),
                queues: BTreeMap::new(),
                rr_last: None,
                queued_total: 0,
                next_job: 0,
                accounts: BTreeMap::new(),
            }),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The resolved listen address (differs from the configured one
    /// for `tcp:host:0`).
    pub fn local_addr(&self) -> &ProcAddr {
        self.listener.addr()
    }

    /// Serve until a `shutdown` request: spawns the worker pool, then
    /// accepts connections (one thread each). Returns after all queued
    /// and running jobs have reached a terminal state.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok(s) => s,
                Err(_) if self.shared.shutdown.load(Ordering::SeqCst) => break,
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(e);
                }
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&self.shared);
            let _ = std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || {
                    let _ = serve_connection(&shared, stream);
                });
        }

        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut sched = shared.sched();
            loop {
                if let Some(job) = sched.pop_fair() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Timed wait: robust against a missed notify.
                let (guard, _) = unpoison(
                    shared
                        .work_ready
                        .wait_timeout(sched, Duration::from_millis(200)),
                );
                sched = guard;
            }
        };
        match job {
            Some(job) => run_job(shared, &job),
            None => return,
        }
    }
}

/// The outcome a learn segment hands back through `catch_unwind`.
type SegmentOk = (String, f64, BTreeMap<String, u64>);

fn run_learn_on<E: ParEngine>(
    mut engine: E,
    token: CancelToken,
    telemetry: TelemetryHandle,
    data: &Dataset,
    config: &LearnerConfig,
    dir: &std::path::Path,
) -> Result<SegmentOk, CheckpointError> {
    engine.set_cancel_token(token);
    engine.obs_mut().set_telemetry(telemetry);
    let (network, report) =
        monet::learn_with_checkpoint_policy(&mut engine, data, config, dir, ResumePolicy::Auto)?;
    let counters = engine.obs().counters().clone();
    Ok((monet::to_json(&network), report.total_s(), counters))
}

fn run_segment(
    engine: EngineSpec,
    token: CancelToken,
    telemetry: TelemetryHandle,
    data: &Dataset,
    config: &LearnerConfig,
    dir: &std::path::Path,
) -> Result<SegmentOk, CheckpointError> {
    match engine {
        EngineSpec::Serial => run_learn_on(SerialEngine::new(), token, telemetry, data, config, dir),
        EngineSpec::Threads(p) => {
            run_learn_on(ThreadEngine::new(p), token, telemetry, data, config, dir)
        }
        EngineSpec::Sim(p) => run_learn_on(SimEngine::new(p), token, telemetry, data, config, dir),
        // Rejected at request parse; unreachable by construction.
        EngineSpec::Msg(_) | EngineSpec::Proc(_) => Err(CheckpointError::Io(io::Error::new(
            io::ErrorKind::Unsupported,
            "msg/proc engines are not serveable",
        ))),
    }
}

/// Run one job segment to its outcome. Called by a worker with no
/// locks held.
fn run_job(shared: &Shared, job: &Arc<Job>) {
    // Claim the job; a cancel that raced the queue pop wins here.
    let (engine, config, token) = {
        let mut inner = unpoison(job.inner.lock());
        if inner.state != JobState::Queued {
            return;
        }
        inner.state = JobState::Running;
        let token = CancelToken::new(); // tokens latch: fresh per segment
        inner.cancel = Some(token.clone());
        (inner.engine, inner.config.clone(), token)
    };
    let data = {
        let sched = shared.sched();
        sched
            .datasets
            .get(&(job.tenant.clone(), job.dataset.clone()))
            .cloned()
    };
    let Some(data) = data else {
        finish_failed(shared, job, "dataset vanished (server bug)".into());
        return;
    };
    job.push_event("running", &engine.to_string());

    // Telemetry: the engine pushes snapshots into a hub; a pump thread
    // renders them as versioned JSONL into the job's event log, where
    // any number of `watch` connections replay them.
    let hub = TelemetryHub::new(shared.cfg.telemetry_interval);
    let handle = hub.handle();
    let rx = hub.subscribe();
    let pump_job = Arc::clone(job);
    let pump = std::thread::Builder::new()
        .name("serve-telemetry".into())
        .spawn(move || {
            let mut stream = TelemetryStream::new();
            while let Ok((snap, now_s)) = rx.recv() {
                pump_job.events.push(stream.line(&snap, now_s));
            }
        })
        .expect("spawn telemetry pump");

    let dir = shared.cfg.state_dir.join("jobs").join(&job.id);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_segment(engine, token, handle, &data, &config, &dir)
    }));

    // The engine (and its cloned handles) died with the closure; after
    // finish() the hub disconnects every subscriber, ending the pump.
    hub.finish();
    let _ = pump.join();

    match outcome {
        Ok(Ok((network_json, busy_s, counters))) => {
            let mut sched = shared.sched();
            let mut inner = unpoison(job.inner.lock());
            inner.state = JobState::Done;
            inner.cancel = None;
            inner.result_json = Some(network_json);
            // Resumed segments replay restored counter deltas, so the
            // final segment's counters are the full-run counters.
            inner.counters = counters;
            inner.busy_s += busy_s;
            let account = sched.account(&job.tenant);
            account.completed += 1;
            account.busy_s += busy_s;
            for (k, v) in &inner.counters {
                *account.counters.entry(k.clone()).or_insert(0) += *v;
            }
            drop(inner);
            job.push_event("done", "network ready");
            job.events.close();
        }
        Ok(Err(err)) => finish_failed(shared, job, err.to_string()),
        Err(payload) => match payload.downcast::<JobCancelled>() {
            Ok(cancelled) => {
                let mut sched = shared.sched();
                let mut inner = unpoison(job.inner.lock());
                inner.cancel = None;
                match cancelled.kind {
                    CancelKind::Cancel => {
                        inner.state = JobState::Cancelled;
                        sched.account(&job.tenant).cancelled += 1;
                        drop(inner);
                        drop(sched);
                        job.push_event("cancelled", &format!("at event {}", cancelled.event));
                        job.events.close();
                    }
                    CancelKind::Suspend => {
                        inner.state = JobState::Suspended;
                        sched.account(&job.tenant).suspended += 1;
                        drop(inner);
                        drop(sched);
                        // Not terminal: the log stays open for resume.
                        job.push_event("suspended", &format!("at event {}", cancelled.event));
                    }
                }
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "learner panicked".into());
                finish_failed(shared, job, msg);
            }
        },
    }
}

fn finish_failed(shared: &Shared, job: &Arc<Job>, msg: String) {
    let mut sched = shared.sched();
    let mut inner = unpoison(job.inner.lock());
    inner.state = JobState::Failed;
    inner.cancel = None;
    inner.error = Some(msg.clone());
    sched.account(&job.tenant).failed += 1;
    drop(inner);
    drop(sched);
    job.push_event("failed", &msg);
    job.events.close();
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

fn write_line(stream: &mut ServiceStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Serve one client connection: a request line in, a response line out
/// (plus streamed event lines for `watch`), until clean EOF. A client
/// that dies mid-line or floods past [`proto::MAX_LINE`] just loses
/// its connection; server state is untouched.
fn serve_connection(shared: &Arc<Shared>, stream: ServiceStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match proto::read_line_bounded(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized or non-UTF-8 line: a typed refusal, then
                // hang up (the line boundary is lost).
                let _ = write_line(
                    &mut writer,
                    &proto::err_line(&ServeError::BadRequest(e.to_string())),
                );
                return Ok(());
            }
            // Mid-line death (kill-client case) or transport error.
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = serde_json::from_str::<Content>(&line)
            .map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
            .and_then(|value| Request::parse(&value));
        let request = match request {
            Ok(req) => req,
            Err(err) => {
                write_line(&mut writer, &proto::err_line(&err))?;
                continue;
            }
        };
        if let Request::Watch { job, from } = request {
            match watch(shared, &mut writer, &job, from) {
                Ok(()) => continue,
                Err(WatchAbort::Refused(err)) => {
                    write_line(&mut writer, &proto::err_line(&err))?;
                    continue;
                }
                Err(WatchAbort::Io(e)) => return Err(e), // watcher gone
            }
        }
        let shutdown = matches!(request, Request::Shutdown);
        let response = match handle(shared, request) {
            Ok(fields) => proto::ok_line(fields),
            Err(err) => proto::err_line(&err),
        };
        write_line(&mut writer, &response)?;
        if shutdown {
            initiate_shutdown(shared);
            return Ok(());
        }
    }
}

enum WatchAbort {
    Refused(ServeError),
    Io(io::Error),
}

/// Stream a job's event log from `from`: replayed history, then live
/// lines, then one final `{"ok":true,"done":true,...}` once the job is
/// terminal and the log is drained.
fn watch(
    shared: &Shared,
    writer: &mut ServiceStream,
    job_id: &str,
    from: usize,
) -> Result<(), WatchAbort> {
    let job = shared
        .sched()
        .jobs
        .get(job_id)
        .cloned()
        .ok_or_else(|| WatchAbort::Refused(ServeError::UnknownJob(job_id.to_string())))?;
    let mut offset = from;
    loop {
        let (next, lines, closed) = job.events.read_from(offset, Duration::from_millis(200));
        for line in &lines {
            write_line(writer, line).map_err(WatchAbort::Io)?;
        }
        offset = next.max(offset);
        if closed {
            let done = proto::ok_line(vec![
                ("done".into(), Content::Bool(true)),
                ("job".into(), Content::Str(job.id.clone())),
                ("state".into(), Content::Str(job.state().label().into())),
                ("events".into(), Content::U64(offset as u64)),
            ]);
            return write_line(writer, &done).map_err(WatchAbort::Io);
        }
    }
}

type Fields = Vec<(String, Content)>;

fn job_summary(job: &Job) -> Content {
    let inner = unpoison(job.inner.lock());
    Content::Map(vec![
        ("job".into(), Content::Str(job.id.clone())),
        ("tenant".into(), Content::Str(job.tenant.clone())),
        ("dataset".into(), Content::Str(job.dataset.clone())),
        ("engine".into(), Content::Str(inner.engine.to_string())),
        ("state".into(), Content::Str(inner.state.label().into())),
    ])
}

fn lookup_job(shared: &Shared, id: &str) -> Result<Arc<Job>, ServeError> {
    shared
        .sched()
        .jobs
        .get(id)
        .cloned()
        .ok_or_else(|| ServeError::UnknownJob(id.to_string()))
}

/// Execute one non-streaming request; returns the extra `ok_line`
/// fields.
fn handle(shared: &Arc<Shared>, request: Request) -> Result<Fields, ServeError> {
    match request {
        Request::Ping => Ok(vec![("pong".into(), Content::Bool(true))]),

        Request::Register {
            tenant,
            dataset,
            data,
        } => {
            let materialized = match data {
                DataSpec::Synthetic { n, m, seed } => {
                    if n == 0 || m == 0 {
                        return Err(ServeError::BadRequest(
                            "synthetic dataset needs n >= 1 and m >= 1".into(),
                        ));
                    }
                    mn_data::synthetic::yeast_like(n, m, seed).dataset
                }
                DataSpec::TsvPath(path) => mn_data::read_tsv_file(&path)
                    .map_err(|e| ServeError::BadRequest(format!("reading {path}: {e}")))?,
            };
            let (n_vars, n_obs) = (materialized.n_vars(), materialized.n_obs());
            let mut sched = shared.sched();
            sched
                .datasets
                .insert((tenant.clone(), dataset.clone()), Arc::new(materialized));
            Ok(vec![
                ("dataset".into(), Content::Str(dataset)),
                ("n_vars".into(), Content::U64(n_vars as u64)),
                ("n_obs".into(), Content::U64(n_obs as u64)),
            ])
        }

        Request::Submit {
            tenant,
            dataset,
            engine,
            config,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            let mut sched = shared.sched();
            if !sched
                .datasets
                .contains_key(&(tenant.clone(), dataset.clone()))
            {
                return Err(ServeError::UnknownDataset(format!("{tenant}/{dataset}")));
            }
            if sched.queued_total >= shared.cfg.max_queue {
                return Err(ServeError::Backpressure {
                    queued: sched.queued_total,
                    limit: shared.cfg.max_queue,
                });
            }
            let id = format!("job-{}", sched.next_job);
            sched.next_job += 1;
            let job = Arc::new(Job::new(
                id.clone(),
                tenant.clone(),
                dataset,
                engine,
                *config,
            ));
            job.push_event("queued", &engine.to_string());
            sched.jobs.insert(id.clone(), Arc::clone(&job));
            sched.order.push(id.clone());
            sched.enqueue(&tenant, id.clone());
            sched.account(&tenant).submitted += 1;
            drop(sched);
            shared.work_ready.notify_all();
            Ok(vec![
                ("job".into(), Content::Str(id)),
                ("state".into(), Content::Str("queued".into())),
            ])
        }

        Request::Status { job } => {
            let job = lookup_job(shared, &job)?;
            let inner = unpoison(job.inner.lock());
            let mut fields = vec![
                ("job".into(), Content::Str(job.id.clone())),
                ("tenant".into(), Content::Str(job.tenant.clone())),
                ("dataset".into(), Content::Str(job.dataset.clone())),
                ("engine".into(), Content::Str(inner.engine.to_string())),
                ("state".into(), Content::Str(inner.state.label().into())),
                ("busy_s".into(), Content::F64(inner.busy_s)),
                ("events".into(), Content::U64(job.events.len() as u64)),
            ];
            if let Some(err) = &inner.error {
                fields.push(("error".into(), Content::Str(err.clone())));
            }
            Ok(fields)
        }

        Request::ResultOf { job } => {
            let job = lookup_job(shared, &job)?;
            let inner = unpoison(job.inner.lock());
            match (&inner.state, &inner.result_json) {
                (JobState::Done, Some(json)) => Ok(vec![
                    ("job".into(), Content::Str(job.id.clone())),
                    // The exact `to_json` bytes, carried as a JSON
                    // string so no float ever round-trips through the
                    // protocol's number representation.
                    ("network_json".into(), Content::Str(json.clone())),
                    ("busy_s".into(), Content::F64(inner.busy_s)),
                ]),
                (JobState::Failed, _) => Err(ServeError::Conflict(format!(
                    "job {} failed: {}",
                    job.id,
                    inner.error.as_deref().unwrap_or("unknown error")
                ))),
                (state, _) => Err(ServeError::Conflict(format!(
                    "job {} is {}, not done",
                    job.id,
                    state.label()
                ))),
            }
        }

        Request::Cancel { job } => {
            let job = lookup_job(shared, &job)?;
            let mut sched = shared.sched();
            let mut inner = unpoison(job.inner.lock());
            let state = match inner.state {
                JobState::Queued | JobState::Suspended => {
                    if inner.state == JobState::Queued {
                        sched.dequeue(&job.tenant, &job.id);
                    }
                    inner.state = JobState::Cancelled;
                    inner.cancel = None;
                    sched.account(&job.tenant).cancelled += 1;
                    drop(inner);
                    drop(sched);
                    job.push_event("cancelled", "before running");
                    job.events.close();
                    JobState::Cancelled
                }
                JobState::Running => {
                    // Cooperative: the engine unwinds at its next
                    // event; the worker records the terminal state.
                    if let Some(token) = &inner.cancel {
                        token.cancel();
                    }
                    JobState::Running
                }
                terminal => {
                    return Err(ServeError::Conflict(format!(
                        "job {} is already {}",
                        job.id,
                        terminal.label()
                    )))
                }
            };
            Ok(vec![
                ("job".into(), Content::Str(job.id.clone())),
                ("state".into(), Content::Str(state.label().into())),
            ])
        }

        Request::Suspend { job } => {
            let job = lookup_job(shared, &job)?;
            let mut sched = shared.sched();
            let mut inner = unpoison(job.inner.lock());
            let state = match inner.state {
                JobState::Queued => {
                    sched.dequeue(&job.tenant, &job.id);
                    inner.state = JobState::Suspended;
                    sched.account(&job.tenant).suspended += 1;
                    drop(inner);
                    drop(sched);
                    job.push_event("suspended", "before running");
                    JobState::Suspended
                }
                JobState::Running => {
                    if let Some(token) = &inner.cancel {
                        token.suspend();
                    }
                    JobState::Running
                }
                other => {
                    return Err(ServeError::Conflict(format!(
                        "cannot suspend job {} in state {}",
                        job.id,
                        other.label()
                    )))
                }
            };
            Ok(vec![
                ("job".into(), Content::Str(job.id.clone())),
                ("state".into(), Content::Str(state.label().into())),
            ])
        }

        Request::Resume { job, engine } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            let job = lookup_job(shared, &job)?;
            let mut sched = shared.sched();
            let mut inner = unpoison(job.inner.lock());
            if inner.state != JobState::Suspended {
                return Err(ServeError::Conflict(format!(
                    "cannot resume job {} in state {}",
                    job.id,
                    inner.state.label()
                )));
            }
            if sched.queued_total >= shared.cfg.max_queue {
                return Err(ServeError::Backpressure {
                    queued: sched.queued_total,
                    limit: shared.cfg.max_queue,
                });
            }
            // Elastic resume: a different engine (even a different
            // rank count) continues from the same checkpoint — the
            // manifest records nranks as provenance only.
            if let Some(engine) = engine {
                inner.engine = engine;
            }
            let engine = inner.engine;
            inner.state = JobState::Queued;
            drop(inner);
            sched.enqueue(&job.tenant, job.id.clone());
            drop(sched);
            job.push_event("resumed", &engine.to_string());
            shared.work_ready.notify_all();
            Ok(vec![
                ("job".into(), Content::Str(job.id.clone())),
                ("state".into(), Content::Str("queued".into())),
                ("engine".into(), Content::Str(engine.to_string())),
            ])
        }

        Request::Accounting { tenant } => {
            let sched = shared.sched();
            let tenants: Vec<(String, Content)> = sched
                .accounts
                .iter()
                .filter(|(name, _)| tenant.as_deref().is_none_or(|t| t == name.as_str()))
                .map(|(name, acct)| {
                    let counters: Vec<(String, Content)> = acct
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Content::U64(*v)))
                        .collect();
                    (
                        name.clone(),
                        Content::Map(vec![
                            ("submitted".into(), Content::U64(acct.submitted)),
                            ("completed".into(), Content::U64(acct.completed)),
                            ("cancelled".into(), Content::U64(acct.cancelled)),
                            ("suspended".into(), Content::U64(acct.suspended)),
                            ("failed".into(), Content::U64(acct.failed)),
                            ("busy_s".into(), Content::F64(acct.busy_s)),
                            ("counters".into(), Content::Map(counters)),
                        ]),
                    )
                })
                .collect();
            Ok(vec![("tenants".into(), Content::Map(tenants))])
        }

        Request::Jobs { tenant } => {
            let sched = shared.sched();
            let jobs: Vec<Content> = sched
                .order
                .iter()
                .filter_map(|id| sched.jobs.get(id))
                .filter(|job| tenant.as_deref().is_none_or(|t| t == job.tenant))
                .map(|job| job_summary(job))
                .collect();
            Ok(vec![("jobs".into(), Content::Seq(jobs))])
        }

        Request::Shutdown => Ok(vec![("stopping".into(), Content::Bool(true))]),

        Request::Watch { .. } => unreachable!("watch is handled by the streaming path"),
    }
}

/// Flip the shutdown flag, cancel everything, wake all threads, and
/// unblock the accept loop.
fn initiate_shutdown(shared: &Arc<Shared>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let mut sched = shared.sched();
    // Cancel queued jobs outright...
    let queued: Vec<String> = sched.queues.values().flatten().cloned().collect();
    sched.queues.clear();
    sched.queued_total = 0;
    for id in queued {
        if let Some(job) = sched.jobs.get(&id).cloned() {
            let mut inner = unpoison(job.inner.lock());
            inner.state = JobState::Cancelled;
            sched.account(&job.tenant).cancelled += 1;
            drop(inner);
            job.push_event("cancelled", "server shutdown");
            job.events.close();
        }
    }
    // ...and ask running jobs to unwind at their next engine event.
    let running: Vec<Arc<Job>> = sched.jobs.values().cloned().collect();
    for job in running {
        let inner = unpoison(job.inner.lock());
        if let (JobState::Running, Some(token)) = (inner.state, &inner.cancel) {
            token.cancel();
        }
    }
    drop(sched);
    shared.work_ready.notify_all();
    // Self-connect to pop the blocking accept() so the loop observes
    // the flag.
    let addr = shared.cfg.addr.clone();
    let _ = mn_comm::msg::proc::service_connect(&addr, Duration::from_millis(500));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Sched {
        Sched {
            datasets: BTreeMap::new(),
            jobs: BTreeMap::new(),
            order: Vec::new(),
            queues: BTreeMap::new(),
            rr_last: None,
            queued_total: 0,
            next_job: 0,
            accounts: BTreeMap::new(),
        }
    }

    fn queued_job(id: &str, tenant: &str) -> Arc<Job> {
        Arc::new(Job::new(
            id.to_string(),
            tenant.to_string(),
            "d".to_string(),
            EngineSpec::Serial,
            monet::LearnerConfig::paper_minimum(1),
        ))
    }

    #[test]
    fn pop_fair_round_robins_across_tenants() {
        let mut s = sched();
        // Tenant a floods five jobs before tenant b's one arrives.
        for i in 0..5 {
            let id = format!("a{i}");
            s.jobs.insert(id.clone(), queued_job(&id, "a"));
            s.enqueue("a", id);
        }
        s.jobs.insert("b0".into(), queued_job("b0", "b"));
        s.enqueue("b", "b0".into());

        let order: Vec<String> = std::iter::from_fn(|| s.pop_fair().map(|j| j.id.clone()))
            .collect();
        // b0 is served second, not sixth: round-robin alternates while
        // both tenants have work, FIFO within each tenant.
        assert_eq!(order, ["a0", "b0", "a1", "a2", "a3", "a4"]);
        assert_eq!(s.queued_total, 0);
    }

    #[test]
    fn dequeue_removes_only_queued_ids() {
        let mut s = sched();
        s.jobs.insert("x".into(), queued_job("x", "t"));
        s.enqueue("t", "x".into());
        assert!(s.dequeue("t", "x"));
        assert!(!s.dequeue("t", "x"));
        assert_eq!(s.queued_total, 0);
    }
}
