//! Job objects: lifecycle state machine, per-job event log, counters.

use mn_comm::{CancelToken, EngineSpec};
use monet::LearnerConfig;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Where a job is in its lifecycle.
///
/// ```text
/// Queued -> Running -> Done | Failed | Cancelled | Suspended
/// Suspended -> Queued (resume)      Queued/Suspended -> Cancelled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the tenant's FIFO for a worker.
    Queued,
    /// A worker is learning on it right now.
    Running,
    /// Stopped between engine events; checkpoints persist, resumable.
    Suspended,
    /// Terminally cancelled by the client (or server shutdown).
    Cancelled,
    /// Completed; the final network is available.
    Done,
    /// The learner failed; the error message is recorded.
    Failed,
}

impl JobState {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Cancelled => "cancelled",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Cancelled | JobState::Done | JobState::Failed
        )
    }
}

/// Cap on retained event-log lines per job. Watchers that fall more
/// than this far behind see a `dropped` count instead of old lines.
const EVENT_LOG_CAP: usize = 100_000;

struct EventLogInner {
    /// Retained lines; index of `lines[0]` in the full stream is
    /// `dropped`.
    lines: Vec<String>,
    /// Lines discarded off the front to honor [`EVENT_LOG_CAP`].
    dropped: usize,
    /// Set when the job reaches a terminal state: watchers drain and
    /// finish instead of blocking forever.
    closed: bool,
}

/// An append-only, bounded, multi-reader event log. Writers push
/// rendered JSON lines (telemetry deltas, lifecycle events); `watch`
/// connections replay from any offset and then block for more.
pub struct EventLog {
    inner: Mutex<EventLogInner>,
    cond: Condvar,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            inner: Mutex::new(EventLogInner {
                lines: Vec::new(),
                dropped: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }
}

impl EventLog {
    /// Append one line and wake all watchers.
    pub fn push(&self, line: String) {
        let mut inner = unpoison(self.inner.lock());
        if inner.closed {
            return;
        }
        inner.lines.push(line);
        if inner.lines.len() > EVENT_LOG_CAP {
            let excess = inner.lines.len() - EVENT_LOG_CAP;
            inner.lines.drain(..excess);
            inner.dropped += excess;
        }
        self.cond.notify_all();
    }

    /// Mark the stream finished and wake all watchers. Idempotent.
    pub fn close(&self) {
        let mut inner = unpoison(self.inner.lock());
        inner.closed = true;
        self.cond.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        unpoison(self.inner.lock()).closed
    }

    /// Total lines ever pushed (including dropped ones) — the offset
    /// one past the newest line.
    pub fn len(&self) -> usize {
        let inner = unpoison(self.inner.lock());
        inner.dropped + inner.lines.len()
    }

    /// Whether nothing has ever been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch lines from stream offset `from`, blocking up to `wait`
    /// for news when nothing is available yet.
    ///
    /// Returns `(next_offset, lines, closed)`. If `from` has already
    /// been dropped, delivery restarts at the oldest retained line
    /// (`next_offset` accounts for the skip). `closed` is only
    /// reported once the caller has drained everything.
    pub fn read_from(&self, from: usize, wait: Duration) -> (usize, Vec<String>, bool) {
        let mut inner = unpoison(self.inner.lock());
        loop {
            let oldest = inner.dropped;
            let newest = inner.dropped + inner.lines.len();
            let start = from.max(oldest);
            if start < newest {
                let lines = inner.lines[start - oldest..].to_vec();
                return (newest, lines, false);
            }
            if inner.closed {
                return (newest, Vec::new(), true);
            }
            let (guard, timeout) = unpoison(self.cond.wait_timeout(inner, wait));
            inner = guard;
            if timeout.timed_out() {
                let newest = inner.dropped + inner.lines.len();
                return (from.max(newest.min(from)), Vec::new(), false);
            }
        }
    }
}

/// Mutable job fields, guarded by [`Job::inner`].
pub struct JobInner {
    /// Engine to run on. Mutable: an elastic `resume` may change it.
    pub engine: EngineSpec,
    /// The full learner configuration the tenant submitted.
    pub config: LearnerConfig,
    /// Lifecycle state.
    pub state: JobState,
    /// The live run's cancellation token. `None` unless Running.
    /// Tokens latch, so every (re)start installs a fresh one.
    pub cancel: Option<CancelToken>,
    /// Exact `monet::output::to_json` string of the final network.
    /// Stored verbatim so `result` is byte-identical to the batch CLI.
    pub result_json: Option<String>,
    /// Failure message, when `state == Failed`.
    pub error: Option<String>,
    /// Deterministic engine counters from the last completed run
    /// segment, merged across suspend/resume segments.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock learning seconds charged to the tenant so far.
    pub busy_s: f64,
}

/// One submitted learn job.
pub struct Job {
    /// Server-assigned id, `job-<n>`.
    pub id: String,
    /// Owning tenant (the fairness and accounting domain).
    pub tenant: String,
    /// Name of the registered dataset this job learns from.
    pub dataset: String,
    /// Mutable state; lock order is always `Sched` before `Job`.
    pub inner: Mutex<JobInner>,
    /// Streamed progress: telemetry lines and lifecycle events.
    pub events: EventLog,
}

impl Job {
    /// A fresh queued job.
    pub fn new(
        id: String,
        tenant: String,
        dataset: String,
        engine: EngineSpec,
        config: LearnerConfig,
    ) -> Job {
        Job {
            id,
            tenant,
            dataset,
            inner: Mutex::new(JobInner {
                engine,
                config,
                state: JobState::Queued,
                cancel: None,
                result_json: None,
                error: None,
                counters: BTreeMap::new(),
                busy_s: 0.0,
            }),
            events: EventLog::default(),
        }
    }

    /// Lock and read the current state.
    pub fn state(&self) -> JobState {
        unpoison(self.inner.lock()).state
    }

    /// Push a lifecycle event line (same stream as telemetry, typed
    /// `"event"` so schema-gated consumers can tell them apart).
    pub fn push_event(&self, what: &str, detail: &str) {
        use serde::Content;
        let line = serde_json::to_string(&Content::Map(vec![
            ("type".into(), Content::Str("event".into())),
            ("job".into(), Content::Str(self.id.clone())),
            ("what".into(), Content::Str(what.into())),
            ("detail".into(), Content::Str(detail.into())),
        ]))
        .expect("event line serializes");
        self.events.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn event_log_replays_blocks_and_closes() {
        let log = Arc::new(EventLog::default());
        log.push("a".into());
        log.push("b".into());

        // Replay from 0.
        let (next, lines, closed) = log.read_from(0, Duration::from_millis(1));
        assert_eq!((next, closed), (2, false));
        assert_eq!(lines, vec!["a".to_string(), "b".to_string()]);

        // Nothing new yet: timed-out wait returns empty, not closed.
        let (_, lines, closed) = log.read_from(2, Duration::from_millis(1));
        assert!(lines.is_empty() && !closed);

        // A blocked reader is woken by a concurrent push.
        let log2 = Arc::clone(&log);
        let t = std::thread::spawn(move || log2.read_from(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        log.push("c".into());
        let (next, lines, closed) = t.join().unwrap();
        assert_eq!((next, closed), (3, false));
        assert_eq!(lines, vec!["c".to_string()]);

        // Close wakes waiters and reports closed once drained.
        log.close();
        let (_, lines, closed) = log.read_from(3, Duration::from_secs(5));
        assert!(lines.is_empty() && closed);
        // Pushes after close are ignored.
        log.push("late".into());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn event_log_drops_oldest_beyond_cap_and_reports_offsets() {
        let log = EventLog::default();
        for i in 0..(EVENT_LOG_CAP + 10) {
            log.push(format!("line-{i}"));
        }
        assert_eq!(log.len(), EVENT_LOG_CAP + 10);
        // Offset 0 was dropped: delivery restarts at the oldest
        // retained line, and next_offset still counts the full stream.
        let (next, lines, _) = log.read_from(0, Duration::from_millis(1));
        assert_eq!(next, EVENT_LOG_CAP + 10);
        assert_eq!(lines.len(), EVENT_LOG_CAP);
        assert_eq!(lines[0], "line-10");
    }

    #[test]
    fn job_states_label_and_terminality() {
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Suspended.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
    }
}
