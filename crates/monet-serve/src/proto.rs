//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line; every response is one line of JSON with an
//! `"ok"` boolean — `{"ok":true,...}` on success,
//! `{"ok":false,"error":{"kind":...,"msg":...}}` on a typed refusal.
//! `watch` is the one streaming op: the server emits the job's event
//! lines verbatim (each itself a JSON object), then a final
//! `{"ok":true,"done":true,...}` line.
//!
//! Hostile-input discipline mirrors the hardened `mn-comm` wire codec:
//! request lines are length-bounded *before* buffering ([`MAX_LINE`]),
//! a line that is not valid JSON gets a typed `bad-request` response
//! (never a panic), and a client that dies mid-line simply drops its
//! connection without disturbing the service.

use crate::error::ServeError;
use mn_comm::EngineSpec;
use monet::LearnerConfig;
use serde::{Content, Deserialize, Serialize};
use std::io::{self, BufRead};

/// Upper bound on one request line, bytes (newline included). A
/// protocol line is control-plane metadata plus one serialized
/// `LearnerConfig`; 1 MiB is orders of magnitude above any legitimate
/// request, and bounding *before* buffering means a hostile client
/// cannot balloon server memory with an endless unterminated line.
pub const MAX_LINE: usize = 1 << 20;

/// Read one `\n`-terminated line of at most [`MAX_LINE`] bytes.
///
/// * `Ok(Some(line))` — a complete line (terminator stripped);
/// * `Ok(None)` — clean EOF at a line boundary (client hung up);
/// * `Err(InvalidData)` — the line exceeded [`MAX_LINE`];
/// * any other `Err` — transport failure, including EOF mid-line (the
///   kill-the-client-mid-frame case surfaces as `UnexpectedEof`).
pub fn read_line_bounded<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        if line.len() + chunk > MAX_LINE {
            // Consume nothing further; the caller drops the connection
            // (there is no way to resynchronize an unbounded line).
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds {MAX_LINE} bytes"),
            ));
        }
        line.extend_from_slice(&buf[..chunk]);
        reader.consume(chunk);
        if done {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
    }
}

/// How a dataset is materialized server-side.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSpec {
    /// The deterministic synthetic generator: `yeast_like(n, m, seed)`
    /// — identical to the batch CLI's `--synthetic n,m --seed s`.
    Synthetic {
        /// Number of variables (genes).
        n: usize,
        /// Number of observations.
        m: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A TSV expression matrix readable from the server's filesystem.
    TsvPath(String),
}

/// One parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a dataset under `(tenant, dataset)`.
    Register {
        /// Owning tenant.
        tenant: String,
        /// Dataset name, unique per tenant.
        dataset: String,
        /// Where the data comes from.
        data: DataSpec,
    },
    /// Submit a learn job.
    Submit {
        /// Owning tenant (also the fairness domain).
        tenant: String,
        /// A dataset previously registered by this tenant.
        dataset: String,
        /// Engine to learn on.
        engine: EngineSpec,
        /// The complete learner configuration — serialized in full so
        /// a serve job is byte-identical to a batch run of the same
        /// config. Boxed: it dwarfs every other variant.
        config: Box<LearnerConfig>,
    },
    /// One-line job status.
    Status {
        /// Job id.
        job: String,
    },
    /// Stream the job's event log from an offset, then a `done` line.
    Watch {
        /// Job id.
        job: String,
        /// First event index to deliver (0 replays everything).
        from: usize,
    },
    /// Fetch the final network of a completed job.
    ResultOf {
        /// Job id.
        job: String,
    },
    /// Cancel a queued, running, or suspended job (terminal).
    Cancel {
        /// Job id.
        job: String,
    },
    /// Suspend a queued or running job after its current engine event;
    /// completed checkpoint units persist.
    Suspend {
        /// Job id.
        job: String,
    },
    /// Re-queue a suspended job, optionally on a different engine
    /// (elastic restart: the checkpoint is rank-count-independent).
    Resume {
        /// Job id.
        job: String,
        /// New engine, or `None` to keep the previous one.
        engine: Option<EngineSpec>,
    },
    /// Per-tenant accounting totals.
    Accounting {
        /// Restrict to one tenant, or all when `None`.
        tenant: Option<String>,
    },
    /// List jobs (optionally one tenant's).
    Jobs {
        /// Restrict to one tenant, or all when `None`.
        tenant: Option<String>,
    },
    /// Stop accepting work, cancel queued/running jobs, exit.
    Shutdown,
}

fn str_field(value: &Content, name: &str) -> Result<String, ServeError> {
    value
        .get(name)
        .and_then(Content::as_str)
        .map(str::to_string)
        .ok_or_else(|| ServeError::BadRequest(format!("missing string field {name:?}")))
}

fn opt_str_field(value: &Content, name: &str) -> Result<Option<String>, ServeError> {
    match value.get(name) {
        None | Some(Content::Null) => Ok(None),
        Some(c) => c
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ServeError::BadRequest(format!("field {name:?} must be a string"))),
    }
}

fn usize_field(value: &Content, name: &str) -> Result<usize, ServeError> {
    value
        .get(name)
        .and_then(Content::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| ServeError::BadRequest(format!("missing integer field {name:?}")))
}

/// Engines the worker pool can host in-process. The msg/proc engines
/// own the process-global fabric/supervisor machinery and are not
/// shareable across concurrent jobs.
fn serveable_engine(spec: &str) -> Result<EngineSpec, ServeError> {
    let engine: EngineSpec = spec
        .parse()
        .map_err(|e: String| ServeError::BadRequest(e))?;
    match engine {
        EngineSpec::Serial | EngineSpec::Threads(_) | EngineSpec::Sim(_) => Ok(engine),
        EngineSpec::Msg(_) | EngineSpec::Proc(_) => Err(ServeError::BadRequest(format!(
            "engine {spec:?} is not serveable; use serial | threads:<p> | sim:<p>"
        ))),
    }
}

impl Request {
    /// Parse one request line's JSON value. Every malformation is a
    /// typed `bad-request`.
    pub fn parse(value: &Content) -> Result<Request, ServeError> {
        let op = str_field(value, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "register" => {
                let tenant = str_field(value, "tenant")?;
                let dataset = str_field(value, "dataset")?;
                let data = if let Some(synth) = value.get("synthetic") {
                    DataSpec::Synthetic {
                        n: usize_field(synth, "n")?,
                        m: usize_field(synth, "m")?,
                        seed: synth.get("seed").and_then(Content::as_u64).unwrap_or(0),
                    }
                } else if let Some(path) = value.get("tsv_path").and_then(Content::as_str) {
                    DataSpec::TsvPath(path.to_string())
                } else {
                    return Err(ServeError::BadRequest(
                        "register needs \"synthetic\":{n,m,seed} or \"tsv_path\"".into(),
                    ));
                };
                Ok(Request::Register {
                    tenant,
                    dataset,
                    data,
                })
            }
            "submit" => {
                let tenant = str_field(value, "tenant")?;
                let dataset = str_field(value, "dataset")?;
                let engine = serveable_engine(
                    value
                        .get("engine")
                        .and_then(Content::as_str)
                        .unwrap_or("serial"),
                )?;
                let config_value = value
                    .get("config")
                    .ok_or_else(|| ServeError::BadRequest("missing \"config\"".into()))?;
                let config: LearnerConfig = Deserialize::deserialize_value(config_value)
                    .map_err(|e| ServeError::BadRequest(format!("config: {e}")))?;
                let config = config.validated().map_err(ServeError::BadRequest)?;
                Ok(Request::Submit {
                    tenant,
                    dataset,
                    engine,
                    config: Box::new(config),
                })
            }
            "status" => Ok(Request::Status {
                job: str_field(value, "job")?,
            }),
            "watch" => Ok(Request::Watch {
                job: str_field(value, "job")?,
                from: value.get("from").and_then(Content::as_u64).unwrap_or(0) as usize,
            }),
            "result" => Ok(Request::ResultOf {
                job: str_field(value, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: str_field(value, "job")?,
            }),
            "suspend" => Ok(Request::Suspend {
                job: str_field(value, "job")?,
            }),
            "resume" => {
                let engine = match opt_str_field(value, "engine")? {
                    Some(spec) => Some(serveable_engine(&spec)?),
                    None => None,
                };
                Ok(Request::Resume {
                    job: str_field(value, "job")?,
                    engine,
                })
            }
            "accounting" => Ok(Request::Accounting {
                tenant: opt_str_field(value, "tenant")?,
            }),
            "jobs" => Ok(Request::Jobs {
                tenant: opt_str_field(value, "tenant")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::BadRequest(format!("unknown op {other:?}"))),
        }
    }
}

/// Build a success response line from extra fields (after `"ok":true`).
pub fn ok_line(fields: Vec<(String, Content)>) -> String {
    let mut pairs = vec![("ok".to_string(), Content::Bool(true))];
    pairs.extend(fields);
    serde_json::to_string(&Content::Map(pairs)).expect("response serializes")
}

/// Build the typed error response line.
pub fn err_line(err: &ServeError) -> String {
    let mut pairs = vec![
        ("kind".into(), Content::Str(err.kind().into())),
        ("msg".into(), Content::Str(err.to_string())),
    ];
    // Backpressure is the one error clients react to programmatically
    // (back off and resubmit), so it carries structured fields too.
    if let ServeError::Backpressure { queued, limit } = err {
        pairs.push(("queued".into(), Content::U64(*queued as u64)));
        pairs.push(("limit".into(), Content::U64(*limit as u64)));
    }
    let body = Content::Map(pairs);
    serde_json::to_string(&Content::Map(vec![
        ("ok".into(), Content::Bool(false)),
        ("error".into(), body),
    ]))
    .expect("error response serializes")
}

/// Serialize a submit request for `(tenant, dataset, engine, config)`
/// — the client-side inverse of [`Request::parse`].
pub fn submit_line(
    tenant: &str,
    dataset: &str,
    engine: &str,
    config: &LearnerConfig,
) -> String {
    let req = Content::Map(vec![
        ("op".into(), Content::Str("submit".into())),
        ("tenant".into(), Content::Str(tenant.into())),
        ("dataset".into(), Content::Str(dataset.into())),
        ("engine".into(), Content::Str(engine.into())),
        ("config".into(), config.serialize_value()),
    ]);
    serde_json::to_string(&req).expect("request serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn bounded_reader_handles_eof_lines_and_bombs() {
        // Clean lines, then clean EOF.
        let mut r = BufReader::new(&b"a\nbb\r\n"[..]);
        assert_eq!(read_line_bounded(&mut r).unwrap(), Some("a".into()));
        assert_eq!(read_line_bounded(&mut r).unwrap(), Some("bb".into()));
        assert_eq!(read_line_bounded(&mut r).unwrap(), None);

        // Mid-line death: typed UnexpectedEof, not a hang or panic.
        let mut r = BufReader::new(&b"{\"op\":\"pi"[..]);
        let err = read_line_bounded(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // An unterminated line larger than MAX_LINE is rejected with
        // bounded memory, long before the payload is fully buffered.
        struct Endless;
        impl io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(b'x');
                Ok(buf.len())
            }
        }
        let mut r = BufReader::new(Endless);
        let err = read_line_bounded(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn submit_roundtrips_the_full_config() {
        let config = LearnerConfig::paper_minimum(41);
        let line = submit_line("t1", "d1", "threads:2", &config);
        let value: Content = serde_json::from_str(&line).unwrap();
        let req = Request::parse(&value).unwrap();
        match req {
            Request::Submit {
                tenant,
                dataset,
                engine,
                config: parsed,
            } => {
                assert_eq!((tenant.as_str(), dataset.as_str()), ("t1", "d1"));
                assert_eq!(engine, EngineSpec::Threads(2));
                assert_eq!(
                    serde_json::to_string(&*parsed).unwrap(),
                    serde_json::to_string(&config).unwrap(),
                    "config must survive the protocol byte-exactly"
                );
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_bad_requests() {
        for line in [
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"submit\",\"tenant\":\"t\"}",
            "{\"op\":\"register\",\"tenant\":\"t\",\"dataset\":\"d\"}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"dataset\":\"d\",\"engine\":\"msg:2\",\"config\":{}}",
        ] {
            let value: Content = serde_json::from_str(line).unwrap();
            let err = Request::parse(&value).unwrap_err();
            assert_eq!(err.kind(), "bad-request", "{line} -> {err}");
        }
    }

    #[test]
    fn response_lines_have_the_ok_discriminator() {
        let ok = ok_line(vec![("job".into(), Content::Str("job-1".into()))]);
        let v: Content = serde_json::from_str(&ok).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["job"].as_str(), Some("job-1"));

        let err = err_line(&ServeError::UnknownJob("j9".into()));
        let v: Content = serde_json::from_str(&err).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["kind"].as_str(), Some("unknown-job"));
        assert!(v["error"]["msg"].as_str().unwrap().contains("j9"));
    }
}
