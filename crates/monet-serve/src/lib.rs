//! # monet-serve — the long-lived module-network learning service
//!
//! ROADMAP item 1: a multi-tenant server wrapping the `monet` learner.
//! Clients connect over the proc transport's address space
//! (`unix:<path>` or `tcp:<host:port>`, see
//! [`mn_comm::msg::proc::ServiceListener`]) and speak a line-delimited
//! JSON protocol ([`proto`]): register datasets, submit learn jobs
//! carrying a full serialized [`monet::LearnerConfig`], stream live
//! progress, and manage job lifecycles.
//!
//! Architecture (DESIGN.md §16):
//!
//! * **Transport** — thread-per-connection over a blocking accept
//!   loop; no async runtime. One request line in, one response line
//!   out, except `watch`, which streams event lines before its final
//!   `done` response.
//! * **Scheduling** — submitted jobs enter a bounded admission queue
//!   (typed [`error::ServeError::Backpressure`] when full) and are
//!   drained by a fixed worker pool, fair FIFO-per-tenant: workers
//!   round-robin across tenants with queued work, FIFO within each
//!   tenant, so one chatty tenant cannot starve the others.
//! * **Cancellation** — each running job holds a
//!   [`mn_comm::CancelToken`] checked at every engine event (the same
//!   points fault injection uses), so `cancel` and `suspend` land
//!   between engine events, after the last completed checkpoint unit.
//! * **Checkpointing** — every job persists through the `monet`
//!   checkpoint store under its own `state_dir/jobs/<job-id>`
//!   directory (exclusive writer lock per directory); `suspend` then
//!   `resume` — optionally on a different engine or rank count
//!   (elastic) — continues after the last completed unit and learns
//!   the byte-identical network.
//! * **Telemetry** — each running job feeds a
//!   [`mn_obs::TelemetryHub`]; a pump thread renders the versioned
//!   JSONL telemetry lines into the job's event log, which any number
//!   of `watch` clients replay from any offset.
//! * **Accounting** — per-tenant totals (job outcomes, busy seconds,
//!   merged deterministic counters) queryable over the protocol.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod jobs;
pub mod proto;
pub mod server;

pub use client::Client;
pub use error::ServeError;
pub use jobs::{Job, JobState};
pub use proto::{Request, MAX_LINE};
pub use server::{Server, ServeConfig};
