//! A blocking protocol client, used by `monet client` and the e2e
//! tests.

use crate::error::ServeError;
use crate::proto::{self, MAX_LINE};
use mn_comm::msg::proc::{service_connect, ProcAddr, ServiceStream};
use monet::LearnerConfig;
use serde::Content;
use std::io::{self, BufReader, Write};
use std::time::Duration;

/// One connection to a `monet serve` process.
pub struct Client {
    reader: BufReader<ServiceStream>,
    writer: ServiceStream,
}

/// A response line, already checked for the `"ok"` discriminator.
#[derive(Debug)]
pub enum Reply {
    /// `{"ok":true,...}` — the full value for field access.
    Ok(Content),
    /// `{"ok":false,"error":{...}}` — decoded into the typed error.
    Err(ServeError),
}

impl Reply {
    /// Unwrap success or convert the typed error into `io::Error`
    /// (callers that don't branch on `kind`).
    pub fn into_result(self) -> io::Result<Content> {
        match self {
            Reply::Ok(value) => Ok(value),
            Reply::Err(err) => Err(io::Error::other(err)),
        }
    }
}

fn decode_error(value: &Content) -> ServeError {
    let kind = value["error"]["kind"].as_str().unwrap_or("internal");
    let msg = value["error"]["msg"].as_str().unwrap_or("").to_string();
    match kind {
        "backpressure" => ServeError::Backpressure {
            queued: value["error"]["queued"].as_u64().unwrap_or(0) as usize,
            limit: value["error"]["limit"].as_u64().unwrap_or(0) as usize,
        },
        "unknown-job" => ServeError::UnknownJob(msg),
        "unknown-dataset" => ServeError::UnknownDataset(msg),
        "bad-request" => ServeError::BadRequest(msg),
        "conflict" => ServeError::Conflict(msg),
        "shutting-down" => ServeError::ShuttingDown,
        _ => ServeError::Internal(msg),
    }
}

impl Client {
    /// Connect, retrying with backoff up to `timeout` (covers the gap
    /// between spawning a server and its listener coming up).
    pub fn connect(addr: &ProcAddr, timeout: Duration) -> io::Result<Client> {
        let stream = service_connect(addr, timeout)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw request line and read one response line. The
    /// public escape hatch: CI's corrupt-frame drill uses it to send
    /// deliberately malformed lines and assert on the typed refusal.
    pub fn raw(&mut self, line: &str) -> io::Result<Content> {
        self.send_line(line)?;
        self.read_value()
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        if line.len() + 1 > MAX_LINE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds {MAX_LINE} bytes"),
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_value(&mut self) -> io::Result<Content> {
        match proto::read_line_bounded(&mut self.reader)? {
            Some(line) => serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Send a request value, read the one response line, and decode
    /// the `ok` discriminator.
    pub fn rpc(&mut self, request: &Content) -> io::Result<Reply> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.send_line(&line)?;
        let value = self.read_value()?;
        Ok(if value["ok"].as_bool() == Some(true) {
            Reply::Ok(value)
        } else {
            Reply::Err(decode_error(&value))
        })
    }

    fn simple(&mut self, pairs: Vec<(String, Content)>) -> io::Result<Reply> {
        self.rpc(&Content::Map(pairs))
    }

    fn op(op: &str) -> (String, Content) {
        ("op".into(), Content::Str(op.into()))
    }

    fn str(name: &str, v: &str) -> (String, Content) {
        (name.into(), Content::Str(v.into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.simple(vec![Self::op("ping")])
    }

    /// Register a synthetic dataset.
    pub fn register_synthetic(
        &mut self,
        tenant: &str,
        dataset: &str,
        n: usize,
        m: usize,
        seed: u64,
    ) -> io::Result<Reply> {
        self.simple(vec![
            Self::op("register"),
            Self::str("tenant", tenant),
            Self::str("dataset", dataset),
            (
                "synthetic".into(),
                Content::Map(vec![
                    ("n".into(), Content::U64(n as u64)),
                    ("m".into(), Content::U64(m as u64)),
                    ("seed".into(), Content::U64(seed)),
                ]),
            ),
        ])
    }

    /// Register a TSV file readable by the server.
    pub fn register_tsv(&mut self, tenant: &str, dataset: &str, path: &str) -> io::Result<Reply> {
        self.simple(vec![
            Self::op("register"),
            Self::str("tenant", tenant),
            Self::str("dataset", dataset),
            Self::str("tsv_path", path),
        ])
    }

    /// Submit a learn job carrying the full serialized config;
    /// returns the job id on success.
    pub fn submit(
        &mut self,
        tenant: &str,
        dataset: &str,
        engine: &str,
        config: &LearnerConfig,
    ) -> io::Result<Reply> {
        let line = proto::submit_line(tenant, dataset, engine, config);
        self.send_line(&line)?;
        let value = self.read_value()?;
        Ok(if value["ok"].as_bool() == Some(true) {
            Reply::Ok(value)
        } else {
            Reply::Err(decode_error(&value))
        })
    }

    /// One-line job status.
    pub fn status(&mut self, job: &str) -> io::Result<Reply> {
        self.simple(vec![Self::op("status"), Self::str("job", job)])
    }

    /// Fetch the final network JSON (the exact batch-CLI bytes).
    pub fn result_of(&mut self, job: &str) -> io::Result<Reply> {
        self.simple(vec![Self::op("result"), Self::str("job", job)])
    }

    /// Cancel a job.
    pub fn cancel(&mut self, job: &str) -> io::Result<Reply> {
        self.simple(vec![Self::op("cancel"), Self::str("job", job)])
    }

    /// Suspend a job.
    pub fn suspend(&mut self, job: &str) -> io::Result<Reply> {
        self.simple(vec![Self::op("suspend"), Self::str("job", job)])
    }

    /// Resume a suspended job, optionally on a different engine.
    pub fn resume(&mut self, job: &str, engine: Option<&str>) -> io::Result<Reply> {
        let mut pairs = vec![Self::op("resume"), Self::str("job", job)];
        if let Some(engine) = engine {
            pairs.push(Self::str("engine", engine));
        }
        self.simple(pairs)
    }

    /// Per-tenant accounting totals.
    pub fn accounting(&mut self, tenant: Option<&str>) -> io::Result<Reply> {
        let mut pairs = vec![Self::op("accounting")];
        if let Some(tenant) = tenant {
            pairs.push(Self::str("tenant", tenant));
        }
        self.simple(pairs)
    }

    /// List jobs.
    pub fn jobs(&mut self, tenant: Option<&str>) -> io::Result<Reply> {
        let mut pairs = vec![Self::op("jobs")];
        if let Some(tenant) = tenant {
            pairs.push(Self::str("tenant", tenant));
        }
        self.simple(pairs)
    }

    /// Ask the server to stop; it cancels outstanding work and exits.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.simple(vec![Self::op("shutdown")])
    }

    /// Stream a job's event log from `from`, invoking `on_line` per
    /// event line, until the final `done` response (returned).
    pub fn watch<F: FnMut(&str)>(
        &mut self,
        job: &str,
        from: usize,
        mut on_line: F,
    ) -> io::Result<Content> {
        let line = serde_json::to_string(&Content::Map(vec![
            Self::op("watch"),
            Self::str("job", job),
            ("from".into(), Content::U64(from as u64)),
        ]))
        .expect("watch request serializes");
        self.send_line(&line)?;
        loop {
            let Some(line) = proto::read_line_bounded(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the watch stream",
                ));
            };
            let value: Content = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            match value["ok"].as_bool() {
                // The terminating response (ok:false is a refusal,
                // e.g. unknown job).
                Some(true) => return Ok(value),
                Some(false) => return Err(io::Error::other(decode_error(&value))),
                // An event line: telemetry or lifecycle.
                None => on_line(&line),
            }
        }
    }
}
