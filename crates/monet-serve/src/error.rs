//! Typed service errors, each with a stable wire `kind` string.

use std::fmt;

/// Everything the service can refuse to do, typed. Every variant maps
/// to a stable `kind` string carried in the error response, so clients
/// branch on `kind`, not on message prose.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is full; resubmit later.
    Backpressure {
        /// Jobs currently queued.
        queued: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// No job with this id.
    UnknownJob(String),
    /// No dataset registered under this (tenant, name).
    UnknownDataset(String),
    /// The request was structurally or semantically invalid.
    BadRequest(String),
    /// The request is valid but the job is in the wrong state for it
    /// (e.g. `result` before completion, `resume` of a running job).
    Conflict(String),
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// An internal failure the client did not cause.
    Internal(String),
}

impl ServeError {
    /// The stable wire discriminator for this error.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Backpressure { .. } => "backpressure",
            ServeError::UnknownJob(_) => "unknown-job",
            ServeError::UnknownDataset(_) => "unknown-dataset",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::Conflict(_) => "conflict",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { queued, limit } => write!(
                f,
                "admission queue full ({queued}/{limit} jobs queued); resubmit later"
            ),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            ServeError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Conflict(msg) => write!(f, "conflict: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_display_is_informative() {
        let e = ServeError::Backpressure {
            queued: 64,
            limit: 64,
        };
        assert_eq!(e.kind(), "backpressure");
        assert!(e.to_string().contains("64/64"));
        assert_eq!(ServeError::UnknownJob("j".into()).kind(), "unknown-job");
        assert_eq!(
            ServeError::UnknownDataset("d".into()).kind(),
            "unknown-dataset"
        );
        assert_eq!(ServeError::BadRequest("x".into()).kind(), "bad-request");
        assert_eq!(ServeError::Conflict("x".into()).kind(), "conflict");
        assert_eq!(ServeError::ShuttingDown.kind(), "shutting-down");
        assert_eq!(ServeError::Internal("x".into()).kind(), "internal");
    }
}
