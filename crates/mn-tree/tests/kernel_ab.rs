//! A/B determinism of the split-assignment execution paths: the
//! batched prefix-sum kernel and the naive per-candidate pass must
//! produce byte-identical serialized [`SplitAssignment`]s for every
//! engine, rank count, and scoring mode — and (on the simulated
//! machine) identical per-item work accounting, so all imbalance
//! figures are path-independent.

use mn_comm::{ParEngine, SerialEngine, SimEngine, ThreadEngine};
use mn_data::{synthetic, Dataset};
use mn_rand::MasterRng;
use mn_score::{ScoreMode, SplitScoring};
use mn_tree::{assign_splits, learn_module_trees, ModuleEnsemble, TreeParams};

fn setup() -> (Dataset, Vec<ModuleEnsemble>, MasterRng) {
    let d = synthetic::yeast_like(14, 18, 77).dataset;
    let master = MasterRng::new(13);
    let mut e = SerialEngine::new();
    let params = TreeParams::default();
    let ensembles = vec![
        learn_module_trees(&mut e, &d, &master, 0, &(0..5).collect::<Vec<_>>(), &params),
        learn_module_trees(&mut e, &d, &master, 1, &(5..10).collect::<Vec<_>>(), &params),
    ];
    (d, ensembles, master)
}

fn assignment_json<E: ParEngine>(
    engine: &mut E,
    d: &Dataset,
    master: &MasterRng,
    ensembles: &[ModuleEnsemble],
    scoring: SplitScoring,
    mode: ScoreMode,
) -> String {
    let parents: Vec<usize> = (0..d.n_vars()).collect();
    let params = TreeParams {
        split_scoring: scoring,
        mode,
        ..TreeParams::default()
    };
    let out = assign_splits(engine, d, master, ensembles, &parents, &params);
    serde_json::to_string(&out).expect("assignment serializes")
}

#[test]
fn kernel_matches_naive_byte_identically_across_engines_and_modes() {
    let (d, ensembles, master) = setup();
    for mode in [ScoreMode::Incremental, ScoreMode::Reference] {
        let reference = assignment_json(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            SplitScoring::Naive,
            mode,
        );
        // Serial kernel.
        assert_eq!(
            assignment_json(
                &mut SerialEngine::new(),
                &d,
                &master,
                &ensembles,
                SplitScoring::Kernel,
                mode
            ),
            reference,
            "serial kernel diverged ({mode:?})"
        );
        // Threaded kernel at several worker counts.
        for p in [2usize, 4] {
            assert_eq!(
                assignment_json(
                    &mut ThreadEngine::new(p),
                    &d,
                    &master,
                    &ensembles,
                    SplitScoring::Kernel,
                    mode
                ),
                reference,
                "thread kernel p={p} diverged ({mode:?})"
            );
        }
        // Simulated machine at rank counts that slice segments finely
        // (p=1024 makes most blocks smaller than a segment, so the
        // kernel constantly handles partial runs).
        for p in [1usize, 16, 1024] {
            assert_eq!(
                assignment_json(
                    &mut SimEngine::new(p),
                    &d,
                    &master,
                    &ensembles,
                    SplitScoring::Kernel,
                    mode
                ),
                reference,
                "sim kernel p={p} diverged ({mode:?})"
            );
        }
    }
}

#[test]
fn kernel_reports_identical_work_accounting() {
    // The kernel charges each item the same cost the naive path does
    // (exact pass + MC rounds), so the simulated-machine report —
    // busy times, imbalance, comm — is bit-identical between paths.
    let (d, ensembles, master) = setup();
    for p in [1usize, 16, 1024] {
        let mut ea = SimEngine::new(p);
        let mut eb = SimEngine::new(p);
        let a = assignment_json(
            &mut ea,
            &d,
            &master,
            &ensembles,
            SplitScoring::Naive,
            ScoreMode::Incremental,
        );
        let b = assignment_json(
            &mut eb,
            &d,
            &master,
            &ensembles,
            SplitScoring::Kernel,
            ScoreMode::Incremental,
        );
        assert_eq!(a, b);
        assert_eq!(ea.report(), eb.report(), "sim report diverged at p={p}");
    }
    // Serial work-unit totals agree as well.
    let mut ea = SerialEngine::new();
    let mut eb = SerialEngine::new();
    assignment_json(
        &mut ea,
        &d,
        &master,
        &ensembles,
        SplitScoring::Naive,
        ScoreMode::Incremental,
    );
    assignment_json(
        &mut eb,
        &d,
        &master,
        &ensembles,
        SplitScoring::Kernel,
        ScoreMode::Incremental,
    );
    assert_eq!(ea.work_units(), eb.work_units());
}
