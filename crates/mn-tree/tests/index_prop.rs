//! Property-based tests of the candidate-split index arithmetic: for
//! arbitrary tree-shape inventories, the flat-index mapping must be a
//! bijection consistent with the segment structure.

use mn_score::SuffStats;
use mn_tree::{ModuleEnsemble, RegTree, SplitIndex, TreeNode};
use proptest::prelude::*;

/// Build a chain-shaped tree with the given leaf sizes (each leaf gets
/// `size` observations; internal nodes merge left-to-right).
fn chain_tree(leaf_sizes: &[usize]) -> RegTree {
    assert!(!leaf_sizes.is_empty());
    let mut nodes = Vec::new();
    let mut next_obs = 0usize;
    let mut leaf_ids = Vec::new();
    for &size in leaf_sizes {
        let obs: Vec<usize> = (next_obs..next_obs + size).collect();
        next_obs += size;
        leaf_ids.push(nodes.len());
        nodes.push(TreeNode {
            obs,
            stats: SuffStats::empty(),
            left: None,
            right: None,
        });
    }
    let mut current = leaf_ids[0];
    for &leaf in &leaf_ids[1..] {
        let mut obs = nodes[current].obs.clone();
        obs.extend(nodes[leaf].obs.iter().copied());
        obs.sort_unstable();
        nodes.push(TreeNode {
            obs,
            stats: SuffStats::empty(),
            left: Some(current),
            right: Some(leaf),
        });
        current = nodes.len() - 1;
    }
    let tree = RegTree {
        root: nodes.len() - 1,
        nodes,
    };
    tree.validate();
    tree
}

fn ensembles_from(shapes: &[Vec<usize>]) -> Vec<ModuleEnsemble> {
    shapes
        .iter()
        .enumerate()
        .map(|(k, leaf_sizes)| ModuleEnsemble {
            module: k,
            vars: vec![k],
            trees: vec![chain_tree(leaf_sizes)],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_locate_is_a_bijection(
        shapes in prop::collection::vec(
            prop::collection::vec(1usize..5, 1..5),
            1..4,
        ),
        n_parents in 1usize..6,
    ) {
        let ensembles = ensembles_from(&shapes);
        let index = SplitIndex::build(&ensembles, n_parents);

        // Total = Σ over internal nodes of n_parents * |obs(N)|.
        let expected_total: usize = ensembles
            .iter()
            .flat_map(|e| &e.trees)
            .flat_map(|t| t.internal_nodes().into_iter().map(move |n| t.nodes[n].obs.len()))
            .map(|n_obs| n_parents * n_obs)
            .sum();
        prop_assert_eq!(index.total, expected_total);

        // Every flat index maps to a unique (node, parent, obs) triple
        // and back.
        let mut seen = std::collections::HashSet::new();
        for i in 0..index.total {
            let (pos, parent, obs) = index.locate(i);
            prop_assert!(parent < n_parents);
            prop_assert!(obs < index.nodes[pos].n_obs);
            let reconstructed =
                index.nodes[pos].base + parent * index.nodes[pos].n_obs + obs;
            prop_assert_eq!(reconstructed, i);
            prop_assert!(seen.insert((pos, parent, obs)));
        }

        // Segment boundaries agree with node ranges.
        let segments = index.segments();
        prop_assert_eq!(segments.n_items(), index.total);
        prop_assert_eq!(segments.n_segments(), index.nodes.len());
        for (i, seg) in segments.ids().enumerate() {
            let (pos, _, _) = index.locate(i);
            prop_assert_eq!(seg as usize, pos);
        }
        for (pos, entry) in index.nodes.iter().enumerate() {
            let span = n_parents * entry.n_obs;
            prop_assert_eq!(segments.range(pos), entry.base..entry.base + span);
        }
    }

    #[test]
    fn prop_chain_trees_validate(leaf_sizes in prop::collection::vec(1usize..6, 1..8)) {
        let tree = chain_tree(&leaf_sizes);
        prop_assert_eq!(tree.n_leaves(), leaf_sizes.len());
        let total: usize = leaf_sizes.iter().sum();
        prop_assert_eq!(tree.nodes[tree.root].obs.len(), total);
        if leaf_sizes.len() > 1 {
            prop_assert_eq!(tree.internal_nodes().len(), leaf_sizes.len() - 1);
        }
    }
}
