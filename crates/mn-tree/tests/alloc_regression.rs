//! Allocation regression for the steady-state split-assignment loop
//! (ISSUE 6 satellite 3): once a [`SplitContext`]'s arenas are warm,
//! repeated `assign_splits_in` calls must allocate only the O(nodes)
//! result structures — never per-candidate — and the allocation count
//! must be exactly reproducible call over call.
//!
//! Single test on purpose: the counting allocator is process-global,
//! so a second concurrent test would perturb the counts.

use mn_comm::SerialEngine;
use mn_data::synthetic;
use mn_rand::MasterRng;
use mn_tree::{assign_splits_in, learn_module_trees, SplitContext, TreeParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_split_assignment_does_not_allocate_per_candidate() {
    let d = synthetic::yeast_like(20, 30, 9).dataset;
    let master = MasterRng::new(4);
    let params = TreeParams::default();
    let mut engine = SerialEngine::new();
    let ensembles = vec![
        learn_module_trees(&mut engine, &d, &master, 0, &(0..10).collect::<Vec<_>>(), &params),
        learn_module_trees(&mut engine, &d, &master, 1, &(10..20).collect::<Vec<_>>(), &params),
    ];
    let parents: Vec<usize> = (0..d.n_vars()).collect();

    let mut ctx = SplitContext::new();
    let run = |ctx: &mut SplitContext| {
        let before = ALLOCS.load(Ordering::Relaxed);
        let out = assign_splits_in(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
            ctx,
        );
        (ALLOCS.load(Ordering::Relaxed) - before, out)
    };

    // First call warms the arenas (and may allocate freely).
    let (_, baseline) = run(&mut ctx);
    let total_candidates = baseline.index.total as u64;
    assert!(total_candidates > 1000, "setup too small to be meaningful");

    // Steady state: the allocation count is exactly reproducible...
    let (warm_a, out_a) = run(&mut ctx);
    let (warm_b, out_b) = run(&mut ctx);
    assert_eq!(out_a, baseline);
    assert_eq!(out_b, baseline);
    assert_eq!(
        warm_a, warm_b,
        "steady-state allocation count must be deterministic"
    );
    // ...and scales with nodes/results, not with the candidate list:
    // the per-candidate structures (membership masks, gather buffers,
    // MC lane staging, selection scratch) all live in the context.
    assert!(
        warm_a < total_candidates / 4,
        "warm call allocated {warm_a} times for {total_candidates} candidates — \
         a per-candidate allocation crept back into the hot loop"
    );
}
