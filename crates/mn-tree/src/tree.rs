//! Regression-tree structures (Algorithm 4).
//!
//! For a module `M_i`, an ensemble of binary regression trees is
//! learned: leaves are sampled observation clusters (GaneSH with the
//! variable cluster pinned to the module — `mn-gibbs`'s
//! `sample_obs_partitions`), then merged bottom-up by Bayesian
//! hierarchical agglomeration. Per Alg. 4 lines 10–18, merge
//! candidates are *consecutive* subtrees in the working list, their
//! merge scores are computed in a block-partitioned parallel loop, the
//! best pair (all-reduce max) is merged, and the loop repeats until a
//! single root holds all observations.

use crate::params::TreeParams;
use mn_comm::{Collective, ParEngine};
use mn_data::Dataset;
use mn_gibbs::{sample_obs_partitions, ObsPartition};
use mn_obs::counters;
use mn_rand::MasterRng;
use mn_score::{LnGammaTable, ScoreMode, SuffStats, COST_CELL, COST_LOGMARG};
use serde::{Deserialize, Serialize};

/// One node of a regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Sorted observation indices at this node.
    pub obs: Vec<usize>,
    /// Tile statistics of the module's variables over `obs`.
    pub stats: SuffStats,
    /// Children (internal nodes only). `left` was merged first; its
    /// leaves came earlier in slot order.
    pub left: Option<usize>,
    /// Right child.
    pub right: Option<usize>,
}

impl TreeNode {
    /// Whether the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none()
    }
}

/// A binary regression tree over the observations of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegTree {
    /// Node arena; leaves first (in observation-cluster slot order),
    /// internal nodes appended in merge order. The last node is the
    /// root.
    pub nodes: Vec<TreeNode>,
    /// Index of the root node.
    pub root: usize,
}

impl RegTree {
    /// Indices of internal (non-leaf) nodes, in arena order. Arena
    /// order is deterministic, so this ordering is part of the
    /// reproducibility contract for split assignment.
    pub fn internal_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].is_leaf())
            .collect()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn rec(tree: &RegTree, i: usize) -> usize {
            match (tree.nodes[i].left, tree.nodes[i].right) {
                (Some(l), Some(r)) => 1 + rec(tree, l).max(rec(tree, r)),
                _ => 1,
            }
        }
        rec(self, self.root)
    }

    /// Validate the structural invariants: the root covers all its
    /// leaves' observations, every internal node's observation list is
    /// the sorted union of its children's, and leaves partition the
    /// root's observations.
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty());
        assert_eq!(self.root, self.nodes.len() - 1, "root must be last");
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                node.obs.windows(2).all(|w| w[0] < w[1]),
                "node {i} obs not sorted/unique"
            );
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    assert!(l < i && r < i, "child indices must precede parent");
                    let mut merged: Vec<usize> = self.nodes[l]
                        .obs
                        .iter()
                        .chain(&self.nodes[r].obs)
                        .copied()
                        .collect();
                    merged.sort_unstable();
                    assert_eq!(merged, node.obs, "node {i} obs != union of children");
                }
                (None, None) => {}
                _ => panic!("node {i} has exactly one child"),
            }
        }
    }
}

/// Merge gain of two subtree roots, with the cost profile of `mode`.
///
/// The incremental path evaluates all three marginals through the
/// build's shared [`LnGammaTable`], which is pre-warmed in replicated
/// control flow before each merge round — so lookups here are
/// read-only (and bit-identical to direct Lanczos by construction).
fn merge_gain(
    data: &Dataset,
    vars: &[usize],
    a: &TreeNode,
    b: &TreeNode,
    params: &TreeParams,
    table: &LnGammaTable,
) -> (f64, u64) {
    match params.mode {
        ScoreMode::Incremental => (
            params.prior.log_merge_gain_with(&a.stats, &b.stats, table),
            3 * COST_LOGMARG,
        ),
        ScoreMode::Reference => {
            // From-scratch rebuild of all three blocks (Java profile).
            let sa = mn_score::tile_stats(data, vars, &a.obs);
            let sb = mn_score::tile_stats(data, vars, &b.obs);
            let merged = SuffStats::merged(&sa, &sb);
            let work = (vars.len() * (a.obs.len() + b.obs.len()) * 2) as u64 * COST_CELL
                + 3 * COST_LOGMARG;
            (
                params.prior.log_marginal(&merged)
                    - params.prior.log_marginal(&sa)
                    - params.prior.log_marginal(&sb),
                work,
            )
        }
    }
}

/// Build one regression tree from sampled observation clusters
/// (Alg. 4 lines 10–18).
///
/// `partition` supplies the leaves (active clusters in slot order,
/// with tile statistics over the module's variables already
/// maintained by the sampler).
pub fn build_tree<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    vars: &[usize],
    partition: &ObsPartition,
    params: &TreeParams,
) -> RegTree {
    // A fresh memo table per build keeps standalone callers simple;
    // ensemble learning shares one table across its trees (see
    // `learn_module_trees`).
    let table = LnGammaTable::new(params.prior.alpha0);
    build_tree_with(engine, data, vars, partition, params, &table)
}

/// [`build_tree`] against a caller-owned `ln Γ` memo table.
///
/// The table is scoped to the enclosing checkpoint unit (one
/// `learn_module_trees` call) — never wider — so a resumed run that
/// recomputes only some units observes exactly the counter deltas the
/// interrupted run recorded for them.
pub fn build_tree_with<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    vars: &[usize],
    partition: &ObsPartition,
    params: &TreeParams,
    table: &LnGammaTable,
) -> RegTree {
    let mut nodes: Vec<TreeNode> = partition
        .iter_active()
        .map(|(_, oc)| TreeNode {
            obs: oc.members.clone(),
            stats: oc.stats,
            left: None,
            right: None,
        })
        .collect();
    assert!(!nodes.is_empty(), "partition has no clusters");
    engine.count(counters::TREE_TREES, 1);
    // Working list of current subtree roots.
    let mut roots: Vec<usize> = (0..nodes.len()).collect();

    // Bayesian hierarchical agglomeration (Heller & Ghahramani 2005,
    // Michoel et al. 2007 — the methods Alg. 4 cites): repeatedly merge
    // the best-scoring *pair* of current subtree roots. The paper's
    // pseudo-code scores "consecutive trees" because its working list
    // is kept in merge order; evaluating all pairs is the referenced
    // algorithm and costs the same O(L²) per level at L = O(√m) leaves.
    while roots.len() > 1 {
        engine.count(counters::TREE_MERGES, 1);
        let k = roots.len();
        let n_pairs = k * (k - 1) / 2;
        if params.mode == ScoreMode::Incremental {
            // Pre-warm the memo through the largest possible merged
            // count (the two biggest roots), in replicated control
            // flow: the scoring map below then only ever read-locks
            // the table, and the fill/hit counts are engine- and
            // rank-count-independent. Each pair's gain performs three
            // table lookups (merged, left, right), all served from
            // the memo.
            let (mut m1, mut m2) = (0u64, 0u64);
            for &r in &roots {
                let c = nodes[r].stats.count();
                if c >= m1 {
                    m2 = m1;
                    m1 = c;
                } else if c > m2 {
                    m2 = c;
                }
            }
            let filled = table.warm((m1 + m2) as usize) as u64;
            engine.count(counters::SCORE_LN_GAMMA_CALLS, filled + 3 * n_pairs as u64);
            engine.count(counters::SCORE_LN_GAMMA_TABLE_HITS, 3 * n_pairs as u64);
        }
        let nodes_ref = &nodes;
        let roots_ref = &roots;
        // Map a flat pair index to (i, j), i < j, in lexicographic order.
        let unpack = move |mut idx: usize| -> (usize, usize) {
            for i in 0..k - 1 {
                let row = k - 1 - i;
                if idx < row {
                    return (i, i + 1 + idx);
                }
                idx -= row;
            }
            unreachable!("pair index out of range")
        };
        let gains: Vec<f64> = engine.dist_map(n_pairs, 1, &|p| {
            let (i, j) = unpack(p);
            merge_gain(
                data,
                vars,
                &nodes_ref[roots_ref[i]],
                &nodes_ref[roots_ref[j]],
                params,
                table,
            )
        });
        // Alg. 4 line 15: all-reduce max over the per-rank best scores.
        engine.collective(Collective::AllReduce, 2);
        let best = gains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty gains");
        let (bi, bj) = unpack(best);

        let l = roots[bi];
        let r = roots[bj];
        let mut obs: Vec<usize> = nodes[l].obs.iter().chain(&nodes[r].obs).copied().collect();
        obs.sort_unstable();
        let stats = SuffStats::merged(&nodes[l].stats, &nodes[r].stats);
        nodes.push(TreeNode {
            obs,
            stats,
            left: Some(l),
            right: Some(r),
        });
        let parent = nodes.len() - 1;
        roots[bi] = parent;
        roots.remove(bj);
    }
    // Alg. 4 line 18: bcast the final tree.
    engine.collective(Collective::Bcast, nodes.len() * 4);
    let root = nodes.len() - 1;
    let tree = RegTree { nodes, root };
    debug_assert!({
        tree.validate();
        true
    });
    tree
}

/// The learned tree ensemble of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleEnsemble {
    /// Module index within the module list.
    pub module: usize,
    /// Sorted variable members of the module.
    pub vars: Vec<usize>,
    /// The `R` regression trees (Alg. 4).
    pub trees: Vec<RegTree>,
}

/// Learn the regression-tree ensemble of one module (Algorithm 4):
/// sample `R = U − B` observation partitions with the constrained
/// GaneSH sampler, then build one tree per partition.
pub fn learn_module_trees<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    master: &MasterRng,
    module: usize,
    vars: &[usize],
    params: &TreeParams,
) -> ModuleEnsemble {
    let mut sorted = vars.to_vec();
    sorted.sort_unstable();
    engine.span_enter("module");
    engine.count(counters::TREE_MODULES, 1);
    let partitions = sample_obs_partitions(
        engine,
        data,
        master,
        module as u64,
        &sorted,
        params.update_steps,
        params.burn_in,
        params.prior,
        params.mode,
        params.candidate_scoring,
    );
    // One ln Γ memo per module call — the checkpoint unit. Merged-tile
    // sizes repeat heavily across the ensemble's trees (every tree
    // covers the same observations), so the table is hot from the
    // second tree on.
    let table = LnGammaTable::new(params.prior.alpha0);
    let trees = partitions
        .iter()
        .map(|part| build_tree_with(engine, data, &sorted, part, params, &table))
        .collect();
    engine.span_exit();
    ModuleEnsemble {
        module,
        vars: sorted,
        trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_comm::{SerialEngine, SimEngine, ThreadEngine};
    use mn_data::synthetic;

    fn setup() -> (Dataset, Vec<usize>) {
        let d = synthetic::yeast_like(12, 16, 31).dataset;
        (d, (0..6).collect())
    }

    fn partition(data: &Dataset, vars: &[usize]) -> ObsPartition {
        let master = MasterRng::new(8);
        let mut e = SerialEngine::new();
        sample_obs_partitions(
            &mut e,
            data,
            &master,
            0,
            vars,
            2,
            1,
            TreeParams::default().prior,
            ScoreMode::Incremental,
            mn_score::CandidateScoring::Kernel,
        )
        .pop()
        .unwrap()
    }

    #[test]
    fn tree_is_structurally_valid() {
        let (d, vars) = setup();
        let part = partition(&d, &vars);
        let mut e = SerialEngine::new();
        let tree = build_tree(&mut e, &d, &vars, &part, &TreeParams::default());
        tree.validate();
        assert_eq!(tree.nodes[tree.root].obs.len(), d.n_obs());
        assert_eq!(tree.n_leaves(), part.n_active());
        // A binary tree over L leaves has exactly L - 1 internal nodes.
        assert_eq!(tree.internal_nodes().len(), tree.n_leaves() - 1);
    }

    #[test]
    fn tree_identical_across_engines() {
        let (d, vars) = setup();
        let part = partition(&d, &vars);
        let p = TreeParams::default();
        let a = build_tree(&mut SerialEngine::new(), &d, &vars, &part, &p);
        let b = build_tree(&mut ThreadEngine::new(3), &d, &vars, &part, &p);
        let c = build_tree(&mut SimEngine::new(512), &d, &vars, &part, &p);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn modes_build_identical_trees() {
        let (d, vars) = setup();
        let part = partition(&d, &vars);
        let pi = TreeParams {
            mode: ScoreMode::Incremental,
            ..TreeParams::default()
        };
        let pr = TreeParams {
            mode: ScoreMode::Reference,
            ..TreeParams::default()
        };
        let a = build_tree(&mut SerialEngine::new(), &d, &vars, &part, &pi);
        let b = build_tree(&mut SerialEngine::new(), &d, &vars, &part, &pr);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_warm_table_builds_identical_trees() {
        // Reusing one memo table across builds (the ensemble steady
        // state) must not perturb any merge decision.
        let (d, vars) = setup();
        let part = partition(&d, &vars);
        let p = TreeParams::default();
        let fresh = build_tree(&mut SerialEngine::new(), &d, &vars, &part, &p);
        let table = LnGammaTable::new(p.prior.alpha0);
        for _ in 0..2 {
            let shared =
                build_tree_with(&mut SerialEngine::new(), &d, &vars, &part, &p, &table);
            assert_eq!(fresh, shared);
        }
        assert!(!table.is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let (d, vars) = setup();
        let mut part = ObsPartition::single_cluster(d.n_obs());
        part.rebuild_stats(&d, &vars);
        let mut e = SerialEngine::new();
        let tree = build_tree(&mut e, &d, &vars, &part, &TreeParams::default());
        tree.validate();
        assert_eq!(tree.n_leaves(), 1);
        assert!(tree.internal_nodes().is_empty());
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn ensemble_has_r_trees() {
        let (d, vars) = setup();
        let master = MasterRng::new(8);
        let mut e = SerialEngine::new();
        let p = TreeParams {
            update_steps: 4,
            burn_in: 1,
            ..TreeParams::default()
        };
        let ens = learn_module_trees(&mut e, &d, &master, 0, &vars, &p);
        assert_eq!(ens.trees.len(), 3);
        for t in &ens.trees {
            t.validate();
            assert_eq!(t.nodes[t.root].obs.len(), d.n_obs());
        }
        assert_eq!(ens.vars, vars);
    }

    #[test]
    fn similar_leaves_merge_first() {
        // Hand-built partition: clusters {0,1} and {2,3} have similar
        // means; {4,5} is far away. The first merge must join the two
        // similar clusters (adjacent in slot order).
        let d = Dataset::new(
            mn_data::Matrix::from_vec(
                1,
                6,
                vec![0.0, 0.1, 0.2, 0.3, 50.0, 50.1],
            ),
            None,
            None,
        );
        let vars = vec![0usize];
        let mut part = ObsPartition::single_cluster(6);
        part.rebuild_stats(&d, &vars);
        // Build the 3-cluster partition through the public move API.
        let col = |o: usize| mn_score::tile_stats(&d, &vars, &[o]);
        let s2 = part.move_obs(2, &col(2), None);
        part.move_obs(3, &col(3), Some(s2));
        let s4 = part.move_obs(4, &col(4), None);
        part.move_obs(5, &col(5), Some(s4));

        let mut e = SerialEngine::new();
        let tree = build_tree(&mut e, &d, &vars, &part, &TreeParams::default());
        tree.validate();
        // First internal node (index 3 after 3 leaves) merges leaves 0/1.
        let first_merge = &tree.nodes[3];
        assert_eq!(first_merge.obs, vec![0, 1, 2, 3]);
    }
}
