//! Parallel assignment of parent splits to tree nodes (Algorithm 5).
//!
//! This is the phase that dominates the paper's runtime (>90 % of
//! sequential time, §5.3.1) and whose data-dependent per-split cost is
//! the source of the load imbalance that caps scaling at large `p`.
//!
//! ## The candidate-split list
//!
//! For every module `M_i`, tree `T ∈ T(M_i)`, internal node `N`,
//! candidate parent `X_i ∈ P`, and observation `D_j ∈ obs(N)`, the
//! tuple `⟨M_i, T, N, X_i, D_j⟩` is a candidate split: "is `X_i`'s
//! value above or below its value in observation `D_j`?". Rather than
//! materializing the tuples (the paper's `cand-splits` list), we index
//! them arithmetically: [`SplitIndex`] stores one entry per node with
//! a base offset, so item `i` of the flat list maps to its tuple in
//! O(log #nodes). Tuples of one node are contiguous — the property the
//! paper relies on for the segmented-scan selection step — and the
//! flat list is block-partitioned over ranks for load balance.
//!
//! ## Split posteriors
//!
//! A split's quality is how well the predicate `X_i ≤ v` separates the
//! node's two children (the tree structure is already fixed). Per
//! §2.2.3 the posterior is "computed by sampling from a discrete
//! distribution" with at most `S` steps, and "the candidate splits
//! with zero posterior probability are discarded". Concretely (a
//! behavioural equivalent documented in DESIGN.md):
//!
//! 1. an exact pass over the node's observations computes the
//!    separation score `σ ∈ [-1, 1]` (fraction correctly separated
//!    minus fraction misclassified);
//! 2. a Monte-Carlo confirmation loop draws `s_eff = 1 +
//!    ⌊S·(1-|σ|)⌋` rounds, each examining `|obs(N)|` sampled
//!    observations (the O(m)-per-step cost the paper's O(Sm)-per-split
//!    bound states) — ambiguous splits need more sampling steps, which
//!    reproduces the paper's "time ... cannot be estimated a priori
//!    and varies significantly across splits" — and discards the split
//!    when the sampled estimate does not confirm the exact score's
//!    direction;
//! 3. the posterior weight is `|σ|` — a regression-tree child order is
//!    an artifact of the merge order, so a predicate that cleanly
//!    separates the children in *either* orientation is a good split.

use crate::params::TreeParams;
use crate::tree::ModuleEnsemble;
use mn_comm::{Collective, ParEngine, Segments};
use mn_data::Dataset;
use mn_obs::counters;
use mn_rand::{select_unif_rand, select_wtd_rand, Domain, Lcg128, MasterRng};
use mn_score::{ScoreMode, ScratchPool, SplitScoring, COST_CELL};
use serde::{Deserialize, Serialize};

/// One node's entry in the flat candidate-split index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeEntry {
    /// Module position in the ensemble list.
    pub module: usize,
    /// Tree position within the module's ensemble.
    pub tree: usize,
    /// Node index within the tree's arena.
    pub node: usize,
    /// Offset of this node's first candidate split in the flat list.
    pub base: usize,
    /// Observations at the node (`|obs(N)|`).
    pub n_obs: usize,
}

/// Arithmetic index over the global candidate-split list
/// (all modules × trees × internal nodes × parents × observations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitIndex {
    /// Per-node entries in (module, tree, node-arena) order.
    pub nodes: Vec<NodeEntry>,
    /// Number of candidate parents `|P|`.
    pub n_parents: usize,
    /// Total number of candidate splits.
    pub total: usize,
}

impl SplitIndex {
    /// Build the index for an ensemble list and `n_parents` candidate
    /// parents.
    pub fn build(ensembles: &[ModuleEnsemble], n_parents: usize) -> Self {
        let mut nodes = Vec::new();
        let mut base = 0usize;
        for (mi, ens) in ensembles.iter().enumerate() {
            for (ti, tree) in ens.trees.iter().enumerate() {
                for node in tree.internal_nodes() {
                    let n_obs = tree.nodes[node].obs.len();
                    nodes.push(NodeEntry {
                        module: mi,
                        tree: ti,
                        node,
                        base,
                        n_obs,
                    });
                    base += n_parents * n_obs;
                }
            }
        }
        Self {
            nodes,
            n_parents,
            total: base,
        }
    }

    /// Map flat item `i` to `(node-entry position, parent position,
    /// observation position within the node)`.
    pub fn locate(&self, i: usize) -> (usize, usize, usize) {
        debug_assert!(i < self.total);
        // Binary search for the node whose [base, base+span) contains i.
        let pos = self
            .nodes
            .partition_point(|e| e.base <= i)
            .checked_sub(1)
            .expect("item before first node");
        let entry = &self.nodes[pos];
        let within = i - entry.base;
        (pos, within / entry.n_obs, within % entry.n_obs)
    }

    /// The `(start, end)` item range of node-entry `pos`.
    pub fn node_range(&self, pos: usize) -> (usize, usize) {
        let entry = &self.nodes[pos];
        (entry.base, entry.base + self.n_parents * entry.n_obs)
    }

    /// The boundary structure of the flat list (segment = node entry),
    /// handed to the segmented engine maps for the partitioning
    /// ablation and the batched scoring kernel. O(#nodes) memory —
    /// per-item segment ids are never materialized.
    pub fn segments(&self) -> Segments {
        Segments::from_lens(self.nodes.iter().map(|entry| self.n_parents * entry.n_obs))
    }
}

/// A chosen split: parent variable, split value, and its posterior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChosenSplit {
    /// Candidate parent variable index (into the data set).
    pub var: usize,
    /// Split value (the parent's value in the chosen observation).
    pub value: f64,
    /// Posterior weight of the split (0 for discarded uniform picks).
    pub posterior: f64,
}

/// The splits chosen for one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSplits {
    /// Which node (index into `SplitIndex::nodes`).
    pub entry: usize,
    /// `J` splits chosen by posterior-weighted sampling (empty if every
    /// candidate at the node was discarded).
    pub weighted: Vec<ChosenSplit>,
    /// `J` splits chosen uniformly at random.
    pub uniform: Vec<ChosenSplit>,
}

/// Result of the split-assignment phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitAssignment {
    /// The index the posteriors refer to.
    pub index: SplitIndex,
    /// Chosen splits per node, in node-entry order.
    pub node_splits: Vec<NodeSplits>,
}

/// The left-child membership mask of a node: `mask[i]` is true iff
/// `node_obs[i]` appears in `left_obs`. Both observation lists are
/// maintained in sorted order by the tree builder — the
/// `binary_search` below silently returns garbage on unsorted input,
/// so the assumption is checked in debug builds.
fn left_membership_mask(node_obs: &[usize], left_obs: &[usize]) -> Vec<bool> {
    debug_assert!(
        node_obs.windows(2).all(|w| w[0] < w[1]),
        "node observation list must be sorted and duplicate-free"
    );
    debug_assert!(
        left_obs.windows(2).all(|w| w[0] < w[1]),
        "left-child observation list must be sorted and duplicate-free"
    );
    node_obs
        .iter()
        .map(|o| left_obs.binary_search(o).is_ok())
        .collect()
}

/// The separation score σ of the predicate `parent ≤ value` against a
/// node's two children. Exactly one pass over the node's observations;
/// `left_mask[i]` marks whether `node_obs[i]` belongs to the left child.
fn separation_score(row: &[f64], value: f64, node_obs: &[usize], left_mask: &[bool]) -> f64 {
    let total = node_obs.len();
    debug_assert!(total > 0);
    debug_assert_eq!(total, left_mask.len());
    let mut correct = 0usize;
    for (&o, &on_left) in node_obs.iter().zip(left_mask) {
        if (row[o] <= value) == on_left {
            correct += 1;
        }
    }
    (2.0 * correct as f64 - total as f64) / total as f64
}

/// Posterior of one candidate split, with work accounting — the naive
/// path: one exact separation pass per candidate.
///
/// Deterministic: the Monte-Carlo confirmation generator is keyed by
/// the flat item index (a cheap O(1)-construction `Lcg128`; millions
/// of per-item streams make a full ChaCha key schedule per item the
/// dominant cost otherwise), so every engine, rank count, and scoring
/// mode draws the same values.
#[allow(clippy::too_many_arguments)]
fn split_posterior(
    row: &[f64],
    seed: u64,
    params: &TreeParams,
    item: usize,
    value: f64,
    node_obs: &[usize],
    left_mask: &[bool],
) -> (f64, u64) {
    let sigma = separation_score(row, value, node_obs, left_mask);
    mc_confirm(row, seed, params, item, value, node_obs, left_mask, sigma)
}

/// The Monte-Carlo confirmation shared by the naive and the batched
/// kernel paths: given the exact separation score σ of a candidate
/// (however it was computed), draw `s_eff` sampling rounds from the
/// candidate's own PRNG stream and derive the posterior. The reported
/// work includes the exact pass (`n` cells) so that per-item
/// accounting — and therefore every simulated-imbalance figure — is
/// identical between the two paths.
#[allow(clippy::too_many_arguments)]
fn mc_confirm(
    row: &[f64],
    seed: u64,
    params: &TreeParams,
    item: usize,
    value: f64,
    node_obs: &[usize],
    left_mask: &[bool],
    sigma: f64,
) -> (f64, u64) {
    let n = node_obs.len();
    let s_eff = 1 + (params.max_sampling_steps as f64 * (1.0 - sigma.abs())).floor() as usize;

    // Monte-Carlo confirmation: sample chunks of observations and check
    // the predicate against child membership; a split whose sampled
    // estimate is not positive has zero posterior (§2.2.3's discard).
    let mut rng = Lcg128::from_key(seed, Domain::SplitPosterior.tag(), item as u64);
    let mut agree: i64 = 0;
    let mut work = n as u64 * COST_CELL; // the exact pass
    for _ in 0..s_eff {
        // One O(m) sampling step: examine |obs(N)| sampled observations.
        for _ in 0..n {
            let pick = rng.index_one_draw(n);
            let consistent = (row[node_obs[pick]] <= value) == left_mask[pick];
            agree += if consistent { 1 } else { -1 };
        }
        if params.mode == ScoreMode::Reference {
            // The Java cost profile: no caching of the exact pass — the
            // reference implementation re-materializes the node's value
            // list (per-candidate object churn) and re-derives the
            // separation score every sampling round.
            let values: Vec<f64> = node_obs.iter().map(|&o| row[o]).collect();
            std::hint::black_box(&values);
            std::hint::black_box(separation_score(row, value, node_obs, left_mask));
            work += 2 * n as u64 * COST_CELL;
        }
    }
    work += (s_eff * n) as u64 * COST_CELL;
    // Orientation-free quality: the MC estimate must agree with the
    // exact score's direction, otherwise the split is discarded
    // (§2.2.3's zero-posterior discard).
    let confirmed = agree != 0 && (agree > 0) == (sigma > 0.0);
    let posterior = if confirmed { sigma.abs() } else { 0.0 };
    (posterior, work)
}

/// Compute posteriors for the full candidate list and choose `J`
/// weighted plus `J` uniform splits per node (Algorithm 5).
///
/// `candidate_parents` is the paper's `P` (§5.1 uses all variables).
pub fn assign_splits<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    master: &MasterRng,
    ensembles: &[ModuleEnsemble],
    candidate_parents: &[usize],
    params: &TreeParams,
) -> SplitAssignment {
    let index = SplitIndex::build(ensembles, candidate_parents.len());
    let segments = index.segments();

    engine.span_enter("assign-splits");
    engine.count(counters::SPLITS_SCORED, index.total as u64);
    engine.count(counters::SPLITS_NODES, index.nodes.len() as u64);
    engine.count(
        match params.split_scoring {
            SplitScoring::Naive => counters::SPLITS_NAIVE_DISPATCHES,
            SplitScoring::Kernel => counters::SPLITS_KERNEL_DISPATCHES,
        },
        1,
    );

    // Precompute each node's left-child membership mask so the hot
    // per-split loops test membership in O(1).
    let left_masks: Vec<Vec<bool>> = index
        .nodes
        .iter()
        .map(|entry| {
            let tree = &ensembles[entry.module].trees[entry.tree];
            let node = &tree.nodes[entry.node];
            let left = &tree.nodes[node.left.expect("internal node")].obs;
            left_membership_mask(&node.obs, left)
        })
        .collect();

    // Lines 6–7: block-partitioned posterior computation over the flat
    // candidate list — the phase whose imbalance the paper measures.
    // Both execution paths produce bit-identical posteriors and report
    // identical per-item costs; the kernel amortizes the exact
    // separation pass over each (node, parent) run it is handed.
    let index_ref = &index;
    let left_masks_ref = &left_masks;
    let seed = master.seed();
    engine.span_enter("score-splits");
    let posteriors: Vec<f64> = match params.split_scoring {
        SplitScoring::Naive => engine.dist_map_segmented(&segments, 1, &|item| {
            let (pos, parent_pos, obs_pos) = index_ref.locate(item);
            let entry = &index_ref.nodes[pos];
            let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
            let var = candidate_parents[parent_pos];
            let row = data.values(var);
            let value = row[node.obs[obs_pos]];
            split_posterior(
                row,
                seed,
                params,
                item,
                value,
                &node.obs,
                &left_masks_ref[pos],
            )
        }),
        SplitScoring::Kernel => {
            let pool = ScratchPool::new();
            engine.dist_map_segmented_batch(&segments, 1, &|pos, range, out| {
                let entry = &index_ref.nodes[pos];
                let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
                let mask = &left_masks_ref[pos];
                let n = entry.n_obs;
                let mut scratch = pool.acquire();
                // The range may start or end mid-run when a block
                // boundary bisects the segment; each overlapped
                // (node, parent) run still needs the full sorted pass
                // (a candidate's σ depends on all of the node's
                // observations), after which only the owned items are
                // emitted.
                let first_parent = (range.start - entry.base) / n;
                let last_parent = (range.end - 1 - entry.base) / n;
                for (off, &var) in candidate_parents[first_parent..=last_parent]
                    .iter()
                    .enumerate()
                {
                    let run_start = entry.base + (first_parent + off) * n;
                    let lo = range.start.max(run_start);
                    let hi = range.end.min(run_start + n);
                    let row = data.values(var);
                    let sigmas = scratch.compute(row, &node.obs, mask);
                    for item in lo..hi {
                        let obs_pos = item - run_start;
                        let value = row[node.obs[obs_pos]];
                        out.push(mc_confirm(
                            row,
                            seed,
                            params,
                            item,
                            value,
                            &node.obs,
                            mask,
                            sigmas[obs_pos],
                        ));
                    }
                }
            })
        }
    };

    engine.span_exit(); // score-splits

    // Segmented-scan + local selection + all-gather (§3.2.3's
    // implementation note). The scan's payload is one word per item;
    // the gather carries 3 words per chosen split.
    engine.span_enter("select-splits");
    engine.collective(Collective::Scan, 1);

    let j = params.splits_per_node;
    let mut node_splits = Vec::with_capacity(index.nodes.len());
    for pos in 0..index.nodes.len() {
        let (start, end) = index.node_range(pos);
        let weights = &posteriors[start..end];
        let entry = &index.nodes[pos];
        let resolve = |within: usize, posterior: f64| -> ChosenSplit {
            let parent_pos = within / entry.n_obs;
            let obs_pos = within % entry.n_obs;
            let var = candidate_parents[parent_pos];
            let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
            ChosenSplit {
                var,
                value: data.values(var)[node.obs[obs_pos]],
                posterior,
            }
        };

        let mut wstream = master.stream(Domain::SplitSelectWeighted, pos as u64);
        let total_weight: f64 = weights.iter().sum();
        let weighted: Vec<ChosenSplit> = if total_weight > 0.0 {
            (0..j)
                .map(|_| {
                    let within = select_wtd_rand(&mut wstream, weights);
                    resolve(within, weights[within])
                })
                .collect()
        } else {
            // Every candidate was discarded: the node gets no weighted
            // splits (Alg. 5 keeps only positive-posterior splits).
            Vec::new()
        };

        let mut ustream = master.stream(Domain::SplitSelectUniform, pos as u64);
        let uniform: Vec<ChosenSplit> = (0..j)
            .map(|_| {
                let within = select_unif_rand(&mut ustream, weights.len());
                resolve(within, weights[within])
            })
            .collect();

        node_splits.push(NodeSplits {
            entry: pos,
            weighted,
            uniform,
        });
    }
    engine.collective(
        Collective::AllGather,
        node_splits.len() * j * 2 * 3,
    );
    engine.span_exit(); // select-splits
    engine.span_exit(); // assign-splits

    SplitAssignment { index, node_splits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::learn_module_trees;
    use mn_comm::{SerialEngine, SimEngine, ThreadEngine};
    use mn_data::synthetic;

    fn setup() -> (Dataset, Vec<ModuleEnsemble>, MasterRng) {
        let d = synthetic::yeast_like(14, 18, 77).dataset;
        let master = MasterRng::new(13);
        let mut e = SerialEngine::new();
        let params = TreeParams::default();
        let ensembles = vec![
            learn_module_trees(&mut e, &d, &master, 0, &(0..5).collect::<Vec<_>>(), &params),
            learn_module_trees(&mut e, &d, &master, 1, &(5..10).collect::<Vec<_>>(), &params),
        ];
        (d, ensembles, master)
    }

    #[test]
    fn index_is_contiguous_and_locatable() {
        let (_, ensembles, _) = setup();
        let index = SplitIndex::build(&ensembles, 14);
        assert!(index.total > 0);
        // Every item locates into a consistent node range.
        for i in (0..index.total).step_by(7) {
            let (pos, parent_pos, obs_pos) = index.locate(i);
            let (start, end) = index.node_range(pos);
            assert!(i >= start && i < end);
            assert!(parent_pos < 14);
            assert!(obs_pos < index.nodes[pos].n_obs);
            // Reconstruct the flat index.
            assert_eq!(
                start + parent_pos * index.nodes[pos].n_obs + obs_pos,
                i
            );
        }
        // Ranges tile [0, total).
        let mut cursor = 0;
        for pos in 0..index.nodes.len() {
            let (start, end) = index.node_range(pos);
            assert_eq!(start, cursor);
            cursor = end;
        }
        assert_eq!(cursor, index.total);
    }

    #[test]
    fn segments_match_node_ranges() {
        let (_, ensembles, _) = setup();
        let index = SplitIndex::build(&ensembles, 3);
        let segments = index.segments();
        assert_eq!(segments.n_items(), index.total);
        assert_eq!(segments.n_segments(), index.nodes.len());
        for (i, segment) in segments.ids().enumerate() {
            let (pos, _, _) = index.locate(i);
            assert_eq!(segment as usize, pos);
        }
        // Boundary structure matches the node ranges exactly.
        for pos in 0..index.nodes.len() {
            let (start, end) = index.node_range(pos);
            assert_eq!(segments.range(pos), start..end);
        }
    }

    #[test]
    fn left_membership_mask_marks_members() {
        assert_eq!(
            left_membership_mask(&[1, 4, 7, 9], &[4, 9]),
            vec![false, true, false, true]
        );
        assert_eq!(left_membership_mask(&[2, 3], &[]), vec![false, false]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "must be sorted")]
    fn left_membership_mask_rejects_unsorted_input() {
        left_membership_mask(&[5, 1, 3], &[1]);
    }

    #[test]
    fn separation_score_limits() {
        let row = [0.0, 1.0, 2.0, 3.0];
        let obs = [0usize, 1, 2, 3];
        // Perfect split: left = low values.
        assert_eq!(
            separation_score(&row, 1.5, &obs, &[true, true, false, false]),
            1.0
        );
        // Anti-perfect.
        assert_eq!(
            separation_score(&row, 1.5, &obs, &[false, false, true, true]),
            -1.0
        );
        // Useless value (everything on one side): half correct.
        assert_eq!(
            separation_score(&row, 10.0, &obs, &[true, true, false, false]),
            0.0
        );
    }

    #[test]
    fn assignment_is_deterministic_across_engines() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let params = TreeParams::default();
        let a = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        let b = assign_splits(
            &mut ThreadEngine::new(4),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        let c = assign_splits(
            &mut SimEngine::new(1024),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn modes_choose_identical_splits() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let pi = TreeParams {
            mode: ScoreMode::Incremental,
            ..TreeParams::default()
        };
        let pr = TreeParams {
            mode: ScoreMode::Reference,
            ..TreeParams::default()
        };
        let a = assign_splits(&mut SerialEngine::new(), &d, &master, &ensembles, &parents, &pi);
        let b = assign_splits(&mut SerialEngine::new(), &d, &master, &ensembles, &parents, &pr);
        assert_eq!(a.node_splits, b.node_splits);
    }

    #[test]
    fn reference_mode_costs_more() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let pi = TreeParams {
            mode: ScoreMode::Incremental,
            ..TreeParams::default()
        };
        let pr = TreeParams {
            mode: ScoreMode::Reference,
            ..TreeParams::default()
        };
        let mut ei = SerialEngine::new();
        let mut er = SerialEngine::new();
        assign_splits(&mut ei, &d, &master, &ensembles, &parents, &pi);
        assign_splits(&mut er, &d, &master, &ensembles, &parents, &pr);
        assert!(
            er.work_units() as f64 > 1.8 * ei.work_units() as f64,
            "reference {} vs incremental {}",
            er.work_units(),
            ei.work_units()
        );
    }

    #[test]
    fn chosen_splits_have_valid_fields() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let params = TreeParams::default();
        let out = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        assert_eq!(out.node_splits.len(), out.index.nodes.len());
        for ns in &out.node_splits {
            assert!(ns.weighted.len() == params.splits_per_node || ns.weighted.is_empty());
            assert_eq!(ns.uniform.len(), params.splits_per_node);
            for s in ns.weighted.iter().chain(&ns.uniform) {
                assert!(s.var < d.n_vars());
                assert!(s.value.is_finite());
                assert!(s.posterior >= 0.0 && s.posterior <= 1.0);
            }
            // Weighted picks always carry positive posterior.
            for s in &ns.weighted {
                assert!(s.posterior > 0.0);
            }
        }
    }

    #[test]
    fn planted_regulator_wins_on_engineered_node() {
        // Engineer a module whose two children are exactly separated by
        // variable 0's values: candidate splits on variable 0 must get
        // high posteriors and dominate the weighted picks.
        let n_obs = 20;
        let mut values = vec![0.0; 2 * n_obs];
        for o in 0..n_obs {
            values[o] = if o < 10 { -1.0 } else { 1.0 }; // regulator
            values[n_obs + o] = if o < 10 { -2.0 } else { 2.0 }; // member
        }
        let d = Dataset::new(mn_data::Matrix::from_vec(2, n_obs, values), None, None);
        let master = MasterRng::new(3);
        let mut e = SerialEngine::new();
        let params = TreeParams {
            splits_per_node: 4,
            ..TreeParams::default()
        };
        let ens = learn_module_trees(&mut e, &d, &master, 0, &[1], &params);
        let parents = vec![0usize];
        let out = assign_splits(&mut e, &d, &master, &[ens], &parents, &params);
        // At least one node has weighted splits, and all name var 0.
        let any_weighted = out
            .node_splits
            .iter()
            .flat_map(|ns| &ns.weighted)
            .collect::<Vec<_>>();
        assert!(!any_weighted.is_empty());
        assert!(any_weighted.iter().all(|s| s.var == 0));
    }
}
