//! Parallel assignment of parent splits to tree nodes (Algorithm 5).
//!
//! This is the phase that dominates the paper's runtime (>90 % of
//! sequential time, §5.3.1) and whose data-dependent per-split cost is
//! the source of the load imbalance that caps scaling at large `p`.
//!
//! ## The candidate-split list
//!
//! For every module `M_i`, tree `T ∈ T(M_i)`, internal node `N`,
//! candidate parent `X_i ∈ P`, and observation `D_j ∈ obs(N)`, the
//! tuple `⟨M_i, T, N, X_i, D_j⟩` is a candidate split: "is `X_i`'s
//! value above or below its value in observation `D_j`?". Rather than
//! materializing the tuples (the paper's `cand-splits` list), we index
//! them arithmetically: [`SplitIndex`] stores one entry per node with
//! a base offset, so item `i` of the flat list maps to its tuple in
//! O(log #nodes). Tuples of one node are contiguous — the property the
//! paper relies on for the segmented-scan selection step — and the
//! flat list is block-partitioned over ranks for load balance.
//!
//! ## Split posteriors
//!
//! A split's quality is how well the predicate `X_i ≤ v` separates the
//! node's two children (the tree structure is already fixed). Per
//! §2.2.3 the posterior is "computed by sampling from a discrete
//! distribution" with at most `S` steps, and "the candidate splits
//! with zero posterior probability are discarded". Concretely (a
//! behavioural equivalent documented in DESIGN.md):
//!
//! 1. an exact pass over the node's observations computes the
//!    separation score `σ ∈ [-1, 1]` (fraction correctly separated
//!    minus fraction misclassified);
//! 2. a Monte-Carlo confirmation loop draws `s_eff = 1 +
//!    ⌊S·(1-|σ|)⌋` rounds, each examining `|obs(N)|` sampled
//!    observations (the O(m)-per-step cost the paper's O(Sm)-per-split
//!    bound states) — ambiguous splits need more sampling steps, which
//!    reproduces the paper's "time ... cannot be estimated a priori
//!    and varies significantly across splits" — and discards the split
//!    when the sampled estimate does not confirm the exact score's
//!    direction;
//! 3. the posterior weight is `|σ|` — a regression-tree child order is
//!    an artifact of the merge order, so a predicate that cleanly
//!    separates the children in *either* orientation is a good split.

use crate::mc_kernel;
use crate::params::TreeParams;
use crate::tree::ModuleEnsemble;
use mn_comm::{Collective, ParEngine, Segments};
use mn_data::Dataset;
use mn_obs::counters;
use mn_rand::{select_unif_rand, select_wtd_rand_batch, Domain, Lcg128, MasterRng};
use mn_score::{ScoreMode, ScratchPool, SplitScoring, SplitScratch, COST_CELL};
use serde::{Deserialize, Serialize};

/// One node's entry in the flat candidate-split index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeEntry {
    /// Module position in the ensemble list.
    pub module: usize,
    /// Tree position within the module's ensemble.
    pub tree: usize,
    /// Node index within the tree's arena.
    pub node: usize,
    /// Offset of this node's first candidate split in the flat list.
    pub base: usize,
    /// Observations at the node (`|obs(N)|`).
    pub n_obs: usize,
}

/// Arithmetic index over the global candidate-split list
/// (all modules × trees × internal nodes × parents × observations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitIndex {
    /// Per-node entries in (module, tree, node-arena) order.
    pub nodes: Vec<NodeEntry>,
    /// Number of candidate parents `|P|`.
    pub n_parents: usize,
    /// Total number of candidate splits.
    pub total: usize,
}

impl SplitIndex {
    /// Build the index for an ensemble list and `n_parents` candidate
    /// parents.
    pub fn build(ensembles: &[ModuleEnsemble], n_parents: usize) -> Self {
        let mut nodes = Vec::new();
        let mut base = 0usize;
        for (mi, ens) in ensembles.iter().enumerate() {
            for (ti, tree) in ens.trees.iter().enumerate() {
                for node in tree.internal_nodes() {
                    let n_obs = tree.nodes[node].obs.len();
                    nodes.push(NodeEntry {
                        module: mi,
                        tree: ti,
                        node,
                        base,
                        n_obs,
                    });
                    base += n_parents * n_obs;
                }
            }
        }
        Self {
            nodes,
            n_parents,
            total: base,
        }
    }

    /// Map flat item `i` to `(node-entry position, parent position,
    /// observation position within the node)`.
    pub fn locate(&self, i: usize) -> (usize, usize, usize) {
        debug_assert!(i < self.total);
        // Binary search for the node whose [base, base+span) contains i.
        let pos = self
            .nodes
            .partition_point(|e| e.base <= i)
            .checked_sub(1)
            .expect("item before first node");
        let entry = &self.nodes[pos];
        let within = i - entry.base;
        (pos, within / entry.n_obs, within % entry.n_obs)
    }

    /// The `(start, end)` item range of node-entry `pos`.
    pub fn node_range(&self, pos: usize) -> (usize, usize) {
        let entry = &self.nodes[pos];
        (entry.base, entry.base + self.n_parents * entry.n_obs)
    }

    /// The boundary structure of the flat list (segment = node entry),
    /// handed to the segmented engine maps for the partitioning
    /// ablation and the batched scoring kernel. O(#nodes) memory —
    /// per-item segment ids are never materialized.
    pub fn segments(&self) -> Segments {
        Segments::from_lens(self.nodes.iter().map(|entry| self.n_parents * entry.n_obs))
    }
}

/// A chosen split: parent variable, split value, and its posterior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChosenSplit {
    /// Candidate parent variable index (into the data set).
    pub var: usize,
    /// Split value (the parent's value in the chosen observation).
    pub value: f64,
    /// Posterior weight of the split (0 for discarded uniform picks).
    pub posterior: f64,
}

/// The splits chosen for one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSplits {
    /// Which node (index into `SplitIndex::nodes`).
    pub entry: usize,
    /// `J` splits chosen by posterior-weighted sampling (empty if every
    /// candidate at the node was discarded).
    pub weighted: Vec<ChosenSplit>,
    /// `J` splits chosen uniformly at random.
    pub uniform: Vec<ChosenSplit>,
}

/// Result of the split-assignment phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitAssignment {
    /// The index the posteriors refer to.
    pub index: SplitIndex,
    /// Chosen splits per node, in node-entry order.
    pub node_splits: Vec<NodeSplits>,
}

/// Read-only view of one node's bit-packed left-membership mask:
/// bit `i` is set iff `node_obs[i]` belongs to the node's left child.
///
/// The masks of all nodes live contiguously in one arena
/// ([`SplitContext`]), replacing the per-node `Vec<Vec<bool>>` the
/// phase used to allocate on every call.
#[derive(Debug, Clone, Copy)]
struct Bits<'a> {
    words: &'a [u64],
}

impl Bits<'_> {
    #[inline]
    fn get(self, i: usize) -> bool {
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// The whole mask of a small node (`n ≤ 64`) as one word.
    #[inline]
    fn small(self) -> u64 {
        self.words[0]
    }
}

/// Append a node's bit-packed left-membership mask to the arena. Both
/// observation lists are maintained in sorted order by the tree
/// builder — the `binary_search` below silently returns garbage on
/// unsorted input, so the assumption is checked in debug builds.
fn push_left_membership_mask(node_obs: &[usize], left_obs: &[usize], words: &mut Vec<u64>) {
    debug_assert!(
        node_obs.windows(2).all(|w| w[0] < w[1]),
        "node observation list must be sorted and duplicate-free"
    );
    debug_assert!(
        left_obs.windows(2).all(|w| w[0] < w[1]),
        "left-child observation list must be sorted and duplicate-free"
    );
    let base = words.len();
    words.resize(base + node_obs.len().div_ceil(64).max(1), 0);
    for (i, o) in node_obs.iter().enumerate() {
        if left_obs.binary_search(o).is_ok() {
            words[base + (i >> 6)] |= 1u64 << (i & 63);
        }
    }
}

/// The separation score σ of the predicate `parent ≤ value` against a
/// node's two children. Exactly one pass over the node's observations;
/// bit `i` of `mask` marks whether `node_obs[i]` belongs to the left
/// child.
fn separation_score(row: &[f64], value: f64, node_obs: &[usize], mask: Bits<'_>) -> f64 {
    let total = node_obs.len();
    debug_assert!(total > 0);
    let mut correct = 0usize;
    for (i, &o) in node_obs.iter().enumerate() {
        if (row[o] <= value) == mask.get(i) {
            correct += 1;
        }
    }
    (2.0 * correct as f64 - total as f64) / total as f64
}

/// Posterior of one candidate split, with work accounting — the naive
/// path: one exact separation pass per candidate.
///
/// Deterministic: the Monte-Carlo confirmation generator is keyed by
/// the flat item index (a cheap O(1)-construction `Lcg128`; millions
/// of per-item streams make a full ChaCha key schedule per item the
/// dominant cost otherwise), so every engine, rank count, and scoring
/// mode draws the same values.
#[allow(clippy::too_many_arguments)]
fn split_posterior(
    row: &[f64],
    seed: u64,
    params: &TreeParams,
    item: usize,
    value: f64,
    node_obs: &[usize],
    mask: Bits<'_>,
) -> (f64, u64) {
    let sigma = separation_score(row, value, node_obs, mask);
    let mut gather = Vec::new();
    mc_confirm(
        row, seed, params, item, value, node_obs, mask, sigma, &mut gather,
    )
}

/// The Monte-Carlo confirmation shared by the naive and the batched
/// kernel paths: given the exact separation score σ of a candidate
/// (however it was computed), draw `s_eff` sampling rounds from the
/// candidate's own PRNG stream and derive the posterior. The reported
/// work includes the exact pass (`n` cells) so that per-item
/// accounting — and therefore every simulated-imbalance figure — is
/// identical between the two paths.
#[allow(clippy::too_many_arguments)]
fn mc_confirm(
    row: &[f64],
    seed: u64,
    params: &TreeParams,
    item: usize,
    value: f64,
    node_obs: &[usize],
    mask: Bits<'_>,
    sigma: f64,
    gather: &mut Vec<f64>,
) -> (f64, u64) {
    let n = node_obs.len();
    let s_eff = 1 + (params.max_sampling_steps as f64 * (1.0 - sigma.abs())).floor() as usize;

    // Monte-Carlo confirmation: sample chunks of observations and check
    // the predicate against child membership; a split whose sampled
    // estimate is not positive has zero posterior (§2.2.3's discard).
    let mut rng = Lcg128::from_key(seed, Domain::SplitPosterior.tag(), item as u64);
    let mut agree: i64 = 0;
    let mut work = n as u64 * COST_CELL; // the exact pass
    for _ in 0..s_eff {
        // One O(m) sampling step: examine |obs(N)| sampled observations.
        for _ in 0..n {
            let pick = rng.index_one_draw(n);
            let consistent = (row[node_obs[pick]] <= value) == mask.get(pick);
            agree += if consistent { 1 } else { -1 };
        }
        if params.mode == ScoreMode::Reference {
            // The Java cost profile: no caching of the exact pass — the
            // reference implementation re-materializes the node's value
            // list and re-derives the separation score every sampling
            // round. The gather lands in a reusable arena buffer; the
            // per-round work charge (the actual cost model) is
            // unchanged.
            gather.clear();
            gather.extend(node_obs.iter().map(|&o| row[o]));
            std::hint::black_box(&*gather);
            std::hint::black_box(separation_score(row, value, node_obs, mask));
            work += 2 * n as u64 * COST_CELL;
        }
    }
    work += (s_eff * n) as u64 * COST_CELL;
    // Orientation-free quality: the MC estimate must agree with the
    // exact score's direction, otherwise the split is discarded
    // (§2.2.3's zero-posterior discard).
    let confirmed = agree != 0 && (agree > 0) == (sigma > 0.0);
    let posterior = if confirmed { sigma.abs() } else { 0.0 };
    (posterior, work)
}

/// One `s_eff` class of Monte-Carlo survivors: every lane in a bucket
/// draws the same number of rounds, so the bucket maps directly onto
/// fixed-trip SIMD lane groups.
#[derive(Debug, Default)]
struct McBucket {
    /// Initial per-item LCG states.
    states: Vec<u128>,
    /// Per-observation consistency masks.
    cons: Vec<u64>,
    /// Range-relative result indices.
    rel: Vec<u32>,
    /// Exact separation scores (the posterior magnitude if confirmed).
    sigma: Vec<f64>,
}

/// Per-worker scratch for the batched scoring kernel: the sort/scan
/// buffers of [`SplitScratch`] plus the result staging and SIMD lane
/// buffers of the fused Monte-Carlo path. Pooled in a [`ScratchPool`]
/// so the steady-state scoring loop performs no allocation.
#[derive(Debug, Default)]
struct SegScratch {
    split: SplitScratch,
    /// Unpacked membership mask for wide nodes (`n > 64`).
    bools: Vec<bool>,
    /// Per-item `(posterior, work)` results for the covered range.
    res: Vec<(f64, u64)>,
    /// Monte-Carlo survivors bucketed by `s_eff` in one pass
    /// (`buckets[se - 1]` holds the `s_eff = se` class, item order
    /// preserved within each bucket).
    buckets: Vec<McBucket>,
    hits: Vec<u64>,
    /// Reference-mode per-round value gather.
    gather: Vec<f64>,
}

/// Reusable state of the split-assignment phase: the scoring scratch
/// pool, the bit-packed membership-mask arena, and the selection
/// buffers. Create one per learner run (or benchmark) and pass it to
/// [`assign_splits_in`]; after the first call warms the arenas, the
/// steady-state phase allocates nothing.
///
/// The context holds no clustering-dependent state — every buffer is
/// cleared or overwritten before use — so reusing it across calls,
/// sweeps, and GaneSH runs cannot change any result.
#[derive(Debug, Default)]
pub struct SplitContext {
    pool: ScratchPool<SegScratch>,
    mask_words: Vec<u64>,
    mask_offsets: Vec<usize>,
    sel_scratch: Vec<(f64, usize)>,
    sel_out: Vec<usize>,
}

impl SplitContext {
    /// A fresh context with cold arenas.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute posteriors for the full candidate list and choose `J`
/// weighted plus `J` uniform splits per node (Algorithm 5).
///
/// `candidate_parents` is the paper's `P` (§5.1 uses all variables).
/// Convenience wrapper over [`assign_splits_in`] with a fresh
/// [`SplitContext`]; callers invoking the phase repeatedly should hold
/// a context of their own to keep the arenas warm.
pub fn assign_splits<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    master: &MasterRng,
    ensembles: &[ModuleEnsemble],
    candidate_parents: &[usize],
    params: &TreeParams,
) -> SplitAssignment {
    let mut ctx = SplitContext::new();
    assign_splits_in(
        engine,
        data,
        master,
        ensembles,
        candidate_parents,
        params,
        &mut ctx,
    )
}

/// [`assign_splits`] against caller-owned scratch arenas.
pub fn assign_splits_in<E: ParEngine>(
    engine: &mut E,
    data: &Dataset,
    master: &MasterRng,
    ensembles: &[ModuleEnsemble],
    candidate_parents: &[usize],
    params: &TreeParams,
    ctx: &mut SplitContext,
) -> SplitAssignment {
    let index = SplitIndex::build(ensembles, candidate_parents.len());
    let segments = index.segments();

    engine.span_enter("assign-splits");
    engine.count(counters::SPLITS_SCORED, index.total as u64);
    engine.count(counters::SPLITS_NODES, index.nodes.len() as u64);
    engine.count(
        match params.split_scoring {
            SplitScoring::Naive => counters::SPLITS_NAIVE_DISPATCHES,
            SplitScoring::Kernel => counters::SPLITS_KERNEL_DISPATCHES,
        },
        1,
    );
    // Arena reuse made observable. Actual pool handoffs depend on
    // thread scheduling, so the counter records the canonical
    // scheduling-independent quantity: every segment after the first
    // scores into buffers a previous segment already warmed.
    let scratch_reuses = index.nodes.len().saturating_sub(1) as u64;
    if params.split_scoring == SplitScoring::Kernel && scratch_reuses > 0 {
        engine.count(counters::SCORE_SCRATCH_REUSES, scratch_reuses);
    }

    // Precompute each node's left-child membership mask, bit-packed
    // into one contiguous arena, so the hot per-split loops test
    // membership in O(1) without any per-node allocation.
    ctx.mask_words.clear();
    ctx.mask_offsets.clear();
    ctx.mask_offsets.push(0);
    for entry in &index.nodes {
        let tree = &ensembles[entry.module].trees[entry.tree];
        let node = &tree.nodes[entry.node];
        let left = &tree.nodes[node.left.expect("internal node")].obs;
        push_left_membership_mask(&node.obs, left, &mut ctx.mask_words);
        ctx.mask_offsets.push(ctx.mask_words.len());
    }

    // Lines 6–7: block-partitioned posterior computation over the flat
    // candidate list — the phase whose imbalance the paper measures.
    // Both execution paths produce bit-identical posteriors and report
    // identical per-item costs; the kernel amortizes the exact
    // separation pass over each (node, parent) run it is handed and,
    // for small nodes, batches the Monte-Carlo confirmation draws
    // through a vectorized replay of the same per-item generators.
    let index_ref = &index;
    let mask_words: &[u64] = &ctx.mask_words;
    let mask_offsets: &[usize] = &ctx.mask_offsets;
    let node_mask = |pos: usize| Bits {
        words: &mask_words[mask_offsets[pos]..mask_offsets[pos + 1]],
    };
    let seed = master.seed();
    engine.span_enter("score-splits");
    let posteriors: Vec<f64> = match params.split_scoring {
        SplitScoring::Naive => engine.dist_map_segmented(&segments, 1, &|item| {
            let (pos, parent_pos, obs_pos) = index_ref.locate(item);
            let entry = &index_ref.nodes[pos];
            let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
            let var = candidate_parents[parent_pos];
            let row = data.values(var);
            let value = row[node.obs[obs_pos]];
            split_posterior(row, seed, params, item, value, &node.obs, node_mask(pos))
        }),
        SplitScoring::Kernel => {
            let pool = &ctx.pool;
            engine.dist_map_segmented_batch(&segments, 1, &|pos, range, out| {
                let entry = &index_ref.nodes[pos];
                let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
                let mask = node_mask(pos);
                let n = entry.n_obs;
                let mut guard = pool.acquire();
                let sc = &mut *guard;
                // The range may start or end mid-run when a block
                // boundary bisects the segment; each overlapped
                // (node, parent) run still needs the full sorted pass
                // (a candidate's σ depends on all of the node's
                // observations), after which only the owned items are
                // emitted.
                let first_parent = (range.start - entry.base) / n;
                let last_parent = (range.end - 1 - entry.base) / n;
                if params.mode == ScoreMode::Incremental && n <= 64 {
                    score_range_fast(
                        sc,
                        data,
                        seed,
                        params,
                        entry,
                        &node.obs,
                        mask,
                        candidate_parents,
                        &range,
                        first_parent,
                        last_parent,
                    );
                    out.extend_from_slice(&sc.res);
                } else {
                    sc.bools.clear();
                    sc.bools.extend((0..n).map(|i| mask.get(i)));
                    for (off, &var) in candidate_parents[first_parent..=last_parent]
                        .iter()
                        .enumerate()
                    {
                        let run_start = entry.base + (first_parent + off) * n;
                        let lo = range.start.max(run_start);
                        let hi = range.end.min(run_start + n);
                        let row = data.values(var);
                        let sigmas = sc.split.compute(row, &node.obs, &sc.bools);
                        for item in lo..hi {
                            let obs_pos = item - run_start;
                            let value = row[node.obs[obs_pos]];
                            out.push(mc_confirm(
                                row,
                                seed,
                                params,
                                item,
                                value,
                                &node.obs,
                                mask,
                                sigmas[obs_pos],
                                &mut sc.gather,
                            ));
                        }
                    }
                }
            })
        }
    };

    engine.span_exit(); // score-splits

    // Segmented-scan + local selection + all-gather (§3.2.3's
    // implementation note). The scan's payload is one word per item;
    // the gather carries 3 words per chosen split.
    engine.span_enter("select-splits");
    engine.collective(Collective::Scan, 1);

    let j = params.splits_per_node;
    let sel_scratch = &mut ctx.sel_scratch;
    let sel_out = &mut ctx.sel_out;
    let mut node_splits = Vec::with_capacity(index.nodes.len());
    for pos in 0..index.nodes.len() {
        let (start, end) = index.node_range(pos);
        let weights = &posteriors[start..end];
        let entry = &index.nodes[pos];
        let resolve = |within: usize, posterior: f64| -> ChosenSplit {
            let parent_pos = within / entry.n_obs;
            let obs_pos = within % entry.n_obs;
            let var = candidate_parents[parent_pos];
            let node = &ensembles[entry.module].trees[entry.tree].nodes[entry.node];
            ChosenSplit {
                var,
                value: data.values(var)[node.obs[obs_pos]],
                posterior,
            }
        };

        let mut wstream = master.stream(Domain::SplitSelectWeighted, pos as u64);
        let total_weight: f64 = weights.iter().sum();
        let weighted: Vec<ChosenSplit> = if total_weight > 0.0 {
            // Fused selection: all J targets are drawn up front (in
            // stream order) and served by ONE merged prefix walk over
            // the node's posteriors instead of J independent walks —
            // same draws, same picks, a J-fold cheaper scan.
            select_wtd_rand_batch(&mut wstream, weights, j, sel_scratch, sel_out);
            sel_out
                .iter()
                .map(|&within| resolve(within, weights[within]))
                .collect()
        } else {
            // Every candidate was discarded: the node gets no weighted
            // splits (Alg. 5 keeps only positive-posterior splits).
            Vec::new()
        };

        let mut ustream = master.stream(Domain::SplitSelectUniform, pos as u64);
        let uniform: Vec<ChosenSplit> = (0..j)
            .map(|_| {
                let within = select_unif_rand(&mut ustream, weights.len());
                resolve(within, weights[within])
            })
            .collect();

        node_splits.push(NodeSplits {
            entry: pos,
            weighted,
            uniform,
        });
    }
    engine.collective(
        Collective::AllGather,
        node_splits.len() * j * 2 * 3,
    );
    engine.span_exit(); // select-splits
    engine.span_exit(); // assign-splits

    // Imbalance-feedback point (§5.3.1): split scoring is the phase
    // whose cost "cannot be estimated a priori", so after each
    // selection round the engine may re-evaluate its partitioning for
    // the next one. Posteriors are item-ordered and selection streams
    // node-keyed, so a re-partition cannot change any chosen split.
    engine.partition_feedback();

    SplitAssignment { index, node_splits }
}

/// The fast Monte-Carlo path for small nodes (`n ≤ 64`, Incremental
/// mode): score `range` of node `entry` into `sc.res`.
///
/// Bit-identical to the scalar path by construction:
///
/// * the exact pass is [`SplitScratch::compute_small`], whose σ values
///   are the same f64 expressions as [`separation_score`] and whose
///   consistency masks encode exactly the scalar predicate
///   `(row[node_obs[pick]] <= value) == left(pick)`;
/// * `σ == 0` ⇒ the confirmation can only yield posterior `0.0`
///   (`confirmed` multiplies `|σ| = 0`), and `|σ| == 1` ⇒ the mask is
///   all-ones/all-zeros so every draw agrees and the posterior is
///   `1.0` — both shortcuts skip draws safely because each item owns a
///   private keyed generator (no shared stream to keep in step);
/// * the remaining items replay their own `Lcg128` streams inside
///   [`mc_kernel::mc_hits`], which is verified draw-for-draw against
///   [`Lcg128`] (and the IFMA engine lane-for-lane against the scalar
///   engine) in `mc_kernel`'s tests.
///
/// Work accounting is the same closed form the scalar path charges:
/// `(n + s_eff·n) · COST_CELL` per item.
#[allow(clippy::too_many_arguments)]
fn score_range_fast(
    sc: &mut SegScratch,
    data: &Dataset,
    seed: u64,
    params: &TreeParams,
    entry: &NodeEntry,
    node_obs: &[usize],
    mask: Bits<'_>,
    candidate_parents: &[usize],
    range: &std::ops::Range<usize>,
    first_parent: usize,
    last_parent: usize,
) {
    let n = entry.n_obs;
    sc.res.clear();
    sc.res.resize(range.end - range.start, (0.0, 0));
    // MC items have 0 < |σ| < 1, hence s_eff ∈ [1, S]; the max(1)
    // keeps one bucket alive for S = 0 (where s_eff is pinned to 1).
    let n_buckets = (params.max_sampling_steps).max(1);
    sc.buckets.resize_with(n_buckets, McBucket::default);
    for b in &mut sc.buckets[..n_buckets] {
        b.states.clear();
        b.cons.clear();
        b.rel.clear();
        b.sigma.clear();
    }
    let s = params.max_sampling_steps as f64;
    for (off, &var) in candidate_parents[first_parent..=last_parent]
        .iter()
        .enumerate()
    {
        let run_start = entry.base + (first_parent + off) * n;
        let lo = range.start.max(run_start);
        let hi = range.end.min(run_start + n);
        let row = data.values(var);
        let (sigmas, cons) = sc.split.compute_small(row, node_obs, mask.small());
        for item in lo..hi {
            let obs_pos = item - run_start;
            let sigma = sigmas[obs_pos];
            let s_eff = 1 + (s * (1.0 - sigma.abs())).floor() as usize;
            let work = (n + s_eff * n) as u64 * COST_CELL;
            let rel = item - range.start;
            if sigma == 0.0 {
                // Unconfirmable: posterior would be |σ| = 0 whether or
                // not the draws agree.
                sc.res[rel] = (0.0, work);
            } else if sigma.abs() == 1.0 {
                // Every observation satisfies (or violates) the
                // predicate, so every draw agrees with σ's direction.
                sc.res[rel] = (1.0, work);
            } else {
                // Bucket by s_eff in this same pass, so every lane of
                // a SIMD batch draws the same number of rounds.
                sc.res[rel] = (0.0, work);
                let b = &mut sc.buckets[s_eff - 1];
                b.states.push(
                    Lcg128::from_key(seed, Domain::SplitPosterior.tag(), item as u64).state(),
                );
                b.cons.push(cons[obs_pos]);
                b.rel.push(rel as u32);
                b.sigma.push(sigma);
            }
        }
    }
    for (bi, b) in sc.buckets[..n_buckets].iter().enumerate() {
        if b.states.is_empty() {
            continue;
        }
        let t = (bi + 1) * n;
        mc_kernel::mc_hits(&b.states, &b.cons, n, t, &mut sc.hits);
        for l in 0..b.rel.len() {
            let agree = 2 * sc.hits[l] as i64 - t as i64;
            let sigma = b.sigma[l];
            if agree != 0 && (agree > 0) == (sigma > 0.0) {
                sc.res[b.rel[l] as usize].0 = sigma.abs();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::learn_module_trees;
    use mn_comm::{SerialEngine, SimEngine, ThreadEngine};
    use mn_data::synthetic;

    fn setup() -> (Dataset, Vec<ModuleEnsemble>, MasterRng) {
        let d = synthetic::yeast_like(14, 18, 77).dataset;
        let master = MasterRng::new(13);
        let mut e = SerialEngine::new();
        let params = TreeParams::default();
        let ensembles = vec![
            learn_module_trees(&mut e, &d, &master, 0, &(0..5).collect::<Vec<_>>(), &params),
            learn_module_trees(&mut e, &d, &master, 1, &(5..10).collect::<Vec<_>>(), &params),
        ];
        (d, ensembles, master)
    }

    #[test]
    fn index_is_contiguous_and_locatable() {
        let (_, ensembles, _) = setup();
        let index = SplitIndex::build(&ensembles, 14);
        assert!(index.total > 0);
        // Every item locates into a consistent node range.
        for i in (0..index.total).step_by(7) {
            let (pos, parent_pos, obs_pos) = index.locate(i);
            let (start, end) = index.node_range(pos);
            assert!(i >= start && i < end);
            assert!(parent_pos < 14);
            assert!(obs_pos < index.nodes[pos].n_obs);
            // Reconstruct the flat index.
            assert_eq!(
                start + parent_pos * index.nodes[pos].n_obs + obs_pos,
                i
            );
        }
        // Ranges tile [0, total).
        let mut cursor = 0;
        for pos in 0..index.nodes.len() {
            let (start, end) = index.node_range(pos);
            assert_eq!(start, cursor);
            cursor = end;
        }
        assert_eq!(cursor, index.total);
    }

    #[test]
    fn segments_match_node_ranges() {
        let (_, ensembles, _) = setup();
        let index = SplitIndex::build(&ensembles, 3);
        let segments = index.segments();
        assert_eq!(segments.n_items(), index.total);
        assert_eq!(segments.n_segments(), index.nodes.len());
        for (i, segment) in segments.ids().enumerate() {
            let (pos, _, _) = index.locate(i);
            assert_eq!(segment as usize, pos);
        }
        // Boundary structure matches the node ranges exactly.
        for pos in 0..index.nodes.len() {
            let (start, end) = index.node_range(pos);
            assert_eq!(segments.range(pos), start..end);
        }
    }

    #[test]
    fn membership_mask_marks_members() {
        let mut words = Vec::new();
        push_left_membership_mask(&[1, 4, 7, 9], &[4, 9], &mut words);
        let mask = Bits { words: &words };
        assert!(!mask.get(0) && mask.get(1) && !mask.get(2) && mask.get(3));
        assert_eq!(mask.small(), 0b1010);
        // A second node appends after the first without disturbing it.
        let base = words.len();
        push_left_membership_mask(&[2, 3], &[], &mut words);
        assert_eq!(&words[base..], &[0]);
        assert_eq!(Bits { words: &words[..base] }.small(), 0b1010);
        // Wide nodes span multiple words.
        let wide_obs: Vec<usize> = (0..70).collect();
        let wide_left: Vec<usize> = vec![0, 63, 64, 69];
        let mut wide = Vec::new();
        push_left_membership_mask(&wide_obs, &wide_left, &mut wide);
        assert_eq!(wide.len(), 2);
        let wmask = Bits { words: &wide };
        for i in 0..70 {
            assert_eq!(wmask.get(i), wide_left.contains(&i), "bit {i}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "must be sorted")]
    fn membership_mask_rejects_unsorted_input() {
        push_left_membership_mask(&[5, 1, 3], &[1], &mut Vec::new());
    }

    #[test]
    fn separation_score_limits() {
        let row = [0.0, 1.0, 2.0, 3.0];
        let obs = [0usize, 1, 2, 3];
        // Perfect split: left = low values (bits 0 and 1 set).
        assert_eq!(
            separation_score(&row, 1.5, &obs, Bits { words: &[0b0011] }),
            1.0
        );
        // Anti-perfect.
        assert_eq!(
            separation_score(&row, 1.5, &obs, Bits { words: &[0b1100] }),
            -1.0
        );
        // Useless value (everything on one side): half correct.
        assert_eq!(
            separation_score(&row, 10.0, &obs, Bits { words: &[0b0011] }),
            0.0
        );
    }

    #[test]
    fn assignment_is_deterministic_across_engines() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let params = TreeParams::default();
        let a = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        let b = assign_splits(
            &mut ThreadEngine::new(4),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        let c = assign_splits(
            &mut SimEngine::new(1024),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn modes_choose_identical_splits() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let pi = TreeParams {
            mode: ScoreMode::Incremental,
            ..TreeParams::default()
        };
        let pr = TreeParams {
            mode: ScoreMode::Reference,
            ..TreeParams::default()
        };
        let a = assign_splits(&mut SerialEngine::new(), &d, &master, &ensembles, &parents, &pi);
        let b = assign_splits(&mut SerialEngine::new(), &d, &master, &ensembles, &parents, &pr);
        assert_eq!(a.node_splits, b.node_splits);
    }

    #[test]
    fn reference_mode_costs_more() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let pi = TreeParams {
            mode: ScoreMode::Incremental,
            ..TreeParams::default()
        };
        let pr = TreeParams {
            mode: ScoreMode::Reference,
            ..TreeParams::default()
        };
        let mut ei = SerialEngine::new();
        let mut er = SerialEngine::new();
        assign_splits(&mut ei, &d, &master, &ensembles, &parents, &pi);
        assign_splits(&mut er, &d, &master, &ensembles, &parents, &pr);
        assert!(
            er.work_units() as f64 > 1.8 * ei.work_units() as f64,
            "reference {} vs incremental {}",
            er.work_units(),
            ei.work_units()
        );
    }

    #[test]
    fn chosen_splits_have_valid_fields() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let params = TreeParams::default();
        let out = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        assert_eq!(out.node_splits.len(), out.index.nodes.len());
        for ns in &out.node_splits {
            assert!(ns.weighted.len() == params.splits_per_node || ns.weighted.is_empty());
            assert_eq!(ns.uniform.len(), params.splits_per_node);
            for s in ns.weighted.iter().chain(&ns.uniform) {
                assert!(s.var < d.n_vars());
                assert!(s.value.is_finite());
                assert!(s.posterior >= 0.0 && s.posterior <= 1.0);
            }
            // Weighted picks always carry positive posterior.
            for s in &ns.weighted {
                assert!(s.posterior > 0.0);
            }
        }
    }

    #[test]
    fn planted_regulator_wins_on_engineered_node() {
        // Engineer a module whose two children are exactly separated by
        // variable 0's values: candidate splits on variable 0 must get
        // high posteriors and dominate the weighted picks.
        let n_obs = 20;
        let mut values = vec![0.0; 2 * n_obs];
        for o in 0..n_obs {
            values[o] = if o < 10 { -1.0 } else { 1.0 }; // regulator
            values[n_obs + o] = if o < 10 { -2.0 } else { 2.0 }; // member
        }
        let d = Dataset::new(mn_data::Matrix::from_vec(2, n_obs, values), None, None);
        let master = MasterRng::new(3);
        let mut e = SerialEngine::new();
        let params = TreeParams {
            splits_per_node: 4,
            ..TreeParams::default()
        };
        let ens = learn_module_trees(&mut e, &d, &master, 0, &[1], &params);
        let parents = vec![0usize];
        let out = assign_splits(&mut e, &d, &master, &[ens], &parents, &params);
        // At least one node has weighted splits, and all name var 0.
        let any_weighted = out
            .node_splits
            .iter()
            .flat_map(|ns| &ns.weighted)
            .collect::<Vec<_>>();
        assert!(!any_weighted.is_empty());
        assert!(any_weighted.iter().all(|s| s.var == 0));
    }

    #[test]
    fn context_reuse_is_bit_identical() {
        let (d, ensembles, master) = setup();
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let params = TreeParams::default();
        let fresh = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &params,
        );
        // One warm context across repeated calls (the intended steady
        // state) must match fresh-context results exactly.
        let mut ctx = SplitContext::new();
        for _ in 0..3 {
            let again = assign_splits_in(
                &mut SerialEngine::new(),
                &d,
                &master,
                &ensembles,
                &parents,
                &params,
                &mut ctx,
            );
            assert_eq!(fresh, again);
        }
    }

    #[test]
    fn wide_nodes_match_naive_path() {
        // > 64 observations forces the kernel's wide (multi-word mask)
        // path; it must agree with the naive per-candidate pass.
        let d = synthetic::yeast_like(8, 80, 31).dataset;
        let master = MasterRng::new(5);
        let mut e = SerialEngine::new();
        let params = TreeParams::default();
        let ensembles = vec![learn_module_trees(
            &mut e,
            &d,
            &master,
            0,
            &(0..4).collect::<Vec<_>>(),
            &params,
        )];
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        assert!(
            ensembles[0].trees.iter().any(|t| t
                .internal_nodes()
                .into_iter()
                .any(|node| t.nodes[node].obs.len() > 64)),
            "setup must produce at least one wide node"
        );
        let naive = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &TreeParams {
                split_scoring: SplitScoring::Naive,
                ..TreeParams::default()
            },
        );
        let kernel = assign_splits(
            &mut SerialEngine::new(),
            &d,
            &master,
            &ensembles,
            &parents,
            &TreeParams {
                split_scoring: SplitScoring::Kernel,
                ..TreeParams::default()
            },
        );
        assert_eq!(naive, kernel);
    }
}
