//! Learning module parents from the assigned splits (Algorithm 6's
//! `Learn-Parents` phase, §2.2.3 step 3).
//!
//! "The score for a parent variable X_i is computed as the average of
//! the posterior probabilities for the splits containing X_i, weighted
//! by the number of observations at the node that the splits are
//! assigned to. Further, the scores of the parents from splits chosen
//! uniformly at random for every node are also computed."
//!
//! The parallelization is a segmented scan over the chosen-split list
//! followed by an all-gather (§3.2.3, "the parallelization of this
//! phase is trivial"); engines are charged accordingly.

use crate::splits::SplitAssignment;
use crate::tree::ModuleEnsemble;
use mn_comm::{Collective, ParEngine};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parent scores of one module.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModuleParents {
    /// Scores from the posterior-weighted split picks:
    /// variable → observation-weighted mean posterior.
    pub weighted: BTreeMap<usize, f64>,
    /// Scores from the uniform random picks (the significance baseline
    /// used for downstream analysis in the paper).
    pub uniform: BTreeMap<usize, f64>,
}

impl ModuleParents {
    /// Parents ranked by weighted score (descending, ties by variable
    /// index for determinism).
    pub fn ranked(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.weighted.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Observation-weighted mean accumulator.
#[derive(Default, Clone, Copy)]
struct WeightedMean {
    num: f64,
    den: f64,
}

impl WeightedMean {
    fn push(&mut self, value: f64, weight: f64) {
        self.num += value * weight;
        self.den += weight;
    }

    fn mean(&self) -> f64 {
        if self.den > 0.0 {
            self.num / self.den
        } else {
            0.0
        }
    }
}

/// Compute per-module parent scores from the split assignment
/// (`Learn-Parents`).
pub fn learn_parents<E: ParEngine>(
    engine: &mut E,
    ensembles: &[ModuleEnsemble],
    assignment: &SplitAssignment,
) -> Vec<ModuleParents> {
    let mut weighted: Vec<BTreeMap<usize, WeightedMean>> =
        vec![BTreeMap::new(); ensembles.len()];
    let mut uniform: Vec<BTreeMap<usize, WeightedMean>> = vec![BTreeMap::new(); ensembles.len()];

    let mut total_splits = 0usize;
    for ns in &assignment.node_splits {
        let entry = &assignment.index.nodes[ns.entry];
        let node_weight = entry.n_obs as f64;
        for s in &ns.weighted {
            weighted[entry.module]
                .entry(s.var)
                .or_default()
                .push(s.posterior, node_weight);
            total_splits += 1;
        }
        for s in &ns.uniform {
            uniform[entry.module]
                .entry(s.var)
                .or_default()
                .push(s.posterior, node_weight);
            total_splits += 1;
        }
    }

    // Segmented scan + all-gather of the (variable, score) pairs.
    engine.replicated(total_splits as u64);
    engine.collective(Collective::Scan, 1);
    engine.collective(Collective::AllGather, total_splits * 2);

    weighted
        .into_iter()
        .zip(uniform)
        .map(|(w, u)| ModuleParents {
            weighted: w.into_iter().map(|(k, v)| (k, v.mean())).collect(),
            uniform: u.into_iter().map(|(k, v)| (k, v.mean())).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreeParams;
    use crate::splits::assign_splits;
    use crate::tree::learn_module_trees;
    use mn_comm::{SerialEngine, SimEngine};
    use mn_data::synthetic;
    use mn_rand::MasterRng;

    fn setup() -> (mn_data::Dataset, Vec<ModuleEnsemble>, SplitAssignment) {
        let d = synthetic::yeast_like(12, 16, 55).dataset;
        let master = MasterRng::new(21);
        let mut e = SerialEngine::new();
        let params = TreeParams::default();
        let ensembles = vec![
            learn_module_trees(&mut e, &d, &master, 0, &(0..6).collect::<Vec<_>>(), &params),
            learn_module_trees(&mut e, &d, &master, 1, &(6..12).collect::<Vec<_>>(), &params),
        ];
        let parents: Vec<usize> = (0..d.n_vars()).collect();
        let assignment = assign_splits(&mut e, &d, &master, &ensembles, &parents, &params);
        (d, ensembles, assignment)
    }

    #[test]
    fn scores_are_normalized_posterior_means() {
        let (_, ensembles, assignment) = setup();
        let parents = learn_parents(&mut SerialEngine::new(), &ensembles, &assignment);
        assert_eq!(parents.len(), 2);
        for mp in &parents {
            for (&var, &score) in mp.weighted.iter().chain(mp.uniform.iter()) {
                assert!(var < 12);
                assert!(
                    (0.0..=1.0).contains(&score),
                    "score {score} out of range"
                );
            }
            // Weighted picks have positive posterior, so positive means.
            for &score in mp.weighted.values() {
                assert!(score > 0.0);
            }
        }
    }

    #[test]
    fn identical_across_engines() {
        let (_, ensembles, assignment) = setup();
        let a = learn_parents(&mut SerialEngine::new(), &ensembles, &assignment);
        let b = learn_parents(&mut SimEngine::new(256), &ensembles, &assignment);
        assert_eq!(a, b);
    }

    #[test]
    fn ranked_is_descending_and_deterministic() {
        let (_, ensembles, assignment) = setup();
        let parents = learn_parents(&mut SerialEngine::new(), &ensembles, &assignment);
        for mp in &parents {
            let ranked = mp.ranked();
            for w in ranked.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            assert_eq!(ranked.len(), mp.weighted.len());
        }
    }

    #[test]
    fn hand_computed_example() {
        // One module, one node of 4 observations with two weighted
        // splits on the same variable: score = obs-weighted mean of the
        // posteriors = (0.8*4 + 0.4*4) / (4 + 4) = 0.6.
        use crate::splits::{ChosenSplit, NodeSplits, SplitIndex};
        use crate::tree::{RegTree, TreeNode};
        let tree = RegTree {
            nodes: vec![
                TreeNode {
                    obs: vec![0, 1],
                    stats: Default::default(),
                    left: None,
                    right: None,
                },
                TreeNode {
                    obs: vec![2, 3],
                    stats: Default::default(),
                    left: None,
                    right: None,
                },
                TreeNode {
                    obs: vec![0, 1, 2, 3],
                    stats: Default::default(),
                    left: Some(0),
                    right: Some(1),
                },
            ],
            root: 2,
        };
        let ensembles = vec![ModuleEnsemble {
            module: 0,
            vars: vec![5],
            trees: vec![tree],
        }];
        let index = SplitIndex::build(&ensembles, 1);
        let assignment = SplitAssignment {
            node_splits: vec![NodeSplits {
                entry: 0,
                weighted: vec![
                    ChosenSplit {
                        var: 7,
                        value: 0.0,
                        posterior: 0.8,
                    },
                    ChosenSplit {
                        var: 7,
                        value: 1.0,
                        posterior: 0.4,
                    },
                ],
                uniform: vec![],
            }],
            index,
        };
        let parents = learn_parents(&mut SerialEngine::new(), &ensembles, &assignment);
        assert!((parents[0].weighted[&7] - 0.6).abs() < 1e-12);
        assert!(parents[0].uniform.is_empty());
    }

    #[test]
    fn empty_assignment_gives_empty_scores() {
        let ensembles: Vec<ModuleEnsemble> = vec![];
        let assignment = SplitAssignment {
            index: crate::splits::SplitIndex::build(&ensembles, 0),
            node_splits: vec![],
        };
        let parents = learn_parents(&mut SerialEngine::new(), &ensembles, &assignment);
        assert!(parents.is_empty());
    }
}
