//! Vectorized Monte-Carlo confirmation draws for split assignment.
//!
//! The MC confirmation loop of Algorithm 5 ([`crate::splits`]) draws,
//! per candidate item, `s_eff · n` uniform picks from the node's
//! observations and tests each pick's consistency with the candidate
//! predicate. With the per-candidate consistency *bitmask* precomputed
//! by `SplitScratch::compute_small` (bit `i` = "pick `i` agrees"), one
//! draw reduces to: step the per-item [`Lcg128`] state, map the output
//! to a pick in `[0, n)`, and test one bit. That is exactly the shape
//! SIMD wants: many independent lanes running the *same* affine
//! recurrence in lockstep.
//!
//! Two engines implement the same contract:
//!
//! * **AVX-512 IFMA** (x86-64, runtime-detected): the 128-bit LCG state
//!   is decomposed into three 52-bit limbs and stepped with
//!   `vpmadd52{lo,hi}uq` — 9 multiply-adds per step across 8 lanes per
//!   vector, four interleaved vectors to hide the normalization
//!   chain's latency and keep the multiply ports saturated. The
//!   pick `⌊r·n / 2^64⌋` is likewise computed in 52-bit arithmetic
//!   (exact: `r < 2^64`, `n ≤ 64`, so `r·n < 2^70` fits the 104-bit
//!   product path), and the bit test is a variable shift. Limb
//!   normalization keeps every limb canonical after each step, so lane
//!   `i`'s limb triple always equals the limbs of the scalar state —
//!   the engine produces **the same picks, bit for bit**.
//! * **Interleaved scalar fallback** (everything else): 8 lanes of the
//!   plain `u128` recurrence stepped in lockstep arrays, which the
//!   compiler schedules across the multiplier pipeline.
//!
//! Both are verified against [`scalar_hits`] — the literal one-lane
//! transcription of `Lcg128::next_u64` + `index_one_draw` using the
//! generator's public constants — by exact-equality tests. Because the
//! *number of hits* determines the MC loop's `agree` tally exactly
//! (`agree = 2·hits − draws`), the caller recovers the naive loop's
//! result without materializing individual picks.

use mn_rand::Lcg128;

/// Number of lanes the engines process per group: four interleaved
/// 8-lane vectors. The LCG step's limb-normalization chain is the
/// loop-carried latency (≈10 cycles); four independent vectors keep
/// the IFMA ports busy across it, where two leave them half idle.
pub const LANES: usize = 32;

/// One-lane scalar reference: run `t` draws of the `Lcg128` recurrence
/// from `state`, counting picks whose bit in `cons` is set.
///
/// This is the semantic anchor: `state` must be `Lcg128::state()` of
/// the per-item generator, and each draw is
/// `pick = (next_u64() · n) >> 64` — identical to
/// `Lcg128::index_one_draw(n)`.
#[inline]
pub fn scalar_hits(mut state: u128, cons: u64, n: usize, t: usize) -> u64 {
    let mut hits = 0u64;
    for _ in 0..t {
        state = state
            .wrapping_mul(Lcg128::MULTIPLIER)
            .wrapping_add(Lcg128::INCREMENT);
        let r = (state >> 64) as u64;
        let pick = ((r as u128 * n as u128) >> 64) as usize;
        hits += cons >> pick & 1;
    }
    hits
}

/// Interleaved scalar engine: 8 independent lanes stepped in lockstep.
fn scalar_hits8(states: &[u128; 8], cons: &[u64; 8], n: usize, t: usize) -> [u64; 8] {
    let mut s = *states;
    let mut hits = [0u64; 8];
    for _ in 0..t {
        for i in 0..8 {
            s[i] = s[i]
                .wrapping_mul(Lcg128::MULTIPLIER)
                .wrapping_add(Lcg128::INCREMENT);
            let r = (s[i] >> 64) as u64;
            let pick = ((r as u128 * n as u128) >> 64) as usize;
            hits[i] += cons[i] >> pick & 1;
        }
    }
    hits
}

#[cfg(target_arch = "x86_64")]
mod ifma {
    use mn_rand::Lcg128;
    use std::arch::x86_64::*;

    const M52: u64 = (1 << 52) - 1;
    const M24: u64 = (1 << 24) - 1;

    /// Decompose a 128-bit state into three 52/52/24-bit limbs.
    #[inline]
    pub fn limbs(x: u128) -> [u64; 3] {
        [
            (x & ((1 << 52) - 1)) as u64,
            ((x >> 52) & ((1 << 52) - 1)) as u64,
            (x >> 104) as u64,
        ]
    }

    /// `K` interleaved 8-lane sets (`8·K` items, `K ≤ 4`) of the
    /// limb-decomposed LCG step + pick + bit test. Requires AVX-512
    /// F/DQ/VL/IFMA. `states`/`cons` must hold at least `8·K` entries;
    /// the first `8·K` slots of the return value are the lane counts.
    ///
    /// # Safety
    /// Caller must have verified `avx512ifma` (plus f/dq/vl) support,
    /// e.g. via [`super::ifma_available`].
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma,avx512vl")]
    pub unsafe fn hits_group<const K: usize>(
        states: &[u128],
        cons: &[u64],
        n: u64,
        t: usize,
    ) -> [u64; super::LANES] {
        let a = limbs(Lcg128::MULTIPLIER);
        let c = limbs(Lcg128::INCREMENT);
        let a0 = _mm512_set1_epi64(a[0] as i64);
        let a1 = _mm512_set1_epi64(a[1] as i64);
        let a2 = _mm512_set1_epi64(a[2] as i64);
        let c0 = _mm512_set1_epi64(c[0] as i64);
        let c1 = _mm512_set1_epi64(c[1] as i64);
        let c2 = _mm512_set1_epi64(c[2] as i64);
        let m52 = _mm512_set1_epi64(M52 as i64);
        let m24 = _mm512_set1_epi64(M24 as i64);
        let m12 = _mm512_set1_epi64(0xFFF);
        let nv = _mm512_set1_epi64(n as i64);
        let one = _mm512_set1_epi64(1);
        let zero = _mm512_setzero_si512();

        let mut l0 = [0u64; super::LANES];
        let mut l1 = [0u64; super::LANES];
        let mut l2 = [0u64; super::LANES];
        for i in 0..8 * K {
            let l = limbs(states[i]);
            l0[i] = l[0];
            l1[i] = l[1];
            l2[i] = l[2];
        }
        let mut s0 = [zero; K];
        let mut s1 = [zero; K];
        let mut s2 = [zero; K];
        let mut mv = [zero; K];
        let mut h = [zero; K];
        for v in 0..K {
            s0[v] = _mm512_loadu_si512(l0.as_ptr().add(8 * v) as *const _);
            s1[v] = _mm512_loadu_si512(l1.as_ptr().add(8 * v) as *const _);
            s2[v] = _mm512_loadu_si512(l2.as_ptr().add(8 * v) as *const _);
            mv[v] = _mm512_loadu_si512(cons.as_ptr().add(8 * v) as *const _);
        }

        for _ in 0..t {
            // The K vectors are fully independent; the compiler unrolls
            // this inner loop and interleaves their instruction streams
            // across the loop-carried normalization chain.
            for v in 0..K {
                // state = state · A + C (mod 2^128) in 52-bit limbs:
                // the column sums stay below 2^64 (≤ 3 products of
                // 52×52 bits taken 52 bits at a time plus carries),
                // then one normalization pass restores canonical limbs.
                let u0 = _mm512_madd52lo_epu64(c0, s0[v], a0);
                let mut u1 = _mm512_madd52hi_epu64(c1, s0[v], a0);
                u1 = _mm512_madd52lo_epu64(u1, s0[v], a1);
                u1 = _mm512_madd52lo_epu64(u1, s1[v], a0);
                let mut u2 = _mm512_madd52hi_epu64(c2, s0[v], a1);
                u2 = _mm512_madd52hi_epu64(u2, s1[v], a0);
                u2 = _mm512_madd52lo_epu64(u2, s0[v], a2);
                u2 = _mm512_madd52lo_epu64(u2, s1[v], a1);
                u2 = _mm512_madd52lo_epu64(u2, s2[v], a0);
                s0[v] = _mm512_and_si512(u0, m52);
                u1 = _mm512_add_epi64(u1, _mm512_srli_epi64(u0, 52));
                s1[v] = _mm512_and_si512(u1, m52);
                u2 = _mm512_add_epi64(u2, _mm512_srli_epi64(u1, 52));
                s2[v] = _mm512_and_si512(u2, m24);
                // r = state >> 64 reassembled from limbs (r_lo 52
                // bits, r_hi 12 bits), then pick = (r · n) >> 64 via
                // one more 52-bit multiply-add chain: exact because
                // r·n < 2^70.
                let rl = _mm512_or_si512(
                    _mm512_srli_epi64(s1[v], 12),
                    _mm512_slli_epi64(_mm512_and_si512(s2[v], m12), 40),
                );
                let rh = _mm512_srli_epi64(s2[v], 12);
                let mut tv = _mm512_madd52hi_epu64(zero, rl, nv);
                tv = _mm512_madd52lo_epu64(tv, rh, nv);
                let p = _mm512_srli_epi64(tv, 12);
                h[v] = _mm512_add_epi64(h[v], _mm512_and_si512(_mm512_srlv_epi64(mv[v], p), one));
            }
        }
        let mut out = [0u64; super::LANES];
        for (v, &hv) in h.iter().enumerate() {
            _mm512_storeu_si512(out.as_mut_ptr().add(8 * v) as *mut _, hv);
        }
        out
    }
}

/// Whether the AVX-512 IFMA engine can run on this CPU (cached).
#[cfg(target_arch = "x86_64")]
pub fn ifma_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512ifma")
    })
}

/// Whether the AVX-512 IFMA engine can run on this CPU (non-x86: no).
#[cfg(not(target_arch = "x86_64"))]
pub fn ifma_available() -> bool {
    false
}

/// Hit counts for a group of independent MC items sharing one draw
/// shape: lane `i` runs `t` draws of the `Lcg128` recurrence from
/// `states[i]`, counting picks in `[0, n)` whose bit in `cons[i]` is
/// set. `out` receives one count per lane, in lane order.
///
/// Groups larger than [`LANES`] are processed in [`LANES`]-wide chunks;
/// ragged tails run on a narrower vector group (8-lane granularity),
/// padded with replicas of the tail's first lane (the padding lanes'
/// counts are discarded, at most 7 of them). Picks are bit-identical
/// to [`scalar_hits`] on every engine.
pub fn mc_hits(states: &[u128], cons: &[u64], n: usize, t: usize, out: &mut Vec<u64>) {
    assert_eq!(states.len(), cons.len());
    assert!((1..=64).contains(&n), "mc_hits requires 1 ≤ n ≤ 64, got {n}");
    out.clear();
    for (schunk, cchunk) in states.chunks(LANES).zip(cons.chunks(LANES)) {
        let m = schunk.len();
        let k = m.div_ceil(8);
        let mut s = [schunk[0]; LANES];
        let mut c = [cchunk[0]; LANES];
        s[..m].copy_from_slice(schunk);
        c[..m].copy_from_slice(cchunk);
        let counts = group_hits(k, &s, &c, n, t);
        out.extend_from_slice(&counts[..m]);
    }
}

/// One lane-group of `k ≤ 4` vectors (8 lanes each) on the best
/// available engine; only the first `8·k` output slots are meaningful.
fn group_hits(k: usize, states: &[u128; LANES], cons: &[u64; LANES], n: usize, t: usize) -> [u64; LANES] {
    #[cfg(target_arch = "x86_64")]
    if ifma_available() {
        // Safety: feature support verified by `ifma_available`.
        return unsafe {
            match k {
                1 => ifma::hits_group::<1>(states, cons, n as u64, t),
                2 => ifma::hits_group::<2>(states, cons, n as u64, t),
                3 => ifma::hits_group::<3>(states, cons, n as u64, t),
                _ => ifma::hits_group::<4>(states, cons, n as u64, t),
            }
        };
    }
    let mut out = [0u64; LANES];
    for v in 0..k {
        let s: &[u128; 8] = states[8 * v..8 * v + 8].try_into().unwrap();
        let c: &[u64; 8] = cons[8 * v..8 * v + 8].try_into().unwrap();
        out[8 * v..8 * v + 8].copy_from_slice(&scalar_hits8(s, c, n, t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_rand::{Domain, Lcg128};

    fn item_state(seed: u64, item: u64) -> u128 {
        Lcg128::from_key(seed, Domain::SplitPosterior.tag(), item).state()
    }

    #[test]
    fn scalar_reference_matches_lcg128_draws() {
        // The reference's manual recurrence must track the real
        // generator draw for draw.
        for item in 0..8u64 {
            let mut rng = Lcg128::from_key(7, Domain::SplitPosterior.tag(), item);
            let mut state = rng.state();
            let n = 37;
            let cons = 0x00ff_00ff_00ff_00ffu64 & ((1u64 << n) - 1);
            let mut want = 0u64;
            for _ in 0..100 {
                let pick = rng.index_one_draw(n);
                want += cons >> pick & 1;
            }
            // Recompute the same thing through scalar_hits' stepping.
            let got = scalar_hits(state, cons, n, 100);
            assert_eq!(got, want, "item {item}");
            // And the state advances identically.
            for _ in 0..100 {
                state = state
                    .wrapping_mul(Lcg128::MULTIPLIER)
                    .wrapping_add(Lcg128::INCREMENT);
            }
            assert_eq!(state, rng.state());
        }
    }

    #[test]
    fn engines_match_scalar_reference_exactly() {
        // Exact bit-equality of every lane's count against the
        // one-lane reference, across group sizes (ragged tails), node
        // widths, and draw counts — on whatever engine dispatch picks.
        let mut mask_rng = Lcg128::from_key(99, 1, 1);
        for rep in 0..50 {
            let n = 1 + (rep * 7) % 64;
            let t = (rep % 9) * n + 1;
            let lanes = 1 + (rep * 5) % 40;
            let states: Vec<u128> = (0..lanes)
                .map(|i| item_state(4, (rep * 100 + i) as u64))
                .collect();
            let full = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
            let cons: Vec<u64> = (0..lanes).map(|_| mask_rng.next_u64() & full).collect();
            let mut out = Vec::new();
            mc_hits(&states, &cons, n, t, &mut out);
            assert_eq!(out.len(), lanes);
            for i in 0..lanes {
                assert_eq!(
                    out[i],
                    scalar_hits(states[i], cons[i], n, t),
                    "rep {rep} lane {i} (n={n}, t={t})"
                );
            }
        }
    }

    #[test]
    fn scalar_fallback_matches_reference_even_with_ifma() {
        // The non-SIMD path must hold the same contract on every
        // machine (CI runners may or may not have IFMA).
        let states: Vec<u128> = (0..16).map(|i| item_state(11, i)).collect();
        let cons = [0xdead_beef_u64 & ((1 << 32) - 1); 16];
        let a = scalar_hits8(states[..8].try_into().unwrap(), &cons[..8].try_into().unwrap(), 32, 257);
        for i in 0..8 {
            assert_eq!(a[i], scalar_hits(states[i], cons[i], 32, 257));
        }
    }

    #[test]
    fn zero_draws_and_empty_groups() {
        let mut out = Vec::new();
        mc_hits(&[], &[], 5, 10, &mut out);
        assert!(out.is_empty());
        mc_hits(&[item_state(1, 1)], &[0b1], 1, 0, &mut out);
        assert_eq!(out, vec![0]);
    }
}
