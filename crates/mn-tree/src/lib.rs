//! # mn-tree — module learning (Lemon-Tree task 3)
//!
//! The most compute-intensive task of the paper (§2.2.3, §3.2.3):
//! learning, for each consensus module, an ensemble of regression-tree
//! structures (Algorithm 4), assigning candidate parent splits to
//! every internal tree node by block-partitioned posterior computation
//! and weighted/uniform random selection (Algorithm 5), and deriving
//! the module's parent scores (Algorithm 6 / `Learn-Parents`).
//!
//! * [`params`] — the task parameters `U, B, J, S` plus prior and mode.
//! * [`tree`] — regression-tree structures and Bayesian hierarchical
//!   merging.
//! * [`splits`] — the flat candidate-split list, posterior computation
//!   with data-dependent sampling cost (the paper's load-imbalance
//!   source), and split selection.
//! * [`parents`] — parent-score aggregation.
//! * [`mc_kernel`] — batched replay of the per-candidate Monte-Carlo
//!   confirmation streams (scalar and AVX-512 IFMA engines).

#![warn(missing_docs)]

pub mod mc_kernel;
pub mod params;
pub mod parents;
pub mod splits;
pub mod tree;

pub use params::TreeParams;
pub use parents::{learn_parents, ModuleParents};
pub use splits::{
    assign_splits, assign_splits_in, ChosenSplit, NodeSplits, SplitAssignment, SplitContext,
    SplitIndex,
};
pub use tree::{build_tree, build_tree_with, learn_module_trees, ModuleEnsemble, RegTree, TreeNode};
