//! Parameters of the module-learning task.

use mn_score::{CandidateScoring, NormalGamma, ScoreMode, SplitScoring};
use serde::{Deserialize, Serialize};

/// Parameters for Algorithms 4–6 (tree structures, split assignment,
/// parent learning).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// GaneSH update steps `U` for the observation-cluster sampler of
    /// Algorithm 4 (the ensemble holds `U − B` trees).
    pub update_steps: usize,
    /// Burn-in steps `B` (< `update_steps`).
    pub burn_in: usize,
    /// Number of splits `J` chosen per internal node, by weighted and
    /// by uniform sampling each (Alg. 5 lines 11–13).
    pub splits_per_node: usize,
    /// Maximum discrete sampling steps `S` per split posterior
    /// (§2.2.3: "If S is the maximum number of discrete sampling steps
    /// for any split, then computing the posterior probability for a
    /// split requires O(Sm) time" — every step examines the node's
    /// full observation set, which is what makes the split loop the
    /// O(S·n·m²) dominant phase).
    pub max_sampling_steps: usize,
    /// The normal-gamma prior for node/merge scores.
    pub prior: NormalGamma,
    /// Scoring implementation mode (cost profile; decisions identical).
    pub mode: ScoreMode,
    /// Execution path of the exact separation pass in split assignment
    /// (results bit-identical; the naive path is the A/B baseline).
    pub split_scoring: SplitScoring,
    /// Candidate-scoring path of the observation-cluster sampler's
    /// Gibbs sweeps (results bit-identical; naive is the A/B baseline).
    pub candidate_scoring: CandidateScoring,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            update_steps: 2,
            burn_in: 1,
            splits_per_node: 2,
            max_sampling_steps: 8,
            prior: NormalGamma::default(),
            mode: ScoreMode::Incremental,
            split_scoring: SplitScoring::Kernel,
            candidate_scoring: CandidateScoring::Kernel,
        }
    }
}

impl TreeParams {
    /// Number of regression trees sampled per module (`R = U − B`).
    pub fn trees_per_module(&self) -> usize {
        self.update_steps - self.burn_in
    }

    /// Validate parameter consistency.
    pub fn validated(self) -> Result<Self, String> {
        if self.burn_in >= self.update_steps {
            return Err(format!(
                "burn_in ({}) must be < update_steps ({})",
                self.burn_in, self.update_steps
            ));
        }
        if self.splits_per_node == 0 {
            return Err("splits_per_node must be >= 1".into());
        }
        if self.max_sampling_steps == 0 {
            return Err("sampling parameters must be >= 1".into());
        }
        self.prior.validated()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(TreeParams::default().validated().is_ok());
        assert_eq!(TreeParams::default().trees_per_module(), 1);
    }

    #[test]
    fn rejects_inconsistent() {
        let base = TreeParams::default();
        let p = TreeParams {
            burn_in: base.update_steps,
            ..base.clone()
        };
        assert!(p.validated().is_err());
        let p = TreeParams {
            splits_per_node: 0,
            ..base.clone()
        };
        assert!(p.validated().is_err());
        let p = TreeParams {
            max_sampling_steps: 0,
            ..base
        };
        assert!(p.validated().is_err());
    }
}
