//! Categorical (discrete-data) scoring.
//!
//! §2.1 of the paper: MoNets are learned from "an n × m matrix of
//! either discrete or continuous values". The evaluation data sets are
//! continuous expression compendia scored with the normal-gamma
//! marginal; this module provides the discrete counterpart — category
//! counts with the same O(1) add/remove/merge contract as
//! [`crate::SuffStats`], and the conjugate Dirichlet-multinomial
//! marginal likelihood:
//!
//! ```text
//! ln p(data) = ln Γ(A) − ln Γ(A + N) + Σ_c [ ln Γ(α_c + n_c) − ln Γ(α_c) ]
//! ```
//!
//! with `A = Σ_c α_c`, `N = Σ_c n_c`. Discrete values are represented
//! as non-negative integers stored in `f64` cells (the discretizers in
//! `mn-data::discretize` produce exactly that), so the discrete layer
//! plugs into the same matrix type.

use crate::special::ln_gamma;
use serde::{Deserialize, Serialize};

/// Per-category counts of a block of discrete values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatStats {
    counts: Vec<u64>,
}

impl CatStats {
    /// The empty block.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Counts from a slice of discrete values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Self::empty();
        for &v in values {
            s.add(v);
        }
        s
    }

    #[inline]
    fn category(v: f64) -> usize {
        debug_assert!(
            v >= 0.0 && v.fract() == 0.0,
            "discrete values must be non-negative integers, got {v}"
        );
        v as usize
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let c = Self::category(v);
        if c >= self.counts.len() {
            self.counts.resize(c + 1, 0);
        }
        self.counts[c] += 1;
    }

    /// Remove one previously added value.
    #[inline]
    pub fn remove(&mut self, v: f64) {
        let c = Self::category(v);
        debug_assert!(self.counts.get(c).copied().unwrap_or(0) > 0, "underflow");
        self.counts[c] -= 1;
        self.trim();
    }

    /// Merge another block in.
    pub fn merge(&mut self, other: &CatStats) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Remove a previously merged block.
    pub fn unmerge(&mut self, other: &CatStats) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            debug_assert!(*a >= b, "unmerge underflow");
            *a -= b;
        }
        self.trim();
    }

    /// The merged counts of two blocks.
    pub fn merged(a: &CatStats, b: &CatStats) -> CatStats {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    fn trim(&mut self) {
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }

    /// Total number of values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Count of one category.
    pub fn count_of(&self, category: usize) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Highest category index present plus one.
    pub fn arity(&self) -> usize {
        self.counts.len()
    }
}

/// Symmetric Dirichlet prior over `categories` outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirichletMultinomial {
    /// Number of categories C.
    pub categories: usize,
    /// Symmetric concentration α (per category).
    pub alpha: f64,
}

impl DirichletMultinomial {
    /// A symmetric prior; `categories ≥ 2`, `alpha > 0`.
    pub fn new(categories: usize, alpha: f64) -> Self {
        assert!(categories >= 2, "need at least two categories");
        assert!(alpha > 0.0, "concentration must be positive");
        Self { categories, alpha }
    }

    /// Marginal log-likelihood of a block of counts. The empty block
    /// scores exactly 0 (same decomposability convention as the
    /// normal-gamma marginal).
    pub fn log_marginal(&self, stats: &CatStats) -> f64 {
        if stats.is_empty() {
            return 0.0;
        }
        assert!(
            stats.arity() <= self.categories,
            "value category {} out of range for {} categories",
            stats.arity() - 1,
            self.categories
        );
        let a_total = self.alpha * self.categories as f64;
        let n = stats.count() as f64;
        let mut out = ln_gamma(a_total) - ln_gamma(a_total + n);
        for c in 0..self.categories {
            let n_c = stats.count_of(c) as f64;
            if n_c > 0.0 {
                out += ln_gamma(self.alpha + n_c) - ln_gamma(self.alpha);
            }
        }
        out
    }

    /// Marginal of a raw value slice.
    pub fn log_marginal_values(&self, values: &[f64]) -> f64 {
        self.log_marginal(&CatStats::from_values(values))
    }

    /// Log posterior-predictive probability of one further value.
    pub fn log_predictive(&self, stats: &CatStats, v: f64) -> f64 {
        let mut with = stats.clone();
        with.add(v);
        self.log_marginal(&with) - self.log_marginal(stats)
    }

    /// Bayes-factor merge gain, as for the Gaussian model.
    pub fn log_merge_gain(&self, a: &CatStats, b: &CatStats) -> f64 {
        self.log_marginal(&CatStats::merged(a, b)) - self.log_marginal(a) - self.log_marginal(b)
    }
}

/// Score of a discrete tile `vars × obs` of a data set whose cells are
/// category indices.
pub fn discrete_tile_score(
    model: &DirichletMultinomial,
    data: &mn_data::Dataset,
    vars: &[usize],
    obs: &[usize],
) -> f64 {
    let mut stats = CatStats::empty();
    for &v in vars {
        let row = data.values(v);
        for &o in obs {
            stats.add(row[o]);
        }
    }
    model.log_marginal(&stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bookkeeping() {
        let mut s = CatStats::from_values(&[0.0, 1.0, 1.0, 2.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.count_of(1), 2);
        s.remove(2.0);
        assert_eq!(s.arity(), 2, "trailing zero categories trimmed");
        s.add(2.0);
        assert_eq!(s.count_of(2), 1);
    }

    #[test]
    fn add_remove_roundtrip_is_exact() {
        let mut s = CatStats::from_values(&[0.0, 1.0]);
        let before = s.clone();
        s.add(3.0);
        s.remove(3.0);
        assert_eq!(s, before);
    }

    #[test]
    fn merge_unmerge_roundtrip() {
        let a0 = CatStats::from_values(&[0.0, 0.0, 1.0]);
        let b = CatStats::from_values(&[2.0, 1.0]);
        let mut a = a0.clone();
        a.merge(&b);
        assert_eq!(a.count(), 5);
        a.unmerge(&b);
        assert_eq!(a, a0);
    }

    #[test]
    fn single_value_marginal_is_prior_predictive() {
        // p(category c) = α / (C·α) = 1/C for symmetric Dirichlet.
        let m = DirichletMultinomial::new(4, 0.5);
        let got = m.log_marginal_values(&[2.0]);
        assert!((got - (1.0f64 / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_consistency() {
        let m = DirichletMultinomial::new(3, 1.0);
        let xs = [0.0, 2.0, 2.0, 1.0, 0.0, 2.0];
        let joint = m.log_marginal_values(&xs);
        let mut acc = 0.0;
        let mut stats = CatStats::empty();
        for &x in &xs {
            acc += m.log_predictive(&stats, x);
            stats.add(x);
        }
        assert!((joint - acc).abs() < 1e-10, "{joint} vs {acc}");
    }

    #[test]
    fn exact_small_case() {
        // C = 2, α = 1 (uniform prior): p(sequence with n0 zeros and
        // n1 ones) = n0! n1! / (n0+n1+1)!.
        let m = DirichletMultinomial::new(2, 1.0);
        let got = m.log_marginal_values(&[0.0, 0.0, 1.0]);
        let want = (2.0f64 * 1.0 / 24.0).ln(); // 2!·1!/4! = 2/24
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn order_invariance() {
        let m = DirichletMultinomial::new(3, 0.7);
        let a = m.log_marginal_values(&[0.0, 1.0, 2.0, 1.0]);
        let b = m.log_marginal_values(&[1.0, 2.0, 1.0, 0.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn pure_block_beats_mixed_block() {
        let m = DirichletMultinomial::new(3, 0.5);
        let pure = m.log_marginal_values(&[1.0; 8]);
        let mixed = m.log_marginal_values(&[0.0, 1.0, 2.0, 0.0, 1.0, 2.0, 0.0, 1.0]);
        assert!(pure > mixed);
    }

    #[test]
    fn merge_gain_prefers_same_distribution() {
        let m = DirichletMultinomial::new(2, 0.5);
        let a = CatStats::from_values(&[0.0, 0.0, 0.0, 1.0]);
        let b = CatStats::from_values(&[0.0, 0.0, 1.0, 0.0]);
        let c = CatStats::from_values(&[1.0, 1.0, 1.0, 1.0]);
        assert!(m.log_merge_gain(&a, &b) > m.log_merge_gain(&a, &c));
    }

    #[test]
    fn discrete_tile_score_identifies_blocks() {
        use mn_data::{Dataset, Matrix};
        // Two variables agreeing perfectly on a 0/1 pattern vs two
        // scrambled ones.
        let d = Dataset::new(
            Matrix::from_vec(
                3,
                4,
                vec![
                    0.0, 0.0, 1.0, 1.0, //
                    0.0, 0.0, 1.0, 1.0, //
                    1.0, 0.0, 1.0, 0.0,
                ],
            ),
            None,
            None,
        );
        let m = DirichletMultinomial::new(2, 0.5);
        // Coherent tile split by the pattern scores above the split
        // that mixes categories.
        let coherent = discrete_tile_score(&m, &d, &[0, 1], &[0, 1])
            + discrete_tile_score(&m, &d, &[0, 1], &[2, 3]);
        let scrambled = discrete_tile_score(&m, &d, &[0, 1], &[0, 2])
            + discrete_tile_score(&m, &d, &[0, 1], &[1, 3]);
        assert!(coherent > scrambled);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn category_overflow_is_caught() {
        let m = DirichletMultinomial::new(2, 1.0);
        m.log_marginal_values(&[5.0]);
    }
}
