//! # mn-score — Bayesian scores for module-network learning
//!
//! The decomposable scoring machinery shared by every task of the
//! learner (§2.2 of the paper): an own-built `ln Γ`, O(1)-updatable
//! sufficient statistics, the conjugate normal-gamma marginal
//! likelihood that scores co-clustering tiles, regression-tree nodes
//! and parent splits, and from-scratch tile scoring used both as the
//! reference ("Lemon-Tree cost profile") implementation and as the
//! oracle that the optimized incremental bookkeeping is tested against.

#![warn(missing_docs)]

pub mod categorical;
pub mod gibbs_kernel;
pub mod mode;
pub mod normal_gamma;
pub mod special;
pub mod split_kernel;
pub mod suffstats;
pub mod tile;

pub use categorical::{discrete_tile_score, CatStats, DirichletMultinomial};
pub use gibbs_kernel::EpochCache;
pub use mode::{CandidateScoring, ScoreMode, SplitScoring, COST_CELL, COST_LOGMARG};
pub use split_kernel::{naive_sigmas, ScratchPool, SplitScratch};
pub use normal_gamma::{NormalGamma, ScoreScratch};
pub use special::{ln_beta, ln_gamma, ln_gamma_ratio, LnGammaTable};
pub use suffstats::SuffStats;
pub use tile::{coclustering_score, tile_score, tile_stats, var_cluster_score, var_obs_stats};
