//! Sufficient statistics for Gaussian data blocks.
//!
//! Every score in the learner is a function of `(count, Σx, Σx²)` of
//! some block of matrix entries — a co-clustering *tile* (variable
//! cluster × observation cluster), the observations at a regression-tree
//! node, or a split's two sides. The optimized scorer of §4.1 maintains
//! these incrementally (add/remove/merge in O(1)); the reference scorer
//! recomputes them from raw values each time, reproducing the cost
//! profile of the Java Lemon-Tree implementation.

use serde::{Deserialize, Serialize};

/// `(count, Σx, Σx²)` of a block of values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SuffStats {
    count: u64,
    sum: f64,
    sumsq: f64,
}

impl SuffStats {
    /// The empty block.
    #[inline]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Statistics of a slice of values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Self::empty();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sumsq += v * v;
    }

    /// Remove one previously added value.
    ///
    /// Caller must guarantee `v` was added before; in debug builds an
    /// empty-block underflow panics.
    #[inline]
    pub fn remove(&mut self, v: f64) {
        debug_assert!(self.count > 0, "removing from an empty block");
        self.count -= 1;
        self.sum -= v;
        self.sumsq -= v * v;
        if self.count == 0 {
            // Clamp away accumulated round-off so an emptied block is
            // exactly empty (scores treat empty specially).
            self.sum = 0.0;
            self.sumsq = 0.0;
        }
    }

    /// Merge another block into this one.
    #[inline]
    pub fn merge(&mut self, other: &SuffStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }

    /// Remove a previously merged block.
    #[inline]
    pub fn unmerge(&mut self, other: &SuffStats) {
        debug_assert!(self.count >= other.count, "unmerge underflow");
        self.count -= other.count;
        self.sum -= other.sum;
        self.sumsq -= other.sumsq;
        if self.count == 0 {
            self.sum = 0.0;
            self.sumsq = 0.0;
        }
    }

    /// The merged statistics of two blocks (non-mutating form).
    #[inline]
    pub fn merged(a: &SuffStats, b: &SuffStats) -> SuffStats {
        let mut out = *a;
        out.merge(b);
        out
    }

    /// Number of values in the block.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Σx.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Σx².
    #[inline]
    pub fn sumsq(&self) -> f64 {
        self.sumsq
    }

    /// Sample mean (0 for an empty block).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Centered sum of squares `Σ(x - x̄)²`, clamped at 0 to absorb
    /// floating-point cancellation on near-constant blocks.
    #[inline]
    pub fn centered_sumsq(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let c = self.sumsq - self.sum * self.sum / self.count as f64;
        c.max(0.0)
    }

    /// Population variance.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.centered_sumsq() / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_values_basics() {
        let s = SuffStats::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.sumsq(), 30.0);
        assert_eq!(s.mean(), 2.5);
        assert!((s.centered_sumsq() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_is_well_behaved() {
        let s = SuffStats::empty();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.centered_sumsq(), 0.0);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut s = SuffStats::from_values(&[1.0, 2.0, 3.0]);
        let before = s;
        s.add(7.5);
        s.remove(7.5);
        assert_eq!(s.count(), before.count());
        assert!((s.sum() - before.sum()).abs() < 1e-12);
        assert!((s.sumsq() - before.sumsq()).abs() < 1e-12);
    }

    #[test]
    fn remove_to_empty_is_exactly_empty() {
        let mut s = SuffStats::empty();
        s.add(0.1);
        s.remove(0.1);
        assert_eq!(s, SuffStats::empty());
    }

    #[test]
    fn merge_unmerge_roundtrip() {
        let a0 = SuffStats::from_values(&[1.0, -2.0]);
        let b = SuffStats::from_values(&[3.5, 0.25, -1.0]);
        let mut a = a0;
        a.merge(&b);
        assert_eq!(a.count(), 5);
        a.unmerge(&b);
        assert!((a.sum() - a0.sum()).abs() < 1e-12);
        assert_eq!(a.count(), a0.count());
    }

    #[test]
    fn merged_equals_concat() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 5.0];
        let merged = SuffStats::merged(&SuffStats::from_values(&xs), &SuffStats::from_values(&ys));
        let concat = SuffStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(merged, concat);
    }

    #[test]
    fn near_constant_block_variance_not_negative() {
        let v = 1e8;
        let s = SuffStats::from_values(&[v, v, v, v]);
        assert!(s.variance() >= 0.0);
        assert!(s.centered_sumsq() >= 0.0);
    }

    proptest! {
        #[test]
        fn prop_merge_commutes(xs in prop::collection::vec(-1e3f64..1e3, 0..30),
                               ys in prop::collection::vec(-1e3f64..1e3, 0..30)) {
            let a = SuffStats::from_values(&xs);
            let b = SuffStats::from_values(&ys);
            let ab = SuffStats::merged(&a, &b);
            let ba = SuffStats::merged(&b, &a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.sum() - ba.sum()).abs() < 1e-9);
            prop_assert!((ab.sumsq() - ba.sumsq()).abs() < 1e-9);
        }

        #[test]
        fn prop_centered_sumsq_matches_direct(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
            let s = SuffStats::from_values(&xs);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let direct: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            prop_assert!((s.centered_sumsq() - direct).abs() < 1e-6 * direct.max(1.0));
        }

        #[test]
        fn prop_order_invariance(mut xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
            let fwd = SuffStats::from_values(&xs);
            xs.reverse();
            let rev = SuffStats::from_values(&xs);
            prop_assert_eq!(fwd.count(), rev.count());
            prop_assert!((fwd.sum() - rev.sum()).abs() <= 1e-9 * fwd.sum().abs().max(1.0));
            prop_assert!((fwd.sumsq() - rev.sumsq()).abs() <= 1e-9 * fwd.sumsq().max(1.0));
        }
    }
}
