//! Batched candidate-scoring primitives for the GaneSH Gibbs sweeps.
//!
//! The sweeps of Algorithms 1–2 score, for one variable (or
//! observation), every candidate cluster it could move to. Each
//! candidate's weight decomposes into tile-local *terms*:
//!
//! * the **removal term** of a tile the item currently contributes to:
//!   `lm(tile − item) − lm(tile)`;
//! * the **addition term** of a candidate tile:
//!   `lm(tile + item) − lm(tile)`;
//! * the **merge-gain term** of two tiles:
//!   `(lm(a ∪ b) − lm(a)) − lm(b)`.
//!
//! The naive path recomputes the item's statistics and both
//! log-marginals for every candidate. The batched path caches the
//! item statistics (they depend only on the sweep-stable partition
//! structure) and the `lm(tile)` values (invalidated in O(1) when an
//! accepted move touches the tile), so a candidate costs one
//! constant-size normal-gamma evaluation.
//!
//! **Bit-identity argument.** Both paths call the *same* term
//! functions below with the *same* argument bits: the cached
//! statistics are produced by the identical accumulation loops (same
//! element order) the naive path runs, and a cached `lm(tile)` is the
//! output of the pure function `NormalGamma::log_marginal` on the
//! identical `SuffStats` bits — memoization cannot change it. Since
//! each term is one fixed floating-point expression and the per-tile
//! terms are accumulated in the same (slot) order, every candidate
//! weight is bit-identical between the two paths; identical weights
//! feed identical `Select-Wtd-Rand` draws, so the sampled clustering
//! is byte-identical. DESIGN.md §9 spells the argument out.

use crate::normal_gamma::NormalGamma;
use crate::suffstats::SuffStats;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Score change of removing `item` from `tile`, given `lm_tile =
/// log_marginal(tile)`: `lm(tile − item) − lm_tile`.
#[inline]
pub fn removal_term(
    prior: &NormalGamma,
    tile: &SuffStats,
    item: &SuffStats,
    lm_tile: f64,
) -> f64 {
    let mut without = *tile;
    without.unmerge(item);
    prior.log_marginal(&without) - lm_tile
}

/// Score change of adding `item` to `tile`, given `lm_tile =
/// log_marginal(tile)`: `lm(tile + item) − lm_tile`.
#[inline]
pub fn addition_term(
    prior: &NormalGamma,
    tile: &SuffStats,
    item: &SuffStats,
    lm_tile: f64,
) -> f64 {
    prior.log_marginal(&SuffStats::merged(tile, item)) - lm_tile
}

/// Score change of merging tiles `a` and `b`, given their
/// log-marginals: `(lm(a ∪ b) − lm_a) − lm_b` — the exact expression
/// (and left-to-right association) of
/// [`NormalGamma::log_merge_gain`].
#[inline]
pub fn merge_gain_term(
    prior: &NormalGamma,
    a: &SuffStats,
    b: &SuffStats,
    lm_a: f64,
    lm_b: f64,
) -> f64 {
    prior.log_marginal(&SuffStats::merged(a, b)) - lm_a - lm_b
}

/// A tiny multiplicative hasher for the caches' small integer-tuple
/// keys. The sweeps do one lookup per candidate, so the default
/// SipHash's per-call setup is a measurable fraction of a cache hit;
/// this folds each written word into the state with one
/// rotate-xor-multiply round (the classic Fx recipe). Not
/// DoS-resistant, which is irrelevant here: the keys are internal
/// variable/cluster indices, never attacker-controlled.
#[derive(Debug, Default, Clone)]
pub struct SmallKeyHasher(u64);

impl SmallKeyHasher {
    const M: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::M);
    }
}

impl Hasher for SmallKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

type BuildSmallKeyHasher = std::hash::BuildHasherDefault<SmallKeyHasher>;

/// An epoch-validated memo table with hit/miss accounting.
///
/// Each entry is stamped with the *epoch* of the state it was computed
/// from; the caller bumps an epoch counter whenever an accepted move
/// invalidates the entries that depend on it, which makes invalidation
/// O(1) regardless of how many entries the epoch guards (stale entries
/// are simply recomputed on next access). Hit/miss totals feed the
/// deterministic `gibbs.cache_*` counters, so lookups must only happen
/// in replicated control flow.
#[derive(Debug, Clone)]
pub struct EpochCache<K, V> {
    map: HashMap<K, (u64, V), BuildSmallKeyHasher>,
    hits: u64,
    misses: u64,
}

impl<K, V> Default for EpochCache<K, V> {
    fn default() -> Self {
        Self {
            map: HashMap::default(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<K: Eq + Hash, V: Clone> EpochCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The value for `key` at `epoch`, computing (and storing) it with
    /// `compute` if absent or stale.
    pub fn fetch(&mut self, key: K, epoch: u64, compute: impl FnOnce() -> V) -> V {
        match self.map.get(&key) {
            Some((e, v)) if *e == epoch => {
                self.hits += 1;
                v.clone()
            }
            _ => {
                self.misses += 1;
                let v = compute();
                self.map.insert(key, (epoch, v.clone()));
                v
            }
        }
    }

    /// The value for `key` if present at exactly `epoch`, counting a
    /// hit or a miss either way. Pair with [`EpochCache::insert`] when
    /// the value is produced elsewhere (e.g. inside the
    /// block-partitioned loop) and stored back afterwards.
    pub fn get(&mut self, key: &K, epoch: u64) -> Option<V> {
        match self.map.get(key) {
            Some((e, v)) if *e == epoch => {
                self.hits += 1;
                Some(v.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store `value` for `key` at `epoch` without touching the
    /// hit/miss totals (the miss was already counted by the failed
    /// [`EpochCache::get`]).
    pub fn insert(&mut self, key: K, epoch: u64, value: V) {
        self.map.insert(key, (epoch, value));
    }

    /// Epoch-valid entries, for validation: `(key, epoch, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (&K, u64, &V)> {
        self.map.iter().map(|(k, (e, v))| (k, *e, v))
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compute (absent or stale entry).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> NormalGamma {
        NormalGamma::default()
    }

    #[test]
    fn removal_term_matches_inline_expression() {
        let p = prior();
        let tile = SuffStats::from_values(&[1.0, 2.5, -0.5, 3.0]);
        let item = SuffStats::from_values(&[2.5]);
        let lm_tile = p.log_marginal(&tile);
        let expect = {
            let mut without = tile;
            without.unmerge(&item);
            p.log_marginal(&without) - p.log_marginal(&tile)
        };
        assert_eq!(
            removal_term(&p, &tile, &item, lm_tile).to_bits(),
            expect.to_bits()
        );
    }

    #[test]
    fn addition_term_matches_inline_expression() {
        let p = prior();
        let tile = SuffStats::from_values(&[1.0, 2.5, -0.5]);
        let item = SuffStats::from_values(&[0.25, 4.0]);
        let lm_tile = p.log_marginal(&tile);
        let expect =
            p.log_marginal(&SuffStats::merged(&tile, &item)) - p.log_marginal(&tile);
        assert_eq!(
            addition_term(&p, &tile, &item, lm_tile).to_bits(),
            expect.to_bits()
        );
    }

    #[test]
    fn merge_gain_term_matches_log_merge_gain() {
        let p = prior();
        let a = SuffStats::from_values(&[1.0, 2.0, 3.0]);
        let b = SuffStats::from_values(&[-1.0, 0.5]);
        let got = merge_gain_term(&p, &a, &b, p.log_marginal(&a), p.log_marginal(&b));
        assert_eq!(got.to_bits(), p.log_merge_gain(&a, &b).to_bits());
    }

    #[test]
    fn epoch_cache_hits_and_invalidates() {
        let mut c: EpochCache<usize, f64> = EpochCache::new();
        assert_eq!(c.fetch(7, 0, || 1.5), 1.5);
        assert_eq!((c.hits(), c.misses()), (0, 1));
        // Same epoch: served from cache, compute not called.
        assert_eq!(c.fetch(7, 0, || unreachable!()), 1.5);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Bumped epoch: stale, recomputed.
        assert_eq!(c.fetch(7, 1, || 2.5), 2.5);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        assert_eq!(c.fetch(7, 1, || unreachable!()), 2.5);
        assert_eq!((c.hits(), c.misses()), (2, 2));
    }

    #[test]
    fn epoch_cache_get_insert_round_trip() {
        let mut c: EpochCache<usize, f64> = EpochCache::new();
        assert_eq!(c.get(&3, 0), None);
        assert_eq!((c.hits(), c.misses()), (0, 1));
        c.insert(3, 0, 9.0);
        assert_eq!((c.hits(), c.misses()), (0, 1), "insert must not count");
        assert_eq!(c.get(&3, 0), Some(9.0));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Stale epoch: miss, and a fresh insert replaces the entry.
        assert_eq!(c.get(&3, 1), None);
        c.insert(3, 1, 10.0);
        assert_eq!(c.get(&3, 1), Some(10.0));
    }
}
