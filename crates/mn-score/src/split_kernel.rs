//! Batched prefix-sum computation of exact separation scores.
//!
//! The split-assignment phase (Alg. 5) evaluates, for one tree node
//! with observations `obs(N)` and one candidate parent `X`, the
//! separation score σ of the predicate `X ≤ v` for *every* candidate
//! value `v` — and the candidate values are exactly `X`'s values at
//! `obs(N)`. The naive pass rescans all `n = |obs(N)|` observations
//! per candidate, O(n²) per (node, parent) segment. This module
//! computes all `n` scores in O(n log n): sort the gathered values
//! once, form the prefix count of left-child members in sorted order,
//! and read each candidate's score off the prefix sums.
//!
//! ## Exact equivalence
//!
//! The naive score counts `correct = #{i : (vals[i] ≤ v) == left[i]}`
//! and returns `(2·correct − n)/n`. With `k = #{i : vals[i] ≤ v}`
//! (the end of `v`'s tied run in sorted order, so ties resolve through
//! the same `≤` predicate) and `L(k)` = left members among the `k`
//! smallest values,
//!
//! ```text
//! correct = L(k) + (#right with value > v) = L(k) + (n − k) − (total_left − L(k))
//!         = 2·L(k) − k + total_right
//! ```
//!
//! — the same integer, fed through the same floating-point expression,
//! so the batched σ is bit-identical to the naive σ. Values must not
//! be NaN (dataset values are finite); ±0.0 ties are merged into one
//! run by canonicalizing `-0.0` before keying, matching the numeric
//! `≤` of the naive count.
//!
//! The sort works on packed integers — an order-preserving transform
//! of the value's bits in the high word, the candidate index in the
//! low word — so the hot comparison is one branch-free `u128` compare
//! with no memory indirection, which is what keeps the kernel ahead of
//! the naive pass even at small `n`. Intra-tie order (by index) does
//! not affect results: scores are read only at run boundaries.

use std::sync::Mutex;

/// Order-preserving integer key of a non-NaN `f64`: `a ≤ b` iff
/// `order_key(a) ≤ order_key(b)`, with `-0.0` canonicalized onto
/// `+0.0` so key equality coincides with numeric equality.
#[inline]
fn order_key(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// Reusable buffers for one in-flight segment computation.
///
/// All allocations are retained across segments, so a worker that
/// processes many (node, parent) segments allocates only on its
/// high-water mark.
#[derive(Debug, Default)]
pub struct SplitScratch {
    keyed: Vec<u128>,
    sigmas: Vec<f64>,
    cons: Vec<u64>,
}

impl SplitScratch {
    /// Fresh scratch with no capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Separation scores for every candidate value of one (node,
    /// parent) segment: `sigmas()[j]` is the score of the predicate
    /// `row[·] ≤ row[node_obs[j]]`, bit-identical to the naive
    /// per-candidate pass. `left_mask[i]` marks whether `node_obs[i]`
    /// belongs to the node's left child.
    pub fn compute(&mut self, row: &[f64], node_obs: &[usize], left_mask: &[bool]) -> &[f64] {
        let n = node_obs.len();
        assert_eq!(n, left_mask.len());
        debug_assert!(node_obs.iter().all(|&o| !row[o].is_nan()));

        // Gather the parent's values at the node's observations once,
        // directly into packed sort keys.
        self.keyed.clear();
        self.keyed.extend(
            node_obs
                .iter()
                .enumerate()
                .map(|(i, &o)| (u128::from(order_key(row[o])) << 32) | i as u128),
        );
        self.keyed.sort_unstable();

        let total_left = left_mask.iter().filter(|&&b| b).count();
        let total_right = n - total_left;

        self.sigmas.clear();
        self.sigmas.resize(n, 0.0);
        // Walk runs of equal values: every candidate of a run has
        // k = run end (the count of values ≤ the candidate's value),
        // and `acc` accumulates the left-child members seen so far.
        let mut t = 0usize;
        let mut acc = 0usize;
        while t < n {
            let key = self.keyed[t] >> 32;
            let mut end = t + 1;
            while end < n && self.keyed[end] >> 32 == key {
                end += 1;
            }
            for &packed in &self.keyed[t..end] {
                acc += usize::from(left_mask[packed as u32 as usize]);
            }
            let k = end;
            let left_le = acc;
            let right_gt = total_right - (k - left_le);
            let correct = left_le + right_gt;
            let sigma = (2.0 * correct as f64 - n as f64) / n as f64;
            for &packed in &self.keyed[t..end] {
                self.sigmas[packed as u32 as usize] = sigma;
            }
            t = end;
        }
        &self.sigmas
    }

    /// [`SplitScratch::compute`] for small nodes (`n ≤ 64`) with a
    /// bit-packed left mask, additionally emitting each candidate's
    /// *consistency mask*: bit `i` of `cons[j]` is set iff
    /// `(row[node_obs[i]] ≤ row[node_obs[j]]) == (bit i of lmask)` —
    /// exactly the per-pick predicate of the Monte-Carlo confirmation
    /// loop, so `s_eff · n` random picks reduce to `s_eff · n` bit
    /// tests against one precomputed word per candidate.
    ///
    /// The masks fall out of the same sorted run walk that produces σ:
    /// `bmask` accumulates the positions whose value is ≤ the current
    /// run's value, so a run's consistency mask is
    /// `!(bmask ^ lmask)` (a pick agrees iff its ≤-bit equals its
    /// left-bit). σ values are bit-identical to
    /// [`SplitScratch::compute`] — same integer counts through the
    /// same float expression.
    ///
    /// Returns `(sigmas, cons)` indexed by candidate position.
    pub fn compute_small(
        &mut self,
        row: &[f64],
        node_obs: &[usize],
        lmask: u64,
    ) -> (&[f64], &[u64]) {
        let n = node_obs.len();
        assert!(n <= 64, "compute_small requires n ≤ 64, got {n}");
        debug_assert!(node_obs.iter().all(|&o| !row[o].is_nan()));

        self.keyed.clear();
        self.keyed.extend(
            node_obs
                .iter()
                .enumerate()
                .map(|(i, &o)| (u128::from(order_key(row[o])) << 32) | i as u128),
        );
        self.keyed.sort_unstable();

        let mask_n: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let lmask = lmask & mask_n;
        let total_left = lmask.count_ones() as usize;
        let total_right = n - total_left;

        self.sigmas.clear();
        self.sigmas.resize(n, 0.0);
        self.cons.clear();
        self.cons.resize(n, 0);

        let mut t = 0usize;
        let mut acc = 0usize;
        let mut bmask = 0u64;
        while t < n {
            let key = self.keyed[t] >> 32;
            let mut end = t + 1;
            while end < n && self.keyed[end] >> 32 == key {
                end += 1;
            }
            for &packed in &self.keyed[t..end] {
                let idx = packed as u32 as usize;
                acc += usize::from(lmask >> idx & 1 == 1);
                bmask |= 1u64 << idx;
            }
            let k = end;
            let left_le = acc;
            let right_gt = total_right - (k - left_le);
            let correct = left_le + right_gt;
            let sigma = (2.0 * correct as f64 - n as f64) / n as f64;
            let cons = !(bmask ^ lmask) & mask_n;
            for &packed in &self.keyed[t..end] {
                let idx = packed as u32 as usize;
                self.sigmas[idx] = sigma;
                self.cons[idx] = cons;
            }
            t = end;
        }
        (&self.sigmas, &self.cons)
    }
}

/// The naive per-candidate pass over gathered values — O(n) per
/// candidate, O(n²) per segment. This is the reference the kernel is
/// tested (and benchmarked) against; it mirrors the per-item
/// separation-score loop of the split-assignment phase.
pub fn naive_sigmas(vals: &[f64], left_mask: &[bool], out: &mut Vec<f64>) {
    let n = vals.len();
    assert_eq!(n, left_mask.len());
    out.clear();
    out.extend((0..n).map(|j| {
        let value = vals[j];
        let mut correct = 0usize;
        for (&v, &on_left) in vals.iter().zip(left_mask) {
            if (v <= value) == on_left {
                correct += 1;
            }
        }
        (2.0 * correct as f64 - n as f64) / n as f64
    }));
}

/// A pool of reusable scratch buffers shared across worker threads
/// (by default [`SplitScratch`], but any `Default` scratch type works —
/// the split phase pools richer per-worker state through the same
/// mechanism).
///
/// Engines hand segments to whichever thread owns the block; a worker
/// checks a scratch out for the duration of one batch call and returns
/// it on drop, so the number of live buffers equals the peak number of
/// concurrent workers, not the number of segments — and a pool owned
/// by a long-lived phase context keeps its buffers warm across calls,
/// making the steady state allocation-free.
#[derive(Debug, Default)]
pub struct ScratchPool<T: Default = SplitScratch> {
    pool: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check a scratch out of the pool (allocating a fresh one if the
    /// pool is dry). Returned to the pool when the guard drops.
    pub fn acquire(&self) -> ScratchGuard<'_, T> {
        let scratch = self.pool.lock().unwrap().pop().unwrap_or_default();
        ScratchGuard {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Number of idle buffers currently in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().unwrap().len()
    }
}

/// Checked-out scratch; returns its buffers to the pool on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a, T: Default = SplitScratch> {
    pool: &'a ScratchPool<T>,
    scratch: Option<T>,
}

impl<T: Default> std::ops::Deref for ScratchGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.scratch.as_ref().unwrap()
    }
}

impl<T: Default> std::ops::DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.scratch.as_mut().unwrap()
    }
}

impl<T: Default> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.pool.lock().unwrap().push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalence(vals: &[f64], left_mask: &[bool]) {
        let n = vals.len();
        let obs: Vec<usize> = (0..n).collect();
        let mut scratch = SplitScratch::new();
        let kernel = scratch.compute(vals, &obs, left_mask).to_vec();
        let mut naive = Vec::new();
        naive_sigmas(vals, left_mask, &mut naive);
        assert_eq!(kernel.len(), n);
        for j in 0..n {
            assert!(
                kernel[j].to_bits() == naive[j].to_bits(),
                "candidate {j}: kernel {} vs naive {} for vals {vals:?}",
                kernel[j],
                naive[j]
            );
        }
    }

    #[test]
    fn matches_naive_on_distinct_values() {
        check_equivalence(
            &[3.0, -1.0, 2.0, 0.5, 7.0],
            &[true, true, false, true, false],
        );
    }

    #[test]
    fn matches_naive_on_heavy_duplicates() {
        check_equivalence(
            &[1.0, 1.0, 1.0, 2.0, 2.0, 1.0],
            &[true, false, true, false, true, false],
        );
        check_equivalence(&[5.0; 8], &[true, false, true, true, false, false, true, false]);
    }

    #[test]
    fn matches_naive_when_all_on_one_side() {
        check_equivalence(&[1.0, 2.0, 3.0, 4.0], &[true; 4]);
        check_equivalence(&[1.0, 2.0, 3.0, 4.0], &[false; 4]);
    }

    #[test]
    fn matches_naive_with_signed_zeros() {
        check_equivalence(&[-0.0, 0.0, -1.0, 0.0, -0.0], &[true, false, true, false, true]);
    }

    #[test]
    fn perfect_split_scores_one() {
        let vals = [0.0, 1.0, 2.0, 3.0];
        let mask = [true, true, false, false];
        let mut scratch = SplitScratch::new();
        let sigmas = scratch.compute(&vals, &[0, 1, 2, 3], &mask);
        // The candidate at the boundary value (1.0) separates perfectly.
        assert_eq!(sigmas[1], 1.0);
        // The top value puts everything left: half correct.
        assert_eq!(sigmas[3], 0.0);
    }

    #[test]
    fn gathers_through_observation_indices() {
        // row is wider than the node; node_obs selects and orders.
        let row = [9.0, 0.0, 5.0, 2.0, 7.0];
        let node_obs = [3usize, 1, 4];
        let mask = [true, true, false];
        let mut scratch = SplitScratch::new();
        let kernel = scratch.compute(&row, &node_obs, &mask).to_vec();
        let gathered: Vec<f64> = node_obs.iter().map(|&o| row[o]).collect();
        let mut naive = Vec::new();
        naive_sigmas(&gathered, &mask, &mut naive);
        assert_eq!(kernel, naive);
    }

    #[test]
    fn scratch_is_reusable_across_segments() {
        let mut scratch = SplitScratch::new();
        let a = scratch
            .compute(&[1.0, 2.0], &[0, 1], &[true, false])
            .to_vec();
        // A larger segment, then the first again: identical result.
        scratch.compute(
            &[5.0, 1.0, 3.0, 3.0, 2.0],
            &[0, 1, 2, 3, 4],
            &[false, true, true, false, true],
        );
        let b = scratch
            .compute(&[1.0, 2.0], &[0, 1], &[true, false])
            .to_vec();
        assert_eq!(a, b);
    }

    fn check_small(vals: &[f64], left: &[bool]) {
        let n = vals.len();
        let obs: Vec<usize> = (0..n).collect();
        let mut lmask = 0u64;
        for (i, &b) in left.iter().enumerate() {
            lmask |= (b as u64) << i;
        }
        let mut scratch = SplitScratch::new();
        let wide = scratch.compute(vals, &obs, left).to_vec();
        let (sigmas, cons) = scratch.compute_small(vals, &obs, lmask);
        let (sigmas, cons) = (sigmas.to_vec(), cons.to_vec());
        for j in 0..n {
            assert_eq!(
                sigmas[j].to_bits(),
                wide[j].to_bits(),
                "sigma {j} diverged for {vals:?}"
            );
            for i in 0..n {
                let want = (vals[i] <= vals[j]) == left[i];
                let got = cons[j] >> i & 1 == 1;
                assert_eq!(got, want, "cons[{j}] bit {i} for {vals:?}");
            }
        }
    }

    #[test]
    fn small_masks_match_direct_predicate() {
        check_small(
            &[3.0, -1.0, 2.0, 0.5, 7.0],
            &[true, true, false, true, false],
        );
        check_small(
            &[1.0, 1.0, 1.0, 2.0, 2.0, 1.0],
            &[true, false, true, false, true, false],
        );
        check_small(&[-0.0, 0.0, -1.0, 0.0, -0.0], &[true, false, true, false, true]);
        check_small(&[5.0; 8], &[true, false, true, true, false, false, true, false]);
    }

    #[test]
    fn small_handles_full_64_wide_node() {
        let vals: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let left: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        check_small(&vals, &left);
    }

    #[test]
    fn small_randomized_against_wide() {
        // Deterministic pseudo-random sweep across sizes and tie
        // densities.
        let mut state = 0x9e37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..60 {
            let n = 1 + (round % 64);
            let vals: Vec<f64> = (0..n).map(|_| (next() % 7) as f64 - 3.0).collect();
            let left: Vec<bool> = (0..n).map(|_| next() % 2 == 0).collect();
            check_small(&vals, &left);
        }
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool: ScratchPool<SplitScratch> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut g1 = pool.acquire();
            let mut g2 = pool.acquire();
            g1.compute(&[1.0], &[0], &[true]);
            g2.compute(&[2.0], &[0], &[false]);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        {
            let _g = pool.acquire();
            assert_eq!(pool.idle(), 1);
        }
        assert_eq!(pool.idle(), 2);
    }
}
