//! Normal-gamma Bayesian marginal likelihood.
//!
//! GaneSH (Joshi et al. 2008) scores a co-clustering with a
//! decomposable Bayesian score: the sum over tiles (variable cluster ×
//! observation cluster) of the marginal log-likelihood of the tile's
//! values under a Gaussian model with unknown mean and precision and a
//! conjugate normal-gamma prior. The same marginal scores
//! regression-tree nodes and splits in the module-learning task. This
//! module implements that marginal in closed form.
//!
//! With prior `μ, τ ~ NormalGamma(μ₀, λ₀, α₀, β₀)` and data summarized
//! by [`SuffStats`] `(N, Σx, Σx²)`:
//!
//! ```text
//! λ_N = λ₀ + N          α_N = α₀ + N/2
//! β_N = β₀ + ½ Σ(x-x̄)² + λ₀ N (x̄-μ₀)² / (2 λ_N)
//! ln p(data) = ln Γ(α_N) - ln Γ(α₀) + α₀ ln β₀ - α_N ln β_N
//!              + ½ (ln λ₀ - ln λ_N) - (N/2) ln(2π)
//! ```

use crate::special::{ln_gamma, LnGammaTable};
use crate::suffstats::SuffStats;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Conjugate normal-gamma prior over a Gaussian's (mean, precision).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalGamma {
    /// Prior mean μ₀.
    pub mu0: f64,
    /// Prior pseudo-count on the mean, λ₀ > 0.
    pub lambda0: f64,
    /// Gamma shape α₀ > 0.
    pub alpha0: f64,
    /// Gamma rate β₀ > 0.
    pub beta0: f64,
}

impl Default for NormalGamma {
    /// The weakly-informative default used throughout the experiments:
    /// zero prior mean (data is standardized), 0.1 pseudo-observations,
    /// and a unit-scale prior on the variance. Matches the spirit of
    /// Lemon-Tree's defaults (normalized expression data, vague prior).
    fn default() -> Self {
        Self {
            mu0: 0.0,
            lambda0: 0.1,
            alpha0: 0.1,
            beta0: 0.1,
        }
    }
}

impl NormalGamma {
    /// Validate the prior (all concentration parameters positive).
    pub fn validated(self) -> Result<Self, String> {
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(self.lambda0) || !positive(self.alpha0) || !positive(self.beta0) {
            return Err(format!(
                "normal-gamma prior parameters must be positive: {self:?}"
            ));
        }
        if !self.mu0.is_finite() {
            return Err(format!("prior mean must be finite: {self:?}"));
        }
        Ok(self)
    }

    /// Marginal log-likelihood `ln p(data)` of a block.
    ///
    /// The empty block scores exactly 0 (`p(∅) = 1`), which makes the
    /// co-clustering score decomposable and lets moves create/destroy
    /// clusters without special cases.
    pub fn log_marginal(&self, stats: &SuffStats) -> f64 {
        let n = stats.count() as f64;
        if stats.is_empty() {
            return 0.0;
        }
        let mean = stats.mean();
        let lambda_n = self.lambda0 + n;
        let alpha_n = self.alpha0 + 0.5 * n;
        let dm = mean - self.mu0;
        let beta_n = self.beta0
            + 0.5 * stats.centered_sumsq()
            + self.lambda0 * n * dm * dm / (2.0 * lambda_n);
        ln_gamma(alpha_n) - ln_gamma(self.alpha0) + self.alpha0 * self.beta0.ln()
            - alpha_n * beta_n.ln()
            + 0.5 * (self.lambda0.ln() - lambda_n.ln())
            - 0.5 * n * (2.0 * PI).ln()
    }

    /// Marginal log-likelihood of a raw slice of values.
    pub fn log_marginal_values(&self, values: &[f64]) -> f64 {
        self.log_marginal(&SuffStats::from_values(values))
    }

    /// [`NormalGamma::log_marginal`] with the two `ln Γ` evaluations
    /// served from a memo `table` keyed to this prior's `α₀`.
    ///
    /// Bit-identical to the direct form: `α_N = α₀ + ½·N` is exactly
    /// the argument [`LnGammaTable::get`] memoizes at index `N`, and
    /// `ln Γ(α₀)` is the table's hoisted [`LnGammaTable::base`]. Every
    /// other term is computed by the same expressions in the same
    /// order.
    pub fn log_marginal_with(&self, stats: &SuffStats, table: &LnGammaTable) -> f64 {
        debug_assert_eq!(
            table.alpha0().to_bits(),
            self.alpha0.to_bits(),
            "ln-gamma table keyed to a different prior shape"
        );
        let n = stats.count() as f64;
        if stats.is_empty() {
            return 0.0;
        }
        let mean = stats.mean();
        let lambda_n = self.lambda0 + n;
        let alpha_n = self.alpha0 + 0.5 * n;
        let dm = mean - self.mu0;
        let beta_n = self.beta0
            + 0.5 * stats.centered_sumsq()
            + self.lambda0 * n * dm * dm / (2.0 * lambda_n);
        table.get(stats.count() as usize) - table.base() + self.alpha0 * self.beta0.ln()
            - alpha_n * beta_n.ln()
            + 0.5 * (self.lambda0.ln() - lambda_n.ln())
            - 0.5 * n * (2.0 * PI).ln()
    }

    /// Batched [`NormalGamma::log_marginal`]: score every block in
    /// `stats` through `scratch`'s memo table, returning the scores in
    /// input order (bit-identical to per-block direct calls).
    ///
    /// The table is warmed once to the largest count in the batch, so
    /// the per-block lookups take only the read lock.
    pub fn log_marginal_batch<'a>(
        &self,
        stats: &[SuffStats],
        scratch: &'a mut ScoreScratch,
    ) -> &'a [f64] {
        let kmax = stats.iter().map(|s| s.count()).max().unwrap_or(0);
        scratch.table.warm(kmax as usize);
        scratch.out.clear();
        for s in stats {
            scratch.out.push(self.log_marginal_with(s, &scratch.table));
        }
        &scratch.out
    }

    /// Log posterior-predictive density of one further value `x` after
    /// observing `stats` — a Student-t density. Used by tests to verify
    /// the chain-rule consistency of [`NormalGamma::log_marginal`], and
    /// by the split-posterior sampler as a per-observation score.
    pub fn log_predictive(&self, stats: &SuffStats, x: f64) -> f64 {
        let mut with_x = *stats;
        with_x.add(x);
        self.log_marginal(&with_x) - self.log_marginal(stats)
    }

    /// Bayes-factor style merge score used by hierarchical clustering:
    /// `ln p(a ∪ b) - ln p(a) - ln p(b)`. Positive values mean the
    /// merged model explains the data better than keeping the blocks
    /// separate.
    pub fn log_merge_gain(&self, a: &SuffStats, b: &SuffStats) -> f64 {
        self.log_marginal(&SuffStats::merged(a, b)) - self.log_marginal(a) - self.log_marginal(b)
    }

    /// [`NormalGamma::log_merge_gain`] with all three marginals served
    /// through the memo `table` (three table lookups, zero fresh
    /// Lanczos evaluations once warmed). Bit-identical to the direct
    /// form.
    pub fn log_merge_gain_with(&self, a: &SuffStats, b: &SuffStats, table: &LnGammaTable) -> f64 {
        self.log_marginal_with(&SuffStats::merged(a, b), table)
            - self.log_marginal_with(a, table)
            - self.log_marginal_with(b, table)
    }
}

/// Reusable scratch for [`NormalGamma::log_marginal_batch`]: the memo
/// table plus the output buffer, owned by one scoring phase (one
/// checkpoint unit) and reused across batches so the steady state is
/// allocation-free.
#[derive(Debug)]
pub struct ScoreScratch {
    table: LnGammaTable,
    out: Vec<f64>,
}

impl ScoreScratch {
    /// Create scratch keyed to `prior`'s shape `α₀`.
    pub fn new(prior: &NormalGamma) -> Self {
        Self {
            table: LnGammaTable::new(prior.alpha0),
            out: Vec::new(),
        }
    }

    /// The underlying memo table (for callers mixing batched and
    /// single-block scoring against the same memo).
    pub fn table(&self) -> &LnGammaTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn prior() -> NormalGamma {
        NormalGamma::default()
    }

    #[test]
    fn empty_scores_zero() {
        assert_eq!(prior().log_marginal(&SuffStats::empty()), 0.0);
    }

    #[test]
    fn single_point_matches_direct_integral() {
        // For one observation, the marginal is a Student-t density:
        // p(x) = t_{2α₀}(x | μ₀, β₀(λ₀+1)/(α₀ λ₀)).
        let p = NormalGamma {
            mu0: 0.5,
            lambda0: 2.0,
            alpha0: 3.0,
            beta0: 1.5,
        };
        let x = 1.25;
        let got = p.log_marginal_values(&[x]);

        let nu = 2.0 * p.alpha0;
        let scale2 = p.beta0 * (p.lambda0 + 1.0) / (p.alpha0 * p.lambda0);
        let z = (x - p.mu0) * (x - p.mu0) / scale2;
        let want = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * PI * scale2).ln()
            - (nu + 1.0) / 2.0 * (1.0 + z / nu).ln();
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn chain_rule_consistency() {
        // ln p(x1..xk) must equal Σ_i ln p(x_i | x_1..x_{i-1}).
        let p = prior();
        let xs = [0.3, -1.2, 2.5, 0.0, 0.9];
        let joint = p.log_marginal_values(&xs);
        let mut acc = 0.0;
        let mut stats = SuffStats::empty();
        for &x in &xs {
            acc += p.log_predictive(&stats, x);
            stats.add(x);
        }
        assert!((joint - acc).abs() < 1e-10, "{joint} vs {acc}");
    }

    #[test]
    fn order_invariance() {
        let p = prior();
        let a = p.log_marginal_values(&[1.0, 2.0, 3.0]);
        let b = p.log_marginal_values(&[3.0, 1.0, 2.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn tight_cluster_beats_dispersed() {
        // A block of near-identical values must score higher than a
        // dispersed block of the same size: this is what drives
        // correlated variables into the same module.
        let p = prior();
        let tight = p.log_marginal_values(&[1.0, 1.01, 0.99, 1.0, 1.02]);
        let spread = p.log_marginal_values(&[-3.0, 2.0, 7.0, -5.0, 4.0]);
        assert!(tight > spread);
    }

    #[test]
    fn merge_gain_positive_for_same_distribution() {
        // Two halves of one homogeneous sample: merging should win.
        let p = prior();
        let a = SuffStats::from_values(&[0.1, -0.2, 0.05, 0.12]);
        let b = SuffStats::from_values(&[-0.08, 0.15, -0.11, 0.02]);
        assert!(p.log_merge_gain(&a, &b) > 0.0);
    }

    #[test]
    fn merge_gain_negative_for_separated_clusters() {
        // Two well-separated tight clusters: keeping them apart wins.
        let p = prior();
        let a = SuffStats::from_values(&[10.0, 10.1, 9.9, 10.05]);
        let b = SuffStats::from_values(&[-10.0, -9.9, -10.1, -10.02]);
        assert!(p.log_merge_gain(&a, &b) < 0.0);
    }

    #[test]
    fn validation_rejects_bad_priors() {
        assert!(NormalGamma {
            lambda0: 0.0,
            ..prior()
        }
        .validated()
        .is_err());
        assert!(NormalGamma {
            alpha0: -1.0,
            ..prior()
        }
        .validated()
        .is_err());
        assert!(NormalGamma {
            mu0: f64::NAN,
            ..prior()
        }
        .validated()
        .is_err());
        assert!(prior().validated().is_ok());
    }

    #[test]
    fn table_backed_marginal_is_bit_identical() {
        let p = prior();
        let table = LnGammaTable::new(p.alpha0);
        let samples: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.7],
            vec![0.3, -1.2, 2.5, 0.0, 0.9],
            (0..57).map(|i| (i as f64) * 0.37 - 9.0).collect(),
        ];
        for xs in &samples {
            let stats = SuffStats::from_values(xs);
            let direct = p.log_marginal(&stats);
            let memo = p.log_marginal_with(&stats, &table);
            assert_eq!(memo.to_bits(), direct.to_bits(), "n={}", xs.len());
        }
    }

    #[test]
    fn table_backed_merge_gain_is_bit_identical() {
        let p = prior();
        let table = LnGammaTable::new(p.alpha0);
        let a = SuffStats::from_values(&[0.1, -0.2, 0.05, 0.12]);
        let b = SuffStats::from_values(&[-0.08, 0.15, -0.11]);
        assert_eq!(
            p.log_merge_gain_with(&a, &b, &table).to_bits(),
            p.log_merge_gain(&a, &b).to_bits()
        );
    }

    #[test]
    fn batch_matches_single_block_calls() {
        let p = prior();
        let blocks: Vec<SuffStats> = vec![
            SuffStats::empty(),
            SuffStats::from_values(&[1.0]),
            SuffStats::from_values(&[0.4, -0.6, 0.2]),
            SuffStats::from_values(&[3.0, 3.1, 2.9, 3.05, 3.2, 2.8]),
        ];
        let mut scratch = ScoreScratch::new(&p);
        for _ in 0..2 {
            // Second pass runs fully memoized — still bit-identical.
            let got: Vec<f64> = p.log_marginal_batch(&blocks, &mut scratch).to_vec();
            let want: Vec<f64> = blocks.iter().map(|s| p.log_marginal(s)).collect();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_table_backed_marginal_bits(xs in prop::collection::vec(-1e2f64..1e2, 0..60)) {
            let p = prior();
            let table = LnGammaTable::new(p.alpha0);
            let stats = SuffStats::from_values(&xs);
            prop_assert_eq!(
                p.log_marginal_with(&stats, &table).to_bits(),
                p.log_marginal(&stats).to_bits()
            );
        }

        #[test]
        fn prop_marginal_is_finite(xs in prop::collection::vec(-1e2f64..1e2, 1..60)) {
            let v = prior().log_marginal_values(&xs);
            prop_assert!(v.is_finite());
        }

        #[test]
        fn prop_chain_rule(xs in prop::collection::vec(-50f64..50.0, 1..25)) {
            let p = prior();
            let joint = p.log_marginal_values(&xs);
            let mut acc = 0.0;
            let mut stats = SuffStats::empty();
            for &x in &xs {
                acc += p.log_predictive(&stats, x);
                stats.add(x);
            }
            prop_assert!((joint - acc).abs() < 1e-7 * joint.abs().max(1.0));
        }

        #[test]
        fn prop_merge_gain_symmetric(
            xs in prop::collection::vec(-10f64..10.0, 1..20),
            ys in prop::collection::vec(-10f64..10.0, 1..20),
        ) {
            let p = prior();
            let a = SuffStats::from_values(&xs);
            let b = SuffStats::from_values(&ys);
            let g1 = p.log_merge_gain(&a, &b);
            let g2 = p.log_merge_gain(&b, &a);
            prop_assert!((g1 - g2).abs() < 1e-9);
        }
    }
}
