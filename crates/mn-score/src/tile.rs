//! Tile scores over an expression matrix.
//!
//! The GaneSH score of a co-clustering decomposes over *tiles*: for a
//! variable cluster `V` with observation clusters `O(V) = {O_1, ...}`,
//! each pair `(V, O_j)` contributes the normal-gamma marginal of the
//! values `{ D[v][o] : v ∈ V, o ∈ O_j }`. These helpers compute tile
//! statistics and full co-clustering scores from scratch; they are the
//! ground truth the incremental bookkeeping in `mn-gibbs` is tested
//! against, and the implementation the *reference* (Lemon-Tree-like)
//! scorer mode uses directly.

use crate::normal_gamma::{NormalGamma, ScoreScratch};
use crate::suffstats::SuffStats;
use mn_data::Dataset;

/// Statistics of the tile `vars × obs`.
pub fn tile_stats(data: &Dataset, vars: &[usize], obs: &[usize]) -> SuffStats {
    let mut s = SuffStats::empty();
    for &v in vars {
        let row = data.values(v);
        for &o in obs {
            s.add(row[o]);
        }
    }
    s
}

/// Statistics of one variable restricted to a set of observations.
pub fn var_obs_stats(data: &Dataset, var: usize, obs: &[usize]) -> SuffStats {
    let row = data.values(var);
    let mut s = SuffStats::empty();
    for &o in obs {
        s.add(row[o]);
    }
    s
}

/// Marginal score of the tile `vars × obs`.
pub fn tile_score(prior: &NormalGamma, data: &Dataset, vars: &[usize], obs: &[usize]) -> f64 {
    prior.log_marginal(&tile_stats(data, vars, obs))
}

/// Full co-clustering score: variable clusters with per-cluster
/// observation partitions.
///
/// `obs_partitions[c]` lists the observation clusters of variable
/// cluster `c`. Every variable index may appear in at most one cluster;
/// empty clusters contribute 0.
pub fn coclustering_score(
    prior: &NormalGamma,
    data: &Dataset,
    var_clusters: &[Vec<usize>],
    obs_partitions: &[Vec<Vec<usize>>],
) -> f64 {
    assert_eq!(
        var_clusters.len(),
        obs_partitions.len(),
        "every variable cluster needs an observation partition"
    );
    // Gather every tile's statistics in iteration order, then score the
    // whole batch through one memo table: ln Γ(α₀ + k/2) is evaluated
    // once per distinct tile size instead of twice per tile, and the
    // left-to-right summation order (hence the f64 result) is unchanged.
    let mut tiles = Vec::new();
    for (vars, obs_clusters) in var_clusters.iter().zip(obs_partitions) {
        for obs in obs_clusters {
            tiles.push(tile_stats(data, vars, obs));
        }
    }
    let mut scratch = ScoreScratch::new(prior);
    let mut total = 0.0;
    for &score in prior.log_marginal_batch(&tiles, &mut scratch) {
        total += score;
    }
    total
}

/// Score of one variable cluster under a fixed observation partition —
/// the quantity whose change drives `Reassign-Var-Cluster` (Alg. 1).
pub fn var_cluster_score(
    prior: &NormalGamma,
    data: &Dataset,
    vars: &[usize],
    obs_clusters: &[Vec<usize>],
) -> f64 {
    obs_clusters
        .iter()
        .map(|obs| tile_score(prior, data, vars, obs))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_data::Matrix;

    fn data() -> Dataset {
        // 4 vars x 4 obs with an obvious 2x2 block structure.
        Dataset::new(
            Matrix::from_vec(
                4,
                4,
                vec![
                    1.0, 1.1, -1.0, -1.1, //
                    0.9, 1.0, -0.9, -1.0, //
                    -2.0, -2.1, 2.0, 2.1, //
                    -1.9, -2.0, 1.9, 2.0,
                ],
            ),
            None,
            None,
        )
    }

    #[test]
    fn tile_stats_counts_cells() {
        let d = data();
        let s = tile_stats(&d, &[0, 1], &[0, 1]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn var_obs_stats_matches_tile_stats() {
        let d = data();
        let a = var_obs_stats(&d, 2, &[1, 3]);
        let b = tile_stats(&d, &[2], &[1, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_structure_scores_higher_than_scrambled() {
        let d = data();
        let prior = NormalGamma::default();
        // Matched co-clustering: vars {0,1} and {2,3}, obs split {0,1}/{2,3}.
        let good = coclustering_score(
            &prior,
            &d,
            &[vec![0, 1], vec![2, 3]],
            &[
                vec![vec![0, 1], vec![2, 3]],
                vec![vec![0, 1], vec![2, 3]],
            ],
        );
        // Scrambled variable clusters.
        let bad = coclustering_score(
            &prior,
            &d,
            &[vec![0, 2], vec![1, 3]],
            &[
                vec![vec![0, 1], vec![2, 3]],
                vec![vec![0, 1], vec![2, 3]],
            ],
        );
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn coclustering_score_is_sum_of_var_cluster_scores() {
        let d = data();
        let prior = NormalGamma::default();
        let vc = vec![vec![0, 1], vec![2, 3]];
        let op = vec![
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 2], vec![1, 3]],
        ];
        let total = coclustering_score(&prior, &d, &vc, &op);
        let parts: f64 = vc
            .iter()
            .zip(&op)
            .map(|(vars, obs)| var_cluster_score(&prior, &d, vars, obs))
            .sum();
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn empty_clusters_contribute_zero() {
        let d = data();
        let prior = NormalGamma::default();
        let with_empty = coclustering_score(
            &prior,
            &d,
            &[vec![0, 1], vec![]],
            &[vec![vec![0, 1, 2, 3]], vec![]],
        );
        let without = coclustering_score(&prior, &d, &[vec![0, 1]], &[vec![vec![0, 1, 2, 3]]]);
        assert!((with_empty - without).abs() < 1e-12);
    }
}
