//! Special functions needed by the Bayesian scores.
//!
//! Only `ln Γ` is required (the normal-gamma marginal likelihood is a
//! ratio of gamma functions). Implemented with the Lanczos
//! approximation (g = 7, 9 terms) rather than adding a numerics
//! dependency; accuracy is ~15 significant digits over the positive
//! axis, verified against exact factorials and half-integer identities
//! in the tests below.

use std::f64::consts::PI;

/// Lanczos coefficients for g = 7, n = 9 (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the reflection formula for `x < 0.5` (needed only for
/// completeness; the scores call this with `x ≥ 0.5`).
///
/// # Panics
/// Panics on non-finite input or on non-positive integers (poles).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma of non-finite {x}");
    if x <= 0.0 && x == x.floor() {
        panic!("ln_gamma pole at {x}");
    }
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx).
        let sin_pi_x = (PI * x).sin();
        return PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Memo table of `ln Γ(α₀ + k/2)` for integer `k ≥ 0`.
///
/// Every `ln Γ` argument on the scoring hot path has the half-integer
/// offset form `α₀ + N/2` for the run's fixed prior shape `α₀` and an
/// integer count `N` (see [`crate::NormalGamma::log_marginal`]:
/// `α_N = α₀ + ½·N`). The table memoizes the *same* Lanczos evaluation
/// ([`ln_gamma`]) indexed by `k = N`, so cached values are bit-identical
/// to direct calls **by construction**: the cell for `k` is filled with
/// `ln_gamma(alpha0 + 0.5 * (k as f64))`, the exact f64 expression the
/// direct path evaluates, and `ln_gamma` is a pure deterministic
/// function. No approximation, rounding, or alternative recurrence is
/// involved anywhere — only call-count changes — so the determinism
/// contract needs no A/B toggle.
///
/// The table is lazily grown (dense, from 0 up) behind an [`RwLock`]:
/// steady-state lookups take the read lock only. One table is scoped to
/// one *checkpoint unit* (a module-tree build, one Gibbs sweep), never
/// to a whole run, so counter deltas replayed on resume are identical
/// to the uninterrupted run's.
///
/// The table intentionally does **not** count its own hits/misses:
/// under the thread engine several workers may race to first-fill the
/// same cell, which would make such counts scheduling-dependent.
/// Callers account calls/hits analytically in replicated control flow
/// (`score.ln_gamma_calls` / `score.ln_gamma_table_hits`).
#[derive(Debug)]
pub struct LnGammaTable {
    alpha0: f64,
    base: f64,
    cells: std::sync::RwLock<Vec<f64>>,
}

impl LnGammaTable {
    /// Create an empty table for prior shape `alpha0 > 0`.
    ///
    /// `ln Γ(α₀)` itself (the `k = 0` cell, subtracted in every
    /// marginal) is computed eagerly and served lock-free via
    /// [`LnGammaTable::base`].
    pub fn new(alpha0: f64) -> Self {
        assert!(
            alpha0.is_finite() && alpha0 > 0.0,
            "table prior shape must be positive and finite, got {alpha0}"
        );
        Self {
            alpha0,
            base: ln_gamma(alpha0),
            cells: std::sync::RwLock::new(Vec::new()),
        }
    }

    /// The prior shape this table is keyed to.
    #[inline]
    pub fn alpha0(&self) -> f64 {
        self.alpha0
    }

    /// `ln Γ(α₀)` — the half of every marginal's gamma ratio that does
    /// not depend on the data, hoisted out of the lock.
    #[inline]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// `ln Γ(α₀ + k/2)`, bit-identical to
    /// `ln_gamma(alpha0 + 0.5 * (k as f64))`.
    ///
    /// Serves from the memo when present; otherwise densely fills
    /// through `k` under the write lock (idempotent under races — every
    /// filler computes the same pure values).
    pub fn get(&self, k: usize) -> f64 {
        {
            let cells = self.cells.read().expect("ln-gamma table poisoned");
            if let Some(&v) = cells.get(k) {
                return v;
            }
        }
        self.fill_through(k)
    }

    /// Pre-fill the table through index `kmax`, so subsequent
    /// [`LnGammaTable::get`] calls up to `kmax` take only the read
    /// lock. Returns the number of newly computed cells.
    pub fn warm(&self, kmax: usize) -> usize {
        let before = self.len();
        if before <= kmax {
            self.fill_through(kmax);
        }
        self.len() - before
    }

    /// Number of memoized cells (indices `0..len()` are filled).
    pub fn len(&self) -> usize {
        self.cells.read().expect("ln-gamma table poisoned").len()
    }

    /// Whether no cell has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn fill_through(&self, k: usize) -> f64 {
        let mut cells = self.cells.write().expect("ln-gamma table poisoned");
        for i in cells.len()..=k {
            cells.push(ln_gamma(self.alpha0 + 0.5 * (i as f64)));
        }
        cells[k]
    }
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// `ln Γ(x + delta) - ln Γ(x)` computed directly; exposed because the
/// incremental scorer uses gamma-ratio differences heavily and tests
/// assert it agrees with the two-call form.
pub fn ln_gamma_ratio(x: f64, delta: f64) -> f64 {
    ln_gamma(x + delta) - ln_gamma(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_match_factorials() {
        // Γ(k) = (k-1)!
        let mut factorial = 1.0f64;
        for k in 1..=20u32 {
            if k > 1 {
                factorial *= (k - 1) as f64;
            }
            let got = ln_gamma(k as f64);
            let want = factorial.ln();
            assert!(
                (got - want).abs() < 1e-10 * want.abs().max(1.0),
                "k={k}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn half_integers() {
        // Γ(1/2) = √π; Γ(x+1) = x Γ(x).
        let want = PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        let want_3_2 = (0.5 * PI.sqrt()).ln();
        assert!((ln_gamma(1.5) - want_3_2).abs() < 1e-12);
        let want_5_2 = (0.75 * PI.sqrt()).ln();
        assert!((ln_gamma(2.5) - want_5_2).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x) across a wide range.
        for &x in &[0.1, 0.7, 1.3, 2.9, 10.0, 123.456, 1e4, 1e8] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!(
                (lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0),
                "x={x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn large_arguments_match_stirling() {
        // For large x, ln Γ(x) ≈ x ln x - x - ½ ln(x / 2π).
        let x: f64 = 1e6;
        let stirling = x * x.ln() - x - 0.5 * (x / (2.0 * PI)).ln();
        let got = ln_gamma(x);
        assert!((got - stirling).abs() / stirling.abs() < 1e-7);
    }

    #[test]
    fn reflection_region() {
        // Γ(0.25) ≈ 3.625609908.
        let got = ln_gamma(0.25);
        let want = 3.625_609_908_221_908_f64.ln();
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn beta_identity() {
        // B(a, b) = Γ(a)Γ(b)/Γ(a+b); B(1,1) = 1, B(2,3) = 1/12.
        assert!(ln_beta(1.0, 1.0).abs() < 1e-12);
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ratio_matches_difference() {
        for &(x, d) in &[(1.0, 0.5), (10.0, 3.0), (100.0, 0.25)] {
            let a = ln_gamma_ratio(x, d);
            let b = ln_gamma(x + d) - ln_gamma(x);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn table_serves_exact_bits() {
        let table = LnGammaTable::new(0.1);
        for k in [0usize, 1, 2, 3, 40, 1000] {
            let direct = ln_gamma(0.1 + 0.5 * (k as f64));
            assert_eq!(table.get(k).to_bits(), direct.to_bits(), "k={k}");
        }
        assert_eq!(table.base().to_bits(), ln_gamma(0.1).to_bits());
        assert_eq!(table.base().to_bits(), table.get(0).to_bits());
    }

    #[test]
    fn table_warm_reports_fill_counts() {
        let table = LnGammaTable::new(2.5);
        assert!(table.is_empty());
        assert_eq!(table.warm(9), 10);
        assert_eq!(table.len(), 10);
        assert_eq!(table.warm(9), 0);
        assert_eq!(table.warm(11), 2);
        assert_eq!(table.len(), 12);
    }

    #[test]
    fn table_is_shareable_across_threads() {
        // Racing first-fills are idempotent: every thread observes the
        // same bit pattern as the direct call.
        let table = std::sync::Arc::new(LnGammaTable::new(0.1));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let table = std::sync::Arc::clone(&table);
                std::thread::spawn(move || {
                    for k in (0..256usize).skip(t % 3) {
                        let direct = ln_gamma(0.1 + 0.5 * (k as f64));
                        assert_eq!(table.get(k).to_bits(), direct.to_bits());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn table_rejects_nonpositive_shape() {
        LnGammaTable::new(0.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_table_bits_equal_direct_lanczos(
            alpha0 in 1e-3f64..50.0,
            ks in proptest::collection::vec(0usize..4000, 1..40),
        ) {
            // The tentpole contract: for EVERY half-integer-offset
            // argument the table can serve, the memoized value is
            // exactly (`==` on bits) the direct Lanczos call.
            let table = LnGammaTable::new(alpha0);
            for &k in &ks {
                let direct = ln_gamma(alpha0 + 0.5 * (k as f64));
                proptest::prop_assert_eq!(table.get(k).to_bits(), direct.to_bits());
                // And a second lookup (guaranteed memo hit) is stable.
                proptest::prop_assert_eq!(table.get(k).to_bits(), direct.to_bits());
            }
        }
    }
}
