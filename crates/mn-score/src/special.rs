//! Special functions needed by the Bayesian scores.
//!
//! Only `ln Γ` is required (the normal-gamma marginal likelihood is a
//! ratio of gamma functions). Implemented with the Lanczos
//! approximation (g = 7, 9 terms) rather than adding a numerics
//! dependency; accuracy is ~15 significant digits over the positive
//! axis, verified against exact factorials and half-integer identities
//! in the tests below.

use std::f64::consts::PI;

/// Lanczos coefficients for g = 7, n = 9 (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the reflection formula for `x < 0.5` (needed only for
/// completeness; the scores call this with `x ≥ 0.5`).
///
/// # Panics
/// Panics on non-finite input or on non-positive integers (poles).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma of non-finite {x}");
    if x <= 0.0 && x == x.floor() {
        panic!("ln_gamma pole at {x}");
    }
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx).
        let sin_pi_x = (PI * x).sin();
        return PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// `ln Γ(x + delta) - ln Γ(x)` computed directly; exposed because the
/// incremental scorer uses gamma-ratio differences heavily and tests
/// assert it agrees with the two-call form.
pub fn ln_gamma_ratio(x: f64, delta: f64) -> f64 {
    ln_gamma(x + delta) - ln_gamma(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_match_factorials() {
        // Γ(k) = (k-1)!
        let mut factorial = 1.0f64;
        for k in 1..=20u32 {
            if k > 1 {
                factorial *= (k - 1) as f64;
            }
            let got = ln_gamma(k as f64);
            let want = factorial.ln();
            assert!(
                (got - want).abs() < 1e-10 * want.abs().max(1.0),
                "k={k}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn half_integers() {
        // Γ(1/2) = √π; Γ(x+1) = x Γ(x).
        let want = PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        let want_3_2 = (0.5 * PI.sqrt()).ln();
        assert!((ln_gamma(1.5) - want_3_2).abs() < 1e-12);
        let want_5_2 = (0.75 * PI.sqrt()).ln();
        assert!((ln_gamma(2.5) - want_5_2).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x) across a wide range.
        for &x in &[0.1, 0.7, 1.3, 2.9, 10.0, 123.456, 1e4, 1e8] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!(
                (lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0),
                "x={x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn large_arguments_match_stirling() {
        // For large x, ln Γ(x) ≈ x ln x - x - ½ ln(x / 2π).
        let x: f64 = 1e6;
        let stirling = x * x.ln() - x - 0.5 * (x / (2.0 * PI)).ln();
        let got = ln_gamma(x);
        assert!((got - stirling).abs() / stirling.abs() < 1e-7);
    }

    #[test]
    fn reflection_region() {
        // Γ(0.25) ≈ 3.625609908.
        let got = ln_gamma(0.25);
        let want = 3.625_609_908_221_908_f64.ln();
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn beta_identity() {
        // B(a, b) = Γ(a)Γ(b)/Γ(a+b); B(1,1) = 1, B(2,3) = 1/12.
        assert!(ln_beta(1.0, 1.0).abs() < 1e-12);
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ratio_matches_difference() {
        for &(x, d) in &[(1.0, 0.5), (10.0, 3.0), (100.0, 0.25)] {
            let a = ln_gamma_ratio(x, d);
            let b = ln_gamma(x + d) - ln_gamma(x);
            assert!((a - b).abs() < 1e-12);
        }
    }
}
