//! Property-based equivalence of the batched prefix-sum separation
//! kernel against the per-candidate naive pass: for arbitrary value
//! vectors (including heavy duplicates and degenerate all-one-side
//! masks) every candidate's σ must be bit-identical between the two
//! paths — the invariant DESIGN.md §7 relies on for byte-identical
//! learned networks.

use mn_score::{naive_sigmas, SplitScratch};
use proptest::prelude::*;

fn assert_bitwise_equal(vals: &[f64], left_mask: &[bool]) -> Result<(), TestCaseError> {
    let n = vals.len();
    let obs: Vec<usize> = (0..n).collect();
    let mut scratch = SplitScratch::new();
    let kernel = scratch.compute(vals, &obs, left_mask).to_vec();
    let mut naive = Vec::new();
    naive_sigmas(vals, left_mask, &mut naive);
    prop_assert_eq!(kernel.len(), n);
    for j in 0..n {
        prop_assert!(
            kernel[j].to_bits() == naive[j].to_bits(),
            "candidate {} diverged: kernel {} vs naive {} (vals {:?}, mask {:?})",
            j,
            kernel[j],
            naive[j],
            vals,
            left_mask
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary finite values, arbitrary mask.
    #[test]
    fn prop_kernel_matches_naive_on_random_values(
        pairs in prop::collection::vec((-100.0f64..100.0, prop::bool::ANY), 1..60),
    ) {
        let (vals, mask): (Vec<f64>, Vec<bool>) = pairs.into_iter().unzip();
        assert_bitwise_equal(&vals, &mask)?;
    }

    /// Values drawn from a tiny alphabet so long tied runs are the
    /// norm, not the exception — the case where a wrong tie-resolution
    /// policy (`<` instead of `≤`) would diverge.
    #[test]
    fn prop_kernel_matches_naive_on_heavy_duplicates(
        pairs in prop::collection::vec((0u8..4, prop::bool::ANY), 1..60),
    ) {
        let (raw, mask): (Vec<u8>, Vec<bool>) = pairs.into_iter().unzip();
        let vals: Vec<f64> = raw.into_iter().map(f64::from).collect();
        assert_bitwise_equal(&vals, &mask)?;
    }

    /// Degenerate masks: every observation on one side. The prefix
    /// formula's `total_right - (k - left_le)` term must not underflow.
    #[test]
    fn prop_kernel_matches_naive_when_all_on_one_side(
        vals in prop::collection::vec(-10.0f64..10.0, 1..40),
        side in prop::bool::ANY,
    ) {
        let mask = vec![side; vals.len()];
        assert_bitwise_equal(&vals, &mask)?;
    }

    /// Signed zeros mixed into the value set: −0.0 and +0.0 sort apart
    /// under `total_cmp` but compare equal under the naive `≤`; the
    /// kernel must merge them into one run.
    #[test]
    fn prop_kernel_matches_naive_with_signed_zeros(
        pairs in prop::collection::vec((prop::sample::select(vec![-1.0f64, -0.0, 0.0, 1.0]), prop::bool::ANY), 1..40),
    ) {
        let (vals, mask): (Vec<f64>, Vec<bool>) = pairs.into_iter().unzip();
        assert_bitwise_equal(&vals, &mask)?;
    }
}
