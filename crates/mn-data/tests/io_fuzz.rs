//! Fuzz-style robustness tests of the TSV reader: arbitrary input must
//! never panic — it either parses or returns a structured error — and
//! every generated data set must survive a write/read roundtrip.

use mn_data::{read_tsv, write_tsv, Dataset, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reader_never_panics_on_arbitrary_text(input in ".{0,400}") {
        let _ = read_tsv(input.as_bytes());
    }

    #[test]
    fn reader_never_panics_on_arbitrary_bytes(input in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_tsv(input.as_slice());
    }

    #[test]
    fn roundtrip_holds_for_arbitrary_tables(
        rows in 1usize..6,
        cols in 1usize..6,
        cells in prop::collection::vec(-1e6f64..1e6, 36),
    ) {
        let matrix = Matrix::from_fn(rows, cols, |r, c| cells[(r * cols + c) % cells.len()]);
        let data = Dataset::new(matrix, None, None);
        let mut buffer = Vec::new();
        write_tsv(&data, &mut buffer).unwrap();
        let back = read_tsv(buffer.as_slice()).unwrap();
        prop_assert_eq!(back.n_vars(), rows);
        prop_assert_eq!(back.n_obs(), cols);
        for v in 0..rows {
            for (a, b) in data.values(v).iter().zip(back.values(v)) {
                prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn subsample_then_roundtrip(
        n in 2usize..8,
        m in 2usize..8,
        sub_n in 1usize..8,
        sub_m in 1usize..8,
    ) {
        let data = mn_data::synthetic::yeast_like(n, m, 1).dataset;
        let sub = data.subsample(sub_n.min(n), sub_m.min(m));
        let mut buffer = Vec::new();
        write_tsv(&sub, &mut buffer).unwrap();
        let back = read_tsv(buffer.as_slice()).unwrap();
        prop_assert_eq!(back, sub);
    }
}
