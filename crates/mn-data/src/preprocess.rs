//! Preprocessing for real expression compendia.
//!
//! The paper's inputs are aggregated public data sets (yeast RNA-seq
//! from Tchourine et al., A. thaliana microarrays): before module
//! learning such compendia are routinely log-transformed, filtered to
//! the most variable genes, and cleaned of missing values. These are
//! the standard steps, provided so a user can go from a raw TSV to
//! learner-ready data without leaving this crate.

use crate::dataset::Dataset;
use crate::matrix::Matrix;

/// Replace non-finite cells (NaN/±inf — the usual encodings of missing
/// measurements after a join of studies) by the mean of the finite
/// values in the same row. A row with no finite values becomes all
/// zeros. Returns the number of imputed cells.
pub fn impute_missing(data: &mut Dataset) -> usize {
    let n = data.n_vars();
    let m = data.n_obs();
    let mut imputed = 0;
    for v in 0..n {
        let row = data.matrix.row(v);
        let mut sum = 0.0;
        let mut count = 0usize;
        for &x in row {
            if x.is_finite() {
                sum += x;
                count += 1;
            }
        }
        let mean = if count > 0 { sum / count as f64 } else { 0.0 };
        for o in 0..m {
            if !data.matrix.get(v, o).is_finite() {
                data.matrix.set(v, o, mean);
                imputed += 1;
            }
        }
    }
    imputed
}

/// `log2(x + pseudocount)` transform of every cell — the standard
/// variance-stabilizing transform for count-like expression data.
/// Panics if any cell would make the argument non-positive.
pub fn log2_transform(data: &mut Dataset, pseudocount: f64) {
    let n = data.n_vars();
    let m = data.n_obs();
    for v in 0..n {
        for o in 0..m {
            let x = data.matrix.get(v, o) + pseudocount;
            assert!(
                x > 0.0,
                "log2 transform of non-positive value {x} at ({v}, {o})"
            );
            data.matrix.set(v, o, x.log2());
        }
    }
}

/// Keep the `top` most variable genes (by row variance), preserving
/// their original relative order — the usual gene-filtering step
/// before network learning. Returns the filtered data set and the
/// kept original indices.
pub fn filter_most_variable(data: &Dataset, top: usize) -> (Dataset, Vec<usize>) {
    let n = data.n_vars();
    let top = top.min(n);
    let mut by_variance: Vec<(usize, f64)> = (0..n)
        .map(|v| (v, data.matrix.row_variance(v)))
        .collect();
    by_variance.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut keep: Vec<usize> = by_variance[..top].iter().map(|&(v, _)| v).collect();
    keep.sort_unstable();

    let matrix = Matrix::from_fn(keep.len(), data.n_obs(), |r, c| {
        data.matrix.get(keep[r], c)
    });
    let names = keep.iter().map(|&v| data.var_names[v].clone()).collect();
    (
        Dataset::new(matrix, Some(names), Some(data.obs_names.clone())),
        keep,
    )
}

/// The full standard pipeline: impute, optionally log-transform,
/// filter to the `top` most variable genes, standardize rows.
pub fn standard_pipeline(mut data: Dataset, log2_pseudocount: Option<f64>, top: usize) -> Dataset {
    impute_missing(&mut data);
    if let Some(pc) = log2_pseudocount {
        log2_transform(&mut data, pc);
    }
    let (filtered, _) = filter_most_variable(&data, top);
    filtered.standardized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imputation_fills_row_means() {
        let mut d = Dataset::new(
            Matrix::from_vec(2, 3, vec![1.0, f64::NAN, 3.0, f64::NAN, f64::NAN, f64::NAN]),
            None,
            None,
        );
        let imputed = impute_missing(&mut d);
        assert_eq!(imputed, 4);
        assert_eq!(d.values(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.values(1), &[0.0, 0.0, 0.0], "all-missing row becomes zeros");
    }

    #[test]
    fn log2_transform_is_exact_on_powers_of_two() {
        let mut d = Dataset::new(Matrix::from_vec(1, 3, vec![0.0, 1.0, 3.0]), None, None);
        log2_transform(&mut d, 1.0);
        assert_eq!(d.values(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn log2_transform_rejects_negative() {
        let mut d = Dataset::new(Matrix::from_vec(1, 1, vec![-2.0]), None, None);
        log2_transform(&mut d, 1.0);
    }

    #[test]
    fn variance_filter_keeps_most_variable_in_order() {
        let d = Dataset::new(
            Matrix::from_vec(
                3,
                4,
                vec![
                    0.0, 0.0, 0.0, 0.0, // constant
                    0.0, 10.0, -10.0, 0.0, // most variable
                    1.0, 2.0, 1.0, 2.0, // mildly variable
                ],
            ),
            None,
            None,
        );
        let (filtered, keep) = filter_most_variable(&d, 2);
        assert_eq!(keep, vec![1, 2], "original order preserved");
        assert_eq!(filtered.n_vars(), 2);
        assert_eq!(filtered.var_names, vec!["G1", "G2"]);
        assert_eq!(filtered.values(0), d.values(1));
    }

    #[test]
    fn filter_handles_top_larger_than_n() {
        let d = Dataset::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]), None, None);
        let (filtered, keep) = filter_most_variable(&d, 10);
        assert_eq!(filtered.n_vars(), 2);
        assert_eq!(keep, vec![0, 1]);
    }

    #[test]
    fn standard_pipeline_produces_learner_ready_data() {
        let mut cells = vec![0.0; 4 * 6];
        for (i, c) in cells.iter_mut().enumerate() {
            *c = (i as f64 * 7.3) % 11.0;
        }
        cells[5] = f64::NAN;
        let d = Dataset::new(Matrix::from_vec(4, 6, cells), None, None);
        let out = standard_pipeline(d, Some(1.0), 3);
        assert_eq!(out.n_vars(), 3);
        for v in 0..3 {
            assert!(out.matrix.row_mean(v).abs() < 1e-9);
            let var = out.matrix.row_variance(v);
            assert!((var - 1.0).abs() < 1e-9 || var == 0.0);
            assert!(out.values(v).iter().all(|x| x.is_finite()));
        }
    }
}
