//! Dense row-major matrix of observations.
//!
//! The learner views a data set as an `n × m` matrix (n variables/genes
//! as rows, m observations/experiments as columns), matching §2.1 of the
//! paper ("MoNets are learned from multiple (m) observations of the n
//! random variables, represented as an n × m matrix"). Row-major layout
//! is chosen because the innermost loops of the Gibbs sampler and the
//! split scorer stream over the observations of one variable at a time.

use serde::{Deserialize, Serialize};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a closure evaluated at every (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows (variables).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (observations).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One full row as a slice — the hot accessor for per-variable loops.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a fresh vector (cold path; used by I/O).
    pub fn col_to_vec(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Submatrix of the first `rows` rows and first `cols` columns —
    /// the paper's subsampling protocol ("using the first n variables
    /// and m observations of the yeast data set", Table 1).
    pub fn top_left(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows <= self.rows && cols <= self.cols);
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            out.data[r * cols..(r + 1) * cols].copy_from_slice(&self.row(r)[..cols]);
        }
        out
    }

    /// Mean of one row.
    pub fn row_mean(&self, r: usize) -> f64 {
        let row = self.row(r);
        if row.is_empty() {
            return 0.0;
        }
        row.iter().sum::<f64>() / row.len() as f64
    }

    /// Population variance of one row.
    pub fn row_variance(&self, r: usize) -> f64 {
        let row = self.row(r);
        if row.is_empty() {
            return 0.0;
        }
        let mean = self.row_mean(r);
        row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / row.len() as f64
    }

    /// Standardize every row to zero mean and unit variance in place
    /// (constant rows are left at zero mean, zero variance). Expression
    /// pre-processing commonly applied before module-network learning.
    pub fn standardize_rows(&mut self) {
        for r in 0..self.rows {
            let mean = self.row_mean(r);
            let var = self.row_variance(r);
            let sd = var.sqrt();
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            if sd > 0.0 {
                for x in row.iter_mut() {
                    *x = (*x - mean) / sd;
                }
            } else {
                for x in row.iter_mut() {
                    *x -= mean;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.col_to_vec(2), vec![2.0, 12.0, 22.0]);
    }

    #[test]
    fn set_updates_value() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.5);
        assert_eq!(m.get(1, 0), 5.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn top_left_matches_paper_subsampling() {
        let m = Matrix::from_fn(4, 5, |r, c| (r * 100 + c) as f64);
        let s = m.top_left(2, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(s.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn row_stats() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row_mean(0), 2.5);
        assert!((m.row_variance(0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn standardize_rows_gives_unit_stats() {
        let mut m = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 7.0, 7.0, 7.0, 7.0]);
        m.standardize_rows();
        assert!(m.row_mean(0).abs() < 1e-12);
        assert!((m.row_variance(0) - 1.0).abs() < 1e-12);
        // Constant row becomes all zeros, not NaN.
        assert!(m.row(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.as_slice().len(), 0);
    }
}
