//! Discretization of continuous expression data.
//!
//! §2.1: the input matrix holds "either discrete or continuous
//! values". These utilities convert a continuous data set into the
//! integer-category representation the discrete scoring layer
//! (`mn-score::categorical`) consumes: each cell becomes a bin index
//! in `0..bins`, stored as `f64` so the matrix type is unchanged.
//!
//! Two binning schemes are provided, both per-variable (each gene is
//! binned against its own distribution, the standard practice for
//! expression data):
//!
//! * [`discretize_quantile`] — equal-frequency bins (robust to heavy
//!   tails; ties broken toward the lower bin);
//! * [`discretize_uniform`] — equal-width bins over the variable's
//!   observed range.

use crate::dataset::Dataset;
use crate::matrix::Matrix;

/// The per-variable bin boundaries used by a discretization, returned
/// so callers can map future values consistently.
#[derive(Debug, Clone, PartialEq)]
pub struct BinEdges {
    /// `edges[v]` holds the `bins - 1` interior cut points of variable
    /// `v`, ascending. A value lands in the first bin whose cut point
    /// exceeds it.
    pub edges: Vec<Vec<f64>>,
}

impl BinEdges {
    /// Bin index of `value` for variable `v`.
    pub fn bin_of(&self, v: usize, value: f64) -> usize {
        let cuts = &self.edges[v];
        cuts.partition_point(|&c| c <= value)
    }
}

fn apply_edges(data: &Dataset, edges: &BinEdges) -> Dataset {
    let matrix = Matrix::from_fn(data.n_vars(), data.n_obs(), |v, o| {
        edges.bin_of(v, data.values(v)[o]) as f64
    });
    Dataset::new(
        matrix,
        Some(data.var_names.clone()),
        Some(data.obs_names.clone()),
    )
}

/// Equal-frequency (quantile) discretization into `bins` categories.
///
/// Returns the discretized data set and the cut points. Panics unless
/// `2 ≤ bins ≤ m`.
pub fn discretize_quantile(data: &Dataset, bins: usize) -> (Dataset, BinEdges) {
    assert!(bins >= 2, "need at least two bins");
    assert!(
        bins <= data.n_obs(),
        "cannot form {bins} non-empty bins from {} observations",
        data.n_obs()
    );
    let m = data.n_obs();
    let mut edges = Vec::with_capacity(data.n_vars());
    for v in 0..data.n_vars() {
        let mut sorted = data.values(v).to_vec();
        sorted.sort_by(f64::total_cmp);
        let cuts: Vec<f64> = (1..bins)
            .map(|k| {
                // The k-th interior cut sits at rank ⌈k·m/bins⌉.
                let idx = (k * m).div_ceil(bins).min(m - 1);
                sorted[idx]
            })
            .collect();
        edges.push(cuts);
    }
    let edges = BinEdges { edges };
    (apply_edges(data, &edges), edges)
}

/// Equal-width discretization into `bins` categories over each
/// variable's observed `[min, max]` range.
pub fn discretize_uniform(data: &Dataset, bins: usize) -> (Dataset, BinEdges) {
    assert!(bins >= 2, "need at least two bins");
    let mut edges = Vec::with_capacity(data.n_vars());
    for v in 0..data.n_vars() {
        let row = data.values(v);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in row {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let width = (hi - lo) / bins as f64;
        let cuts: Vec<f64> = if width > 0.0 {
            (1..bins).map(|k| lo + width * k as f64).collect()
        } else {
            // Constant variable: all values in bin 0.
            vec![f64::INFINITY; bins - 1]
        };
        edges.push(cuts);
    }
    let edges = BinEdges { edges };
    (apply_edges(data, &edges), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::new(
            Matrix::from_vec(
                2,
                6,
                vec![
                    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, //
                    -10.0, 0.0, 0.1, 0.2, 0.3, 10.0,
                ],
            ),
            None,
            None,
        )
    }

    #[test]
    fn quantile_bins_are_balanced() {
        let (disc, _) = discretize_quantile(&data(), 3);
        // Row 0 is uniform 1..6: bins of two each.
        assert_eq!(disc.values(0), &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        // Every cell is a valid category.
        for v in 0..2 {
            for &x in disc.values(v) {
                assert!(x == x.floor() && (0.0..3.0).contains(&x));
            }
        }
    }

    #[test]
    fn quantile_handles_heavy_tails() {
        let (disc, _) = discretize_quantile(&data(), 2);
        // Row 1's outliers don't collapse the binning: half/half split.
        let low = disc.values(1).iter().filter(|&&x| x == 0.0).count();
        assert_eq!(low, 3);
    }

    #[test]
    fn uniform_bins_cover_range() {
        let (disc, edges) = discretize_uniform(&data(), 5);
        assert_eq!(disc.values(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 4.0]);
        // max value lands in the last bin.
        assert_eq!(edges.bin_of(0, 6.0), 4);
        assert_eq!(edges.bin_of(0, 0.0), 0);
    }

    #[test]
    fn constant_variable_is_all_zero_bin() {
        let d = Dataset::new(Matrix::from_vec(1, 4, vec![7.0; 4]), None, None);
        let (disc, _) = discretize_uniform(&d, 3);
        assert!(disc.values(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn edges_map_unseen_values_consistently() {
        let (disc, edges) = discretize_quantile(&data(), 3);
        for o in 0..6 {
            let original = data().values(0)[o];
            assert_eq!(edges.bin_of(0, original) as f64, disc.values(0)[o]);
        }
        // Out-of-range values clamp into the outer bins.
        assert_eq!(edges.bin_of(0, -100.0), 0);
        assert_eq!(edges.bin_of(0, 100.0), 2);
    }

    #[test]
    fn discrete_data_feeds_categorical_score() {
        // End-to-end: discretize, then score a tile with the
        // Dirichlet-multinomial marginal.
        let (disc, _) = discretize_quantile(&data(), 3);
        let model = mn_score_stub::check(&disc);
        assert!(model.is_finite());
    }

    /// Tiny indirection so this crate's tests do not depend on
    /// mn-score (which depends on mn-data): replicate the DM marginal
    /// shape check inline.
    mod mn_score_stub {
        use crate::dataset::Dataset;

        pub fn check(disc: &Dataset) -> f64 {
            // All values are small non-negative integers.
            let mut max = 0.0f64;
            for v in 0..disc.n_vars() {
                for &x in disc.values(v) {
                    assert!(x >= 0.0 && x.fract() == 0.0);
                    max = max.max(x);
                }
            }
            max
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_bin() {
        discretize_quantile(&data(), 1);
    }
}
