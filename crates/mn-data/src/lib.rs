//! # mn-data — data sets for module-network learning
//!
//! Expression matrices (§2.1 of the paper: an `n × m` matrix of
//! observations of `n` random variables), TSV I/O in the layout of the
//! Zenodo compendia the paper evaluates on, the paper's
//! first-n-by-first-m subsampling protocol, and a synthetic
//! module-structured generator with planted ground truth (the
//! documented substitute for the proprietary-scale real data; see
//! DESIGN.md §2).

#![warn(missing_docs)]

pub mod dataset;
pub mod discretize;
pub mod io;
pub mod matrix;
pub mod preprocess;
pub mod synthetic;

pub use dataset::Dataset;
pub use discretize::{discretize_quantile, discretize_uniform, BinEdges};
pub use io::{read_tsv, read_tsv_file, write_tsv, write_tsv_file, DataError, ReadError};
pub use matrix::Matrix;
pub use preprocess::{filter_most_variable, impute_missing, log2_transform, standard_pipeline};
pub use synthetic::{
    generate, noise_only, thaliana_like, yeast_like, GroundTruth, SyntheticConfig,
    SyntheticDataset,
};
