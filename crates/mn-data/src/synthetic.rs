//! Synthetic module-structured expression data.
//!
//! The paper evaluates on two real compendia (S. cerevisiae 5716×2577,
//! A. thaliana 18373×5102). Those measure *runtime scaling*, which
//! depends on the data dimensions and on the module structure the
//! sampler discovers — not on biological identity. This generator
//! plants exactly the structure a module network assumes (§2.1): a set
//! of regulator variables, a partition of the remaining variables into
//! modules, and a regression-tree CPD per module in which the module
//! mean in each observation is decided by threshold tests on its
//! regulators. It also returns the planted [`GroundTruth`] so tests and
//! examples can score recovery.
//!
//! The planted module count grows with `n` when left on automatic,
//! mirroring the paper's observation (§5.2.2) that the number of
//! learned modules K grows from 28–39 at n = 1000 to 111–170 at
//! n = 5716 — the source of the super-linear runtime growth in Fig. 4.

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use mn_rand::{Domain, MasterRng, Normal, Stream};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of variables (genes), including regulators.
    pub n_vars: usize,
    /// Number of observations (conditions).
    pub n_obs: usize,
    /// Number of planted modules; `None` = automatic (`max(2, n/40)`,
    /// reproducing the paper's K-vs-n growth).
    pub n_modules: Option<usize>,
    /// Number of regulator variables; `None` = automatic
    /// (`max(2, n/20)`).
    pub n_regulators: Option<usize>,
    /// Maximum regulators driving one module (1..=this, chosen per
    /// module). Default 3, matching typical regulatory in-degree.
    pub max_parents: usize,
    /// Within-module noise standard deviation relative to the planted
    /// signal (signal is ±1); default 0.4.
    pub noise_sd: f64,
    /// Master seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A new configuration with automatic structure parameters.
    pub fn new(n_vars: usize, n_obs: usize, seed: u64) -> Self {
        Self {
            n_vars,
            n_obs,
            n_modules: None,
            n_regulators: None,
            max_parents: 3,
            noise_sd: 0.4,
            seed,
        }
    }

    /// Resolved module count.
    pub fn resolved_modules(&self) -> usize {
        self.n_modules
            .unwrap_or_else(|| (self.n_vars / 40).max(2))
            .min(self.n_vars)
    }

    /// Resolved regulator count.
    pub fn resolved_regulators(&self) -> usize {
        self.n_regulators
            .unwrap_or_else(|| (self.n_vars / 20).max(2))
            .min(self.n_vars)
    }
}

/// The planted structure behind a synthetic data set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// `assignment[v]` = planted module index of variable `v`
    /// (regulators are assigned too; they belong to modules like any
    /// other gene, as in Fig. 1 of the paper).
    pub assignment: Vec<usize>,
    /// `parents[k]` = regulator variables planted as parents of module `k`.
    pub parents: Vec<Vec<usize>>,
    /// Indices of the regulator variables.
    pub regulators: Vec<usize>,
}

impl GroundTruth {
    /// Number of planted modules.
    pub fn n_modules(&self) -> usize {
        self.parents.len()
    }
}

/// A generated data set together with its planted structure.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The expression data.
    pub dataset: Dataset,
    /// What was planted.
    pub truth: GroundTruth,
}

/// One planted threshold rule: if regulator `parent`'s value is above
/// `threshold`, the module mean contribution flips sign.
#[derive(Debug, Clone)]
struct PlantedRule {
    parent: usize,
    threshold: f64,
    up: f64,
    down: f64,
}

/// Generate a synthetic module-structured data set.
pub fn generate(config: &SyntheticConfig) -> SyntheticDataset {
    assert!(config.n_vars >= 2, "need at least two variables");
    assert!(config.n_obs >= 2, "need at least two observations");
    assert!(config.max_parents >= 1);
    assert!(config.noise_sd >= 0.0);

    let master = MasterRng::new(config.seed);
    let k = config.resolved_modules();
    let n_regs = config.resolved_regulators();
    let n = config.n_vars;
    let m = config.n_obs;

    let mut structure = master.stream(Domain::Synthetic, 0);
    let mut normal = Normal::new();

    // Regulators are the first `n_regs` variables (the candidate-parent
    // convention of §5.1: "we use all the genes in the data sets as the
    // candidate regulators" still holds downstream; planting them first
    // just makes the ground truth easy to read).
    let regulators: Vec<usize> = (0..n_regs).collect();

    // Assign every variable to one of k modules uniformly at random.
    let mut assignment = vec![0usize; n];
    for a in assignment.iter_mut() {
        *a = structure.below(k);
    }

    // Plant 1..=max_parents regulator rules per module.
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(k);
    let mut rules: Vec<Vec<PlantedRule>> = Vec::with_capacity(k);
    for _ in 0..k {
        let n_parents = 1 + structure.below(config.max_parents);
        let mut module_parents = Vec::with_capacity(n_parents);
        let mut module_rules = Vec::with_capacity(n_parents);
        for _ in 0..n_parents {
            let parent = regulators[structure.below(n_regs)];
            if module_parents.contains(&parent) {
                continue;
            }
            // Threshold near the middle of the regulator distribution so
            // both branches are exercised.
            let threshold = (structure.next_f64() - 0.5) * 1.2;
            let magnitude = 0.6 + structure.next_f64() * 0.8;
            module_rules.push(PlantedRule {
                parent,
                threshold,
                up: magnitude,
                down: -magnitude,
            });
            module_parents.push(parent);
        }
        parents.push(module_parents);
        rules.push(module_rules);
    }

    // Generate the matrix. Regulator rows are independent N(0,1); the
    // per-observation module mean is the sum of its rules applied to the
    // regulator values; member rows are mean + N(0, noise_sd).
    let mut matrix = Matrix::zeros(n, m);
    {
        let mut reg_stream = master.stream(Domain::Synthetic, 1);
        for &r in &regulators {
            for j in 0..m {
                matrix.set(r, j, normal.sample(&mut reg_stream));
            }
        }
    }

    // Module means per observation.
    let mut module_mean = vec![vec![0.0f64; m]; k];
    for (module, module_rules) in rules.iter().enumerate() {
        for (j, mean_slot) in module_mean[module].iter_mut().enumerate() {
            let mut mean = 0.0;
            for rule in module_rules {
                let v = matrix.get(rule.parent, j);
                mean += if v > rule.threshold { rule.up } else { rule.down };
            }
            *mean_slot = mean;
        }
    }

    {
        let mut noise_stream = master.stream(Domain::Synthetic, 2);
        let mut noise_normal = Normal::new();
        for (v, &module) in assignment.iter().enumerate().skip(n_regs) {
            let means = &module_mean[module];
            for (j, &mean) in means.iter().enumerate() {
                let x = mean + noise_normal.sample_with(&mut noise_stream, 0.0, config.noise_sd);
                matrix.set(v, j, x);
            }
        }
    }

    let dataset = Dataset::new(matrix, None, None);
    SyntheticDataset {
        dataset,
        truth: GroundTruth {
            assignment,
            parents,
            regulators,
        },
    }
}

/// Preset mimicking the yeast compendium's shape at a reduced scale.
///
/// The real data set is 5716 × 2577 (Tchourine et al.); experiments in
/// `mn-bench` call this with the scaled-down n, m documented in
/// EXPERIMENTS.md.
pub fn yeast_like(n_vars: usize, n_obs: usize, seed: u64) -> SyntheticDataset {
    generate(&SyntheticConfig::new(n_vars, n_obs, seed))
}

/// Preset mimicking the A. thaliana compendium's shape (18373 × 5102):
/// relatively more modules and regulators per variable than yeast.
pub fn thaliana_like(n_vars: usize, n_obs: usize, seed: u64) -> SyntheticDataset {
    let mut config = SyntheticConfig::new(n_vars, n_obs, seed);
    config.n_modules = Some((n_vars / 30).max(2));
    config.n_regulators = Some((n_vars / 15).max(2));
    generate(&config)
}

/// Convenience: draw a pure-noise data set (no module structure), used
/// by tests as a null model.
pub fn noise_only(n_vars: usize, n_obs: usize, seed: u64) -> Dataset {
    let master = MasterRng::new(seed);
    let mut stream: Stream = master.stream(Domain::Synthetic, 3);
    let mut normal = Normal::new();
    let matrix = Matrix::from_fn(n_vars, n_obs, |_, _| normal.sample(&mut stream));
    Dataset::new(matrix, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_truth_shape() {
        let s = generate(&SyntheticConfig::new(120, 40, 7));
        assert_eq!(s.dataset.n_vars(), 120);
        assert_eq!(s.dataset.n_obs(), 40);
        assert_eq!(s.truth.assignment.len(), 120);
        assert_eq!(s.truth.n_modules(), 3); // 120/40 = 3
        for parents in &s.truth.parents {
            assert!(!parents.is_empty());
            for &p in parents {
                assert!(s.truth.regulators.contains(&p));
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&SyntheticConfig::new(50, 20, 42));
        let b = generate(&SyntheticConfig::new(50, 20, 42));
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth.assignment, b.truth.assignment);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::new(50, 20, 1));
        let b = generate(&SyntheticConfig::new(50, 20, 2));
        assert_ne!(a.dataset, b.dataset);
    }

    #[test]
    fn module_members_correlate_within_module() {
        // Two members of the same planted module must correlate far more
        // strongly with each other than with members of other modules —
        // this is the signal GaneSH clusters on.
        let s = generate(&SyntheticConfig {
            noise_sd: 0.2,
            ..SyntheticConfig::new(80, 200, 11)
        });
        let k = s.truth.n_modules();
        let regs = s.truth.regulators.len();
        // Collect two members per module (non-regulators).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for v in regs..80 {
            members[s.truth.assignment[v]].push(v);
        }
        let corr = |a: usize, b: usize| -> f64 {
            let xa = s.dataset.values(a);
            let xb = s.dataset.values(b);
            let n = xa.len() as f64;
            let (ma, mb) = (
                xa.iter().sum::<f64>() / n,
                xb.iter().sum::<f64>() / n,
            );
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for i in 0..xa.len() {
                num += (xa[i] - ma) * (xb[i] - mb);
                da += (xa[i] - ma).powi(2);
                db += (xb[i] - mb).powi(2);
            }
            num / (da.sqrt() * db.sqrt())
        };
        let mut checked = 0;
        for mk in members.iter().filter(|ms| ms.len() >= 2) {
            let within = corr(mk[0], mk[1]);
            assert!(
                within > 0.5,
                "within-module correlation too weak: {within}"
            );
            checked += 1;
        }
        assert!(checked >= 1, "no module had two members");
    }

    #[test]
    fn auto_module_count_grows_with_n() {
        let small = SyntheticConfig::new(100, 10, 0).resolved_modules();
        let large = SyntheticConfig::new(1000, 10, 0).resolved_modules();
        assert!(large > small, "K must grow with n ({small} vs {large})");
    }

    #[test]
    fn noise_only_has_no_structure() {
        let d = noise_only(10, 50, 3);
        assert_eq!(d.n_vars(), 10);
        assert_eq!(d.n_obs(), 50);
    }

    #[test]
    fn presets_run() {
        let y = yeast_like(60, 30, 5);
        let t = thaliana_like(60, 30, 5);
        assert_eq!(y.dataset.n_vars(), 60);
        // thaliana preset plants denser structure
        assert!(t.truth.n_modules() >= y.truth.n_modules());
    }
}
