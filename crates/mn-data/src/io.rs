//! Tab-separated expression-matrix I/O.
//!
//! The Zenodo data sets the paper uses (yeast: 10.5281/zenodo.3355524,
//! A. thaliana: 10.5281/zenodo.4672797) are plain numeric tables with a
//! header row of condition names and a leading column of gene names —
//! the format read and written here. If a user has the real data, it
//! can be dropped in directly; our experiments use the synthetic
//! generator (see [`crate::synthetic`]) as documented in DESIGN.md.

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while reading an expression table.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the table, with a 1-based line number.
    Parse {
        /// 1-based line number of the offending line (0 = whole file).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read a TSV expression table from a reader.
///
/// Expected shape:
/// ```text
/// <corner>\t<obs name>\t<obs name>...
/// <gene>\t<value>\t<value>...
/// ```
/// Empty lines and lines starting with `#` are ignored.
pub fn read_tsv<R: Read>(reader: R) -> Result<Dataset, ReadError> {
    let reader = BufReader::new(reader);
    let mut obs_names: Option<Vec<String>> = None;
    let mut var_names: Vec<String> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut width = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let first = fields.next().unwrap_or_default();
        if obs_names.is_none() {
            let names: Vec<String> = fields.map(|s| s.to_string()).collect();
            if names.is_empty() {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: "header row has no observation names".into(),
                });
            }
            width = names.len();
            obs_names = Some(names);
            continue;
        }
        var_names.push(first.to_string());
        let mut count = 0usize;
        for field in fields {
            let v: f64 = field.trim().parse().map_err(|e| ReadError::Parse {
                line: lineno,
                message: format!("bad numeric value {field:?}: {e}"),
            })?;
            values.push(v);
            count += 1;
        }
        if count != width {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("expected {width} values, found {count}"),
            });
        }
    }

    let obs_names = obs_names.ok_or(ReadError::Parse {
        line: 0,
        message: "empty table".into(),
    })?;
    let matrix = Matrix::from_vec(var_names.len(), width, values);
    Ok(Dataset::new(matrix, Some(var_names), Some(obs_names)))
}

/// Read a TSV expression table from a file path.
pub fn read_tsv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, ReadError> {
    read_tsv(File::open(path)?)
}

/// Write a data set as a TSV expression table.
pub fn write_tsv<W: Write>(dataset: &Dataset, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "gene")?;
    for name in &dataset.obs_names {
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    for (i, name) in dataset.var_names.iter().enumerate() {
        write!(w, "{name}")?;
        for v in dataset.values(i) {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write a data set as a TSV expression table to a file path.
pub fn write_tsv_file<P: AsRef<Path>>(dataset: &Dataset, path: P) -> io::Result<()> {
    write_tsv(dataset, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "gene\tc1\tc2\tc3\n# a comment\ng1\t1.0\t2.0\t3.0\ng2\t-1.5\t0\t4e-2\n";

    #[test]
    fn roundtrip() {
        let d = read_tsv(SAMPLE.as_bytes()).unwrap();
        assert_eq!(d.n_vars(), 2);
        assert_eq!(d.n_obs(), 3);
        assert_eq!(d.var_names, vec!["g1", "g2"]);
        assert_eq!(d.obs_names, vec!["c1", "c2", "c3"]);
        assert_eq!(d.values(1), &[-1.5, 0.0, 0.04]);

        let mut buf = Vec::new();
        write_tsv(&d, &mut buf).unwrap();
        let d2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_tsv("g\tc1\tc2\ng1\t1.0\n".as_bytes()).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("expected 2"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = read_tsv("g\tc1\ng1\tbanana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_tsv("".as_bytes()).is_err());
        assert!(read_tsv("\n\n# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let d = read_tsv("g\tc1\n\ng1\t1\n\n".as_bytes()).unwrap();
        assert_eq!(d.n_vars(), 1);
    }

    #[test]
    fn crlf_tolerated() {
        let d = read_tsv("g\tc1\r\ng1\t5\r\n".as_bytes()).unwrap();
        assert_eq!(d.values(0), &[5.0]);
    }

    #[test]
    fn file_roundtrip() {
        let d = read_tsv(SAMPLE.as_bytes()).unwrap();
        let path = std::env::temp_dir().join("mn_data_io_test.tsv");
        write_tsv_file(&d, &path).unwrap();
        let d2 = read_tsv_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d, d2);
    }
}
