//! Tab-separated expression-matrix I/O.
//!
//! The Zenodo data sets the paper uses (yeast: 10.5281/zenodo.3355524,
//! A. thaliana: 10.5281/zenodo.4672797) are plain numeric tables with a
//! header row of condition names and a leading column of gene names —
//! the format read and written here. If a user has the real data, it
//! can be dropped in directly; our experiments use the synthetic
//! generator (see [`crate::synthetic`]) as documented in DESIGN.md.

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Typed errors raised while reading an expression table. Each
/// variant carries the coordinates a user needs to fix the input; the
/// CLI surfaces them verbatim as clean nonzero exits.
#[derive(Debug)]
pub enum DataError {
    /// The file could not be opened (missing, permissions, a
    /// directory, ...). Carries the path that failed.
    Unreadable {
        /// The path that could not be opened.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// An I/O failure while streaming an already-open table.
    Io(io::Error),
    /// A cell parsed as a float but is NaN or infinite — expression
    /// values must be finite for the Gaussian sufficient statistics.
    NonFinite {
        /// 1-based line number of the offending row.
        line: usize,
        /// 1-based data-column index (excluding the gene-name column).
        column: usize,
        /// The offending value as written in the file.
        value: String,
    },
    /// A cell that is not a number at all.
    BadNumber {
        /// 1-based line number of the offending row.
        line: usize,
        /// The offending field as written in the file.
        field: String,
        /// The parser's description of the failure.
        message: String,
    },
    /// A data row whose width differs from the header's.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Number of values the header promises.
        expected: usize,
        /// Number of values the row actually has.
        found: usize,
    },
    /// A header row with no observation names.
    EmptyHeader {
        /// 1-based line number of the header row.
        line: usize,
    },
    /// The table has no header (and therefore no data) at all.
    EmptyMatrix,
}

/// Backward-compatible name for [`DataError`].
pub type ReadError = DataError;

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Unreadable { path, source } => {
                write!(f, "cannot open {}: {source}", path.display())
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::NonFinite {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}, column {column}: non-finite value {value:?} \
                 (expression values must be finite)"
            ),
            DataError::BadNumber {
                line,
                field,
                message,
            } => write!(f, "line {line}: bad numeric value {field:?}: {message}"),
            DataError::RaggedRow {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: ragged row — expected {expected} values, found {found}"
            ),
            DataError::EmptyHeader { line } => {
                write!(f, "line {line}: header row has no observation names")
            }
            DataError::EmptyMatrix => write!(f, "empty table: no header or data rows"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Unreadable { source, .. } => Some(source),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Read a TSV expression table from a reader.
///
/// Expected shape:
/// ```text
/// <corner>\t<obs name>\t<obs name>...
/// <gene>\t<value>\t<value>...
/// ```
/// Empty lines and lines starting with `#` are ignored.
pub fn read_tsv<R: Read>(reader: R) -> Result<Dataset, DataError> {
    let reader = BufReader::new(reader);
    let mut obs_names: Option<Vec<String>> = None;
    let mut var_names: Vec<String> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut width = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let first = fields.next().unwrap_or_default();
        if obs_names.is_none() {
            let names: Vec<String> = fields.map(|s| s.to_string()).collect();
            if names.is_empty() {
                return Err(DataError::EmptyHeader { line: lineno });
            }
            width = names.len();
            obs_names = Some(names);
            continue;
        }
        var_names.push(first.to_string());
        let mut count = 0usize;
        for field in fields {
            let v: f64 = field.trim().parse().map_err(|e: std::num::ParseFloatError| {
                DataError::BadNumber {
                    line: lineno,
                    field: field.to_string(),
                    message: e.to_string(),
                }
            })?;
            if !v.is_finite() {
                return Err(DataError::NonFinite {
                    line: lineno,
                    column: count + 1,
                    value: field.trim().to_string(),
                });
            }
            values.push(v);
            count += 1;
        }
        if count != width {
            return Err(DataError::RaggedRow {
                line: lineno,
                expected: width,
                found: count,
            });
        }
    }

    let obs_names = obs_names.ok_or(DataError::EmptyMatrix)?;
    let matrix = Matrix::from_vec(var_names.len(), width, values);
    Ok(Dataset::new(matrix, Some(var_names), Some(obs_names)))
}

/// Read a TSV expression table from a file path. An unopenable path
/// yields [`DataError::Unreadable`] carrying the path.
pub fn read_tsv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|source| DataError::Unreadable {
        path: path.to_path_buf(),
        source,
    })?;
    read_tsv(file)
}

/// Write a data set as a TSV expression table.
pub fn write_tsv<W: Write>(dataset: &Dataset, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "gene")?;
    for name in &dataset.obs_names {
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    for (i, name) in dataset.var_names.iter().enumerate() {
        write!(w, "{name}")?;
        for v in dataset.values(i) {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write a data set as a TSV expression table to a file path.
pub fn write_tsv_file<P: AsRef<Path>>(dataset: &Dataset, path: P) -> io::Result<()> {
    write_tsv(dataset, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "gene\tc1\tc2\tc3\n# a comment\ng1\t1.0\t2.0\t3.0\ng2\t-1.5\t0\t4e-2\n";

    #[test]
    fn roundtrip() {
        let d = read_tsv(SAMPLE.as_bytes()).unwrap();
        assert_eq!(d.n_vars(), 2);
        assert_eq!(d.n_obs(), 3);
        assert_eq!(d.var_names, vec!["g1", "g2"]);
        assert_eq!(d.obs_names, vec!["c1", "c2", "c3"]);
        assert_eq!(d.values(1), &[-1.5, 0.0, 0.04]);

        let mut buf = Vec::new();
        write_tsv(&d, &mut buf).unwrap();
        let d2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_tsv("g\tc1\tc2\ng1\t1.0\n".as_bytes()).unwrap_err();
        match err {
            DataError::RaggedRow {
                line,
                expected,
                found,
            } => {
                assert_eq!((line, expected, found), (2, 2, 1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("expected 2 values, found 1"));
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = read_tsv("g\tc1\ng1\tbanana\n".as_bytes()).unwrap_err();
        match &err {
            DataError::BadNumber { line, field, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(field, "banana");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite_cells() {
        for bad in ["NaN", "nan", "inf", "-inf"] {
            let input = format!("g\tc1\tc2\ng1\t1.0\t{bad}\n");
            let err = read_tsv(input.as_bytes()).unwrap_err();
            match &err {
                DataError::NonFinite { line, column, value } => {
                    assert_eq!((*line, *column), (2, 2), "{bad}");
                    assert_eq!(value, bad);
                }
                other => panic!("{bad}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            read_tsv("".as_bytes()).unwrap_err(),
            DataError::EmptyMatrix
        ));
        assert!(matches!(
            read_tsv("\n\n# only comments\n".as_bytes()).unwrap_err(),
            DataError::EmptyMatrix
        ));
    }

    #[test]
    fn unreadable_file_names_the_path() {
        let err = read_tsv_file("/definitely/not/here.tsv").unwrap_err();
        match &err {
            DataError::Unreadable { path, .. } => {
                assert_eq!(path.to_str().unwrap(), "/definitely/not/here.tsv");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("/definitely/not/here.tsv"));
    }

    #[test]
    fn skips_blank_lines() {
        let d = read_tsv("g\tc1\n\ng1\t1\n\n".as_bytes()).unwrap();
        assert_eq!(d.n_vars(), 1);
    }

    #[test]
    fn crlf_tolerated() {
        let d = read_tsv("g\tc1\r\ng1\t5\r\n".as_bytes()).unwrap();
        assert_eq!(d.values(0), &[5.0]);
    }

    #[test]
    fn file_roundtrip() {
        let d = read_tsv(SAMPLE.as_bytes()).unwrap();
        let path = std::env::temp_dir().join("mn_data_io_test.tsv");
        write_tsv_file(&d, &path).unwrap();
        let d2 = read_tsv_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d, d2);
    }
}
