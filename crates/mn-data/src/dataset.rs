//! A named expression data set.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// An `n × m` data set: `n` named variables (genes) observed in `m`
/// named conditions (experiments).
///
/// This is the input to every task of the learner. Per §5.3 of the
/// paper, the complete data set is replicated on every processor ("we
/// assume that the complete data set D is available on all the
/// processors"), so `Dataset` is freely shareable and read-only during
/// learning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Variable (gene) names; `var_names.len() == matrix.rows()`.
    pub var_names: Vec<String>,
    /// Observation (condition) names; `obs_names.len() == matrix.cols()`.
    pub obs_names: Vec<String>,
    /// The expression matrix (variables × observations).
    pub matrix: Matrix,
}

impl Dataset {
    /// Build a data set, generating default names where `None`.
    pub fn new(
        matrix: Matrix,
        var_names: Option<Vec<String>>,
        obs_names: Option<Vec<String>>,
    ) -> Self {
        let var_names =
            var_names.unwrap_or_else(|| (0..matrix.rows()).map(|i| format!("G{i}")).collect());
        let obs_names =
            obs_names.unwrap_or_else(|| (0..matrix.cols()).map(|j| format!("E{j}")).collect());
        assert_eq!(var_names.len(), matrix.rows(), "variable name count");
        assert_eq!(obs_names.len(), matrix.cols(), "observation name count");
        Self {
            var_names,
            obs_names,
            matrix,
        }
    }

    /// Number of variables `n`.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of observations `m`.
    #[inline]
    pub fn n_obs(&self) -> usize {
        self.matrix.cols()
    }

    /// The observations of one variable.
    #[inline]
    pub fn values(&self, var: usize) -> &[f64] {
        self.matrix.row(var)
    }

    /// The paper's subsampling protocol: the data set restricted to the
    /// first `n` variables and first `m` observations (Table 1, Fig. 3/4:
    /// "combinations of the first n = {...} variables and the first
    /// m = {...} observations in the data set").
    pub fn subsample(&self, n: usize, m: usize) -> Dataset {
        assert!(
            n <= self.n_vars() && m <= self.n_obs(),
            "subsample {n}x{m} exceeds data set {}x{}",
            self.n_vars(),
            self.n_obs()
        );
        Dataset {
            var_names: self.var_names[..n].to_vec(),
            obs_names: self.obs_names[..m].to_vec(),
            matrix: self.matrix.top_left(n, m),
        }
    }

    /// Standardize each variable to zero mean / unit variance.
    pub fn standardized(mut self) -> Dataset {
        self.matrix.standardize_rows();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(Matrix::from_fn(3, 4, |r, c| (r + c) as f64), None, None)
    }

    #[test]
    fn default_names() {
        let d = tiny();
        assert_eq!(d.var_names, vec!["G0", "G1", "G2"]);
        assert_eq!(d.obs_names, vec!["E0", "E1", "E2", "E3"]);
    }

    #[test]
    fn explicit_names() {
        let d = Dataset::new(
            Matrix::zeros(2, 1),
            Some(vec!["a".into(), "b".into()]),
            Some(vec!["x".into()]),
        );
        assert_eq!(d.var_names[1], "b");
        assert_eq!(d.obs_names[0], "x");
    }

    #[test]
    #[should_panic(expected = "variable name count")]
    fn name_count_checked() {
        Dataset::new(Matrix::zeros(2, 1), Some(vec!["a".into()]), None);
    }

    #[test]
    fn subsample_takes_prefix() {
        let d = tiny();
        let s = d.subsample(2, 2);
        assert_eq!(s.n_vars(), 2);
        assert_eq!(s.n_obs(), 2);
        assert_eq!(s.var_names, vec!["G0", "G1"]);
        assert_eq!(s.values(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn subsample_bounds_checked() {
        tiny().subsample(10, 1);
    }

    #[test]
    fn values_accessor() {
        let d = tiny();
        assert_eq!(d.values(2), &[2.0, 3.0, 4.0, 5.0]);
    }
}
