//! Monotonic log₂-bucketed timing histograms.
//!
//! One histogram per span name, recording span durations. Buckets are
//! powers of two in microseconds — bucket `i` covers `[2^i, 2^{i+1})`
//! µs, bucket 0 additionally absorbs sub-microsecond durations — which
//! keeps the histogram fixed-size and mergeable while spanning
//! nanosecond sweeps to hour-long runs in 40 buckets.

use serde::{Deserialize, Serialize};

/// Number of log₂ buckets (covers up to ~2^40 µs ≈ 12 days).
pub const N_BUCKETS: usize = 40;

/// A log₂ histogram of durations, with summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, seconds.
    pub sum_s: f64,
    /// Largest recorded duration, seconds.
    pub max_s: f64,
    /// `buckets[i]` counts durations in `[2^i, 2^{i+1})` microseconds.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum_s: 0.0,
            max_s: 0.0,
            buckets: vec![0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index of a duration in seconds.
    pub fn bucket_of(duration_s: f64) -> usize {
        let us = duration_s * 1e6;
        if us < 2.0 {
            return 0;
        }
        (us.log2().floor() as usize).min(N_BUCKETS - 1)
    }

    /// Record one duration (negative durations clamp to zero).
    pub fn record(&mut self, duration_s: f64) {
        let d = duration_s.max(0.0);
        self.count += 1;
        self.sum_s += d;
        self.max_s = self.max_s.max(d);
        self.buckets[Self::bucket_of(d)] += 1;
    }

    /// Mean duration in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in seconds from the
    /// log₂ buckets: find the bucket holding the `⌈q·count⌉`-th
    /// duration and interpolate linearly inside its `[2^i, 2^{i+1})` µs
    /// range (bucket 0 interpolates from 0). The estimate is clamped to
    /// the observed maximum, so `percentile_s(1.0) == max_s`.
    pub fn percentile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Position of the target inside this bucket, in (0, 1].
                let frac = (target - seen) as f64 / c as f64;
                let lo_us = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi_us = (1u64 << (i + 1)) as f64;
                let est_s = (lo_us + frac * (hi_us - lo_us)) * 1e-6;
                return est_s.min(self.max_s);
            }
            seen += c;
        }
        self.max_s
    }

    /// Median duration estimate, seconds.
    pub fn p50_s(&self) -> f64 {
        self.percentile_s(0.50)
    }

    /// 95th-percentile duration estimate, seconds.
    pub fn p95_s(&self) -> f64 {
        self.percentile_s(0.95)
    }

    /// 99th-percentile duration estimate, seconds.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.max_s = self.max_s.max(other.max_s);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(1e-9), 0); // 0.001 µs
        assert_eq!(Histogram::bucket_of(1.5e-6), 0); // 1.5 µs
        assert_eq!(Histogram::bucket_of(3e-6), 1); // 3 µs -> [2,4)
        assert_eq!(Histogram::bucket_of(1e-3), 9); // 1000 µs -> [512,1024)
        assert_eq!(Histogram::bucket_of(1e9), N_BUCKETS - 1); // clamped
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::default();
        h.record(1e-3);
        h.record(3e-3);
        h.record(-1.0); // clamps to zero
        assert_eq!(h.count, 3);
        assert!((h.sum_s - 4e-3).abs() < 1e-12);
        assert!((h.max_s - 3e-3).abs() < 1e-12);
        assert!((h.mean_s() - 4e-3 / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::default();
        a.record(1e-3);
        let mut b = Histogram::default();
        b.record(2e-3);
        b.record(4e-6);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.max_s - 2e-3).abs() < 1e-12);
        assert_eq!(a.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(Histogram::default().mean_s(), 0.0);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let mut h = Histogram::default();
        // 90 fast durations (~3 µs, bucket 1) and 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(3e-6);
        }
        for _ in 0..10 {
            h.record(1e-3);
        }
        // p50 lands in the fast bucket [2, 4) µs.
        let p50 = h.p50_s();
        assert!((2e-6..4e-6).contains(&p50), "p50 = {p50}");
        // p95 and p99 land in the slow bucket [512, 1024) µs, clamped
        // to the observed max.
        for q in [h.p95_s(), h.p99_s()] {
            assert!((512e-6..=1e-3).contains(&q), "tail = {q}");
        }
        assert_eq!(h.percentile_s(1.0), h.max_s);
        assert!(h.p50_s() <= h.p95_s() && h.p95_s() <= h.p99_s());
    }

    #[test]
    fn percentiles_of_empty_and_single() {
        assert_eq!(Histogram::default().p99_s(), 0.0);
        let mut h = Histogram::default();
        h.record(5e-6);
        // Every quantile of a single observation is that observation
        // (clamped to max).
        assert_eq!(h.p50_s(), 5e-6);
        assert_eq!(h.p99_s(), 5e-6);
    }
}
