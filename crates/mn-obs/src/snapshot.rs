//! Live telemetry: versioned JSONL snapshot deltas, plus the
//! death-stash used by post-mortem reporting.
//!
//! A run that streams telemetry owns one [`TelemetrySink`] — a writer
//! thread draining a channel of [`ObsSnapshot`]s. Engines push
//! rate-limited snapshots through a clonable [`TelemetryHandle`] (the
//! recorder decides cadence; the sink decides formatting), and the
//! writer thread turns each into one JSONL line via
//! [`TelemetryStream`]:
//!
//! * line 0 is a full `"snapshot"` (counters, span aggregates, comm
//!   totals, rank count);
//! * subsequent lines are `"delta"`s carrying only the counters and
//!   span aggregates that changed since the previous line;
//! * when no snapshot arrives within the configured interval the
//!   writer emits a `"heartbeat"` line, so a stalled run is visible as
//!   heartbeats without progress.
//!
//! Every line carries `schema_version` ([`TELEMETRY_SCHEMA_VERSION`])
//! and a monotone `seq`. This JSONL surface is exactly what
//! `monet-serve` will later stream over HTTP (ROADMAP item 1).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Content, Serialize};

use crate::recorder::{ObsSnapshot, SpanAgg};

/// Schema version stamped into every telemetry line (and into
/// `RUN_METRICS.json`, which shares the snapshot schema).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// Incremental JSONL formatter: feed it successive snapshots of the
/// same run and it emits a full first line, then deltas. Pure state
/// machine — the writer thread owns one, and tests drive it directly.
#[derive(Debug, Default)]
pub struct TelemetryStream {
    seq: u64,
    last_counters: BTreeMap<String, u64>,
    last_aggs: BTreeMap<String, SpanAgg>,
    last_comm: Option<(u64, u64)>,
}

impl TelemetryStream {
    /// A stream that has emitted nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lines emitted so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn base(&mut self, kind: &str) -> Vec<(String, Content)> {
        let seq = self.seq;
        self.seq += 1;
        vec![
            (
                "schema_version".into(),
                Content::U64(TELEMETRY_SCHEMA_VERSION as u64),
            ),
            ("seq".into(), Content::U64(seq)),
            ("kind".into(), Content::Str(kind.into())),
        ]
    }

    /// Format one snapshot as a JSONL line: a full `"snapshot"` the
    /// first time, a `"delta"` with only changed counters/span
    /// aggregates afterwards.
    pub fn line(&mut self, snap: &ObsSnapshot, now_s: f64) -> String {
        let first = self.seq == 0;
        let aggs: BTreeMap<String, SpanAgg> = snap
            .aggregate_spans()
            .into_iter()
            .map(|a| (a.path.clone(), a))
            .collect();
        let comm = (snap.comm.total_msgs(), snap.comm.total_bytes());

        let changed_counters: Vec<(String, Content)> = snap
            .counters
            .iter()
            .filter(|(k, v)| first || self.last_counters.get(*k) != Some(v))
            .map(|(k, v)| (k.clone(), Content::U64(*v)))
            .collect();
        let changed_aggs: Vec<Content> = aggs
            .values()
            .filter(|a| first || self.last_aggs.get(&a.path) != Some(a))
            .map(Serialize::serialize_value)
            .collect();

        let mut pairs = self.base(if first { "snapshot" } else { "delta" });
        pairs.push(("now_s".into(), Content::F64(now_s)));
        if first {
            pairs.push(("nranks".into(), Content::U64(snap.nranks as u64)));
        }
        pairs.push(("counters".into(), Content::Map(changed_counters)));
        pairs.push(("spans".into(), Content::Seq(changed_aggs)));
        if first || self.last_comm != Some(comm) {
            pairs.push((
                "comm".into(),
                Content::Map(vec![
                    ("msgs".into(), Content::U64(comm.0)),
                    ("bytes".into(), Content::U64(comm.1)),
                ]),
            ));
        }

        self.last_counters = snap.counters.clone();
        self.last_aggs = aggs;
        self.last_comm = Some(comm);
        serde_json::to_string(&Content::Map(pairs)).expect("telemetry line serializes")
    }

    /// Format a heartbeat line (no payload; proves liveness).
    pub fn heartbeat(&mut self) -> String {
        let pairs = self.base("heartbeat");
        serde_json::to_string(&Content::Map(pairs)).expect("heartbeat serializes")
    }
}

/// Clonable sender half of a telemetry sink: the recorder pushes
/// rate-limited snapshots through it.
#[derive(Debug, Clone)]
pub struct TelemetryHandle {
    tx: mpsc::Sender<(ObsSnapshot, f64)>,
    interval: Duration,
}

impl TelemetryHandle {
    /// The configured emission interval (recorders use it to
    /// rate-limit pushes; the writer uses it as heartbeat cadence).
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Push one snapshot to the writer thread. Quietly drops the
    /// snapshot if the writer is gone — telemetry must never take a
    /// run down.
    pub fn push(&self, snap: ObsSnapshot, now_s: f64) {
        let _ = self.tx.send((snap, now_s));
    }
}

/// The owning half of a telemetry stream: a writer thread that turns
/// pushed snapshots into JSONL lines and emits heartbeats while idle.
/// Dropping the last [`TelemetryHandle`] *and* calling
/// [`TelemetrySink::finish`] shuts the writer down cleanly.
#[derive(Debug)]
pub struct TelemetrySink {
    tx: Option<mpsc::Sender<(ObsSnapshot, f64)>>,
    interval: Duration,
    writer: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TelemetrySink {
    /// Spawn a writer thread emitting JSONL to `out`, heartbeating
    /// every `interval`.
    pub fn to_writer(mut out: Box<dyn Write + Send>, interval: Duration) -> Self {
        let (tx, rx) = mpsc::channel::<(ObsSnapshot, f64)>();
        let interval = interval.max(Duration::from_millis(1));
        let writer = std::thread::Builder::new()
            .name("mn-telemetry".into())
            .spawn(move || -> std::io::Result<()> {
                let mut stream = TelemetryStream::new();
                loop {
                    match rx.recv_timeout(interval) {
                        Ok((snap, now_s)) => {
                            writeln!(out, "{}", stream.line(&snap, now_s))?;
                            out.flush()?;
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            // Heartbeats before the first snapshot would
                            // break the "line 0 is a full snapshot"
                            // contract; stay silent until data arrives.
                            if stream.seq() > 0 {
                                writeln!(out, "{}", stream.heartbeat())?;
                                out.flush()?;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                out.flush()
            })
            .expect("spawn telemetry writer");
        Self {
            tx: Some(tx),
            interval,
            writer: Some(writer),
        }
    }

    /// Open `path` (`"-"` means stdout) and stream telemetry into it.
    pub fn to_path(path: &str, interval: Duration) -> std::io::Result<Self> {
        let out: Box<dyn Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::File::create(path)?)
        };
        Ok(Self::to_writer(out, interval))
    }

    /// A sender half for recorders to push through.
    pub fn handle(&self) -> TelemetryHandle {
        TelemetryHandle {
            tx: self.tx.clone().expect("sink not finished"),
            interval: self.interval,
        }
    }

    /// Drop the sink's sender and join the writer thread, surfacing
    /// any I/O error it hit. Handles still held elsewhere keep the
    /// writer alive until they drop too.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.tx = None;
        match self.writer.take() {
            Some(h) => h.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for TelemetrySink {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

/// Multi-subscriber telemetry fan-out: engines push snapshots through
/// a single [`TelemetryHandle`] (exactly like a [`TelemetrySink`]),
/// and every subscriber receives its own copy on its own channel. The
/// serve scheduler gives each running job one hub so any number of
/// watching clients can tail the same live stream; a subscriber that
/// hangs up is dropped silently and never stalls the run.
#[derive(Debug)]
pub struct TelemetryHub {
    tx: Option<mpsc::Sender<(ObsSnapshot, f64)>>,
    interval: Duration,
    subs: SubscriberList,
    pump: Option<std::thread::JoinHandle<()>>,
}

/// The hub's shared subscriber roster: the pump thread retains only
/// the senders whose receivers are still listening.
type SubscriberList = Arc<Mutex<Vec<mpsc::Sender<(ObsSnapshot, f64)>>>>;

impl TelemetryHub {
    /// Spawn the fan-out pump. `interval` is advertised to recorders
    /// through [`TelemetryHandle::interval`] as the push rate limit.
    pub fn new(interval: Duration) -> Self {
        let (tx, rx) = mpsc::channel::<(ObsSnapshot, f64)>();
        let subs: SubscriberList = Arc::new(Mutex::new(Vec::new()));
        let pump_subs = Arc::clone(&subs);
        let pump = std::thread::Builder::new()
            .name("mn-telemetry-hub".into())
            .spawn(move || {
                while let Ok((snap, now_s)) = rx.recv() {
                    let mut subs = pump_subs
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    // A failed send means that subscriber hung up;
                    // retain() drops it so the list never grows stale.
                    subs.retain(|sub| sub.send((snap.clone(), now_s)).is_ok());
                }
            })
            .expect("spawn telemetry hub");
        Self {
            tx: Some(tx),
            interval: interval.max(Duration::from_millis(1)),
            subs,
            pump: Some(pump),
        }
    }

    /// A sender half for recorders to push through — same shape the
    /// single-writer [`TelemetrySink::handle`] hands out.
    pub fn handle(&self) -> TelemetryHandle {
        TelemetryHandle {
            tx: self.tx.clone().expect("hub not finished"),
            interval: self.interval,
        }
    }

    /// Attach a new subscriber. Only snapshots pushed *after* this
    /// call are delivered — late watchers replay history from whatever
    /// the serve layer logged, not from the hub.
    pub fn subscribe(&self) -> mpsc::Receiver<(ObsSnapshot, f64)> {
        let (tx, rx) = mpsc::channel();
        self.subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(tx);
        rx
    }

    /// Drop the hub's own sender and join the pump once every cloned
    /// [`TelemetryHandle`] is gone; subscribers then see their channel
    /// disconnect — the end-of-stream signal.
    pub fn finish(mut self) {
        self.tx = None;
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryHub {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

/// A slot the dying code path fills with its final [`ObsSnapshot`].
/// The launch harness holds a clone outside the unwind path, so even
/// after a rank panicked (injected kill, comm abort) its span tree up
/// to the moment of death is available for post-mortem export.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStash {
    inner: Arc<Mutex<Option<ObsSnapshot>>>,
}

impl SnapshotStash {
    /// An empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fill the stash (last writer wins).
    pub fn store(&self, snap: ObsSnapshot) {
        *self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(snap);
    }

    /// A clone of the stashed snapshot, if any.
    pub fn get(&self) -> Option<ObsSnapshot> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn snap_with(counter_val: u64, busy: f64) -> ObsSnapshot {
        let mut rec = Recorder::new(2);
        rec.begin_phase("p", 0.0);
        rec.charge_busy(&[busy, 1.0]);
        rec.incr("x.count", counter_val);
        rec.snapshot(1.0)
    }

    #[test]
    fn first_line_is_full_then_deltas_shrink() {
        let mut stream = TelemetryStream::new();
        let l0 = stream.line(&snap_with(5, 1.0), 1.0);
        let v0: Content = serde_json::from_str(&l0).unwrap();
        assert_eq!(v0["kind"].as_str(), Some("snapshot"));
        assert_eq!(v0["seq"].as_u64(), Some(0));
        assert_eq!(
            v0["schema_version"].as_u64(),
            Some(TELEMETRY_SCHEMA_VERSION as u64)
        );
        assert_eq!(v0["nranks"].as_u64(), Some(2));
        assert_eq!(v0["counters"]["x.count"].as_u64(), Some(5));
        assert!(!v0["spans"].as_array().unwrap().is_empty());

        // Same state again: the delta carries no counters and no spans.
        let l1 = stream.line(&snap_with(5, 1.0), 2.0);
        let v1: Content = serde_json::from_str(&l1).unwrap();
        assert_eq!(v1["kind"].as_str(), Some("delta"));
        assert_eq!(v1["seq"].as_u64(), Some(1));
        assert!(v1["counters"].as_object().unwrap().is_empty());
        assert!(v1["spans"].as_array().unwrap().is_empty());

        // Changed counter: only it appears.
        let l2 = stream.line(&snap_with(9, 1.0), 3.0);
        let v2: Content = serde_json::from_str(&l2).unwrap();
        assert_eq!(v2["counters"]["x.count"].as_u64(), Some(9));

        let hb = stream.heartbeat();
        let vh: Content = serde_json::from_str(&hb).unwrap();
        assert_eq!(vh["kind"].as_str(), Some("heartbeat"));
        assert_eq!(vh["seq"].as_u64(), Some(3));
    }

    #[test]
    fn sink_writes_lines_and_heartbeats() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let sink = TelemetrySink::to_writer(Box::new(buf.clone()), Duration::from_millis(5));
        let handle = sink.handle();
        handle.push(snap_with(1, 1.0), 0.5);
        // Give the writer time to drain and then idle into heartbeats.
        std::thread::sleep(Duration::from_millis(40));
        handle.push(snap_with(2, 1.0), 1.5);
        drop(handle);
        sink.finish().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<Content> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert!(lines.len() >= 3, "expected snapshot+heartbeat(s)+delta: {text}");
        assert_eq!(lines[0]["kind"].as_str(), Some("snapshot"));
        assert!(lines.iter().any(|l| l["kind"].as_str() == Some("heartbeat")));
        assert_eq!(lines.last().unwrap()["kind"].as_str(), Some("delta"));
        // seq is dense and monotone across kinds.
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(l["seq"].as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn hub_fans_out_to_every_live_subscriber() {
        let hub = TelemetryHub::new(Duration::from_millis(5));
        let a = hub.subscribe();
        let b = hub.subscribe();
        let handle = hub.handle();
        handle.push(snap_with(1, 1.0), 0.5);
        let (snap_a, now_a) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        let (snap_b, now_b) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(snap_a.counters.get("x.count"), Some(&1));
        assert_eq!(snap_b.counters.get("x.count"), Some(&1));
        assert_eq!((now_a, now_b), (0.5, 0.5));

        // A hung-up subscriber is dropped; the survivor keeps receiving.
        drop(a);
        handle.push(snap_with(2, 1.0), 1.5);
        let (snap_b2, _) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(snap_b2.counters.get("x.count"), Some(&2));

        // finish() after the last handle drops ends every stream.
        drop(handle);
        hub.finish();
        assert!(b.recv().is_err(), "subscriber sees end-of-stream");
    }

    #[test]
    fn stash_roundtrip() {
        let stash = SnapshotStash::new();
        assert!(stash.get().is_none());
        let outside = stash.clone();
        stash.store(snap_with(3, 1.0));
        assert_eq!(outside.get().unwrap().counters.get("x.count"), Some(&3));
    }
}
