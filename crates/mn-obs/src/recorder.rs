//! Hierarchical span recording with per-rank busy attribution.
//!
//! A [`Recorder`] owns a stack of open spans and a log of closed ones.
//! Time charged via [`Recorder::charge_busy`] / [`Recorder::charge_comm`]
//! lands on the innermost open span *and all of its ancestors*, so a
//! parent span's busy time is always ≥ the sum of its children and the
//! paper's §5.3.1 imbalance metric `(busy_max − busy_avg)/busy_avg`
//! can be evaluated at any depth of the tree.
//!
//! Timestamps are plain `f64` seconds relative to an engine-chosen
//! epoch: wall-clock engines pass `Instant`-derived offsets, the sim
//! engine passes its virtual clock — both produce the same span tree
//! shape, which is what makes the chrome-trace export engine-agnostic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::Histogram;
use crate::sink;

/// The conventional name of the root span every [`Recorder`] opens.
pub const ROOT_SPAN: &str = "run";

/// One closed span: where it sat in the tree, when it ran, and the
/// per-rank busy seconds and communication seconds charged to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `"sweep:reassign-vars"`.
    pub name: String,
    /// Slash-joined path from the root, e.g. `"run/ganesh/ganesh-run"`.
    pub path: String,
    /// Depth in the tree (the root span is 0).
    pub depth: usize,
    /// Start time, seconds since the recorder's epoch.
    pub start_s: f64,
    /// End time, seconds since the recorder's epoch.
    pub end_s: f64,
    /// Busy seconds charged to this span, per rank.
    pub busy_s: Vec<f64>,
    /// Communication seconds charged to this span.
    pub comm_s: f64,
}

impl SpanRecord {
    /// Wall (or simulated) duration of the span.
    pub fn elapsed_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    path: String,
    depth: usize,
    start_s: f64,
    busy_s: Vec<f64>,
    comm_s: f64,
}

impl OpenSpan {
    fn close(self, end_s: f64) -> SpanRecord {
        SpanRecord {
            name: self.name,
            path: self.path,
            depth: self.depth,
            start_s: self.start_s,
            end_s,
            busy_s: self.busy_s,
            comm_s: self.comm_s,
        }
    }
}

/// The per-engine (or, under SPMD, per-rank) observability state:
/// span stack, closed-span log, counters, and timing histograms.
#[derive(Debug, Clone)]
pub struct Recorder {
    nranks: usize,
    rank: Option<usize>,
    stack: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Recorder {
    /// A recorder for an engine that observes all `nranks` ranks at
    /// once (serial, thread, sim). Opens the root `"run"` span at
    /// time 0.
    pub fn new(nranks: usize) -> Self {
        let mut r = Self {
            nranks: nranks.max(1),
            rank: None,
            stack: Vec::new(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        };
        r.push_span(ROOT_SPAN, 0.0);
        r
    }

    /// A recorder owned by one rank of an SPMD program. Busy charges
    /// from this rank land in slot `rank`; [`merge_ranks`] later
    /// combines the per-rank recorders into one snapshot.
    pub fn for_rank(nranks: usize, rank: usize) -> Self {
        let mut r = Self::new(nranks);
        r.rank = Some(rank);
        r
    }

    /// Number of ranks this recorder attributes busy time across.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The owning rank, when this recorder belongs to one SPMD rank.
    pub fn rank(&self) -> Option<usize> {
        self.rank
    }

    fn push_span(&mut self, name: &str, now_s: f64) {
        let (path, depth) = match self.stack.last() {
            Some(parent) => (format!("{}/{}", parent.path, name), parent.depth + 1),
            None => (name.to_string(), 0),
        };
        self.stack.push(OpenSpan {
            name: name.to_string(),
            path,
            depth,
            start_s: now_s,
            busy_s: vec![0.0; self.nranks],
            comm_s: 0.0,
        });
    }

    fn pop_span(&mut self, now_s: f64) {
        if let Some(span) = self.stack.pop() {
            let record = span.close(now_s);
            self.hists
                .entry(record.name.clone())
                .or_default()
                .record(record.elapsed_s());
            self.spans.push(record);
        }
    }

    /// Open a child span under the innermost open span.
    pub fn span_enter(&mut self, name: &str, now_s: f64) {
        self.push_span(name, now_s);
    }

    /// Close the innermost open span. The root span can only be closed
    /// by [`Recorder::finish`].
    pub fn span_exit(&mut self, now_s: f64) {
        if self.stack.len() > 1 {
            self.pop_span(now_s);
        }
    }

    /// Close any open phase (and its descendants) and open a new
    /// depth-1 span named `name` under the root.
    pub fn begin_phase(&mut self, name: &str, now_s: f64) {
        while self.stack.len() > 1 {
            self.pop_span(now_s);
        }
        self.push_span(name, now_s);
    }

    /// Close every open span, root included.
    pub fn finish(&mut self, now_s: f64) {
        while !self.stack.is_empty() {
            self.pop_span(now_s);
        }
    }

    /// Charge per-rank busy seconds to every open span.
    pub fn charge_busy(&mut self, busy_s: &[f64]) {
        for span in &mut self.stack {
            for (slot, b) in span.busy_s.iter_mut().zip(busy_s) {
                *slot += b;
            }
        }
    }

    /// Charge busy seconds to one rank's slot in every open span.
    pub fn charge_busy_rank(&mut self, rank: usize, busy_s: f64) {
        for span in &mut self.stack {
            if let Some(slot) = span.busy_s.get_mut(rank) {
                *slot += busy_s;
            }
        }
    }

    /// Charge communication seconds to every open span.
    pub fn charge_comm(&mut self, comm_s: f64) {
        for span in &mut self.stack {
            span.comm_s += comm_s;
        }
    }

    /// Increment a named counter (see [`crate::counters`]).
    pub fn incr(&mut self, counter: &str, by: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// All counters, by name. Checkpointed execution snapshots this
    /// around each unit of work to persist the unit's exact counter
    /// deltas (see `monet::checkpoint`).
    pub fn counters(&self) -> &std::collections::BTreeMap<String, u64> {
        &self.counters
    }

    /// Count one `dist_map*` call: the map itself, its logical item
    /// total, and the implied all-gather payload. Call with the
    /// *global* `n_items`, never a rank-local block size.
    pub fn count_dist_map(&mut self, n_items: usize, words_per_item: usize) {
        self.incr(crate::counters::ENGINE_DIST_MAPS, 1);
        self.incr(crate::counters::ENGINE_ITEMS, n_items as u64);
        self.incr(
            crate::counters::COMM_ALLGATHER_WORDS,
            (n_items * words_per_item) as u64,
        );
    }

    /// Count one explicit collective with its payload in words.
    pub fn count_collective(&mut self, words: usize) {
        self.incr(crate::counters::COMM_COLLECTIVES, 1);
        self.incr(crate::counters::COMM_COLLECTIVE_WORDS, words as u64);
    }

    /// Count replicated work units.
    pub fn count_replicated(&mut self, units: u64) {
        self.incr(crate::counters::ENGINE_REPLICATED_UNITS, units);
    }

    /// Emit one progress line through the quiet-able sink. Under SPMD
    /// only rank 0 prints, so `p` ranks produce one line, not `p`.
    pub fn note(&self, msg: &str) {
        if self.rank.is_none() || self.rank == Some(0) {
            sink::note(msg);
        }
    }

    /// Freeze the current state into a serializable snapshot. Spans
    /// still open are materialized as if they ended at `now_s` (the
    /// recorder itself is not mutated), so `&self` reporting works
    /// mid-run.
    pub fn snapshot(&self, now_s: f64) -> ObsSnapshot {
        let mut spans = self.spans.clone();
        let mut hists = self.hists.clone();
        // Outer spans first so open ancestors precede open children.
        for open in &self.stack {
            let record = open.clone().close(now_s);
            hists
                .entry(record.name.clone())
                .or_default()
                .record(record.elapsed_s());
            spans.push(record);
        }
        ObsSnapshot {
            nranks: self.nranks,
            spans,
            counters: self.counters.clone(),
            histograms: hists,
        }
    }
}

/// A frozen, serializable view of one recorder: the span log plus
/// counters and histograms. This is what `RUN_METRICS.json` embeds and
/// what the chrome-trace exporter consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Number of ranks busy time is attributed across.
    pub nranks: usize,
    /// Closed spans, in completion order (children before parents).
    pub spans: Vec<SpanRecord>,
    /// Deterministic event counters, by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Span-duration histograms, keyed by span *name* (not path).
    pub histograms: BTreeMap<String, Histogram>,
}

/// Per-path aggregate over all spans sharing that path: totals plus
/// the paper's §5.3.1 imbalance metric at that level of the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanAgg {
    /// Slash-joined span path.
    pub path: String,
    /// Number of span instances aggregated.
    pub count: u64,
    /// Total elapsed (wall or simulated) seconds.
    pub elapsed_s: f64,
    /// Busiest rank's total busy seconds.
    pub busy_max_s: f64,
    /// Mean busy seconds across ranks.
    pub busy_avg_s: f64,
    /// Total communication seconds.
    pub comm_s: f64,
    /// `(busy_max − busy_avg)/busy_avg`, 0 when idle.
    pub imbalance: f64,
}

impl ObsSnapshot {
    /// Aggregate spans by path, sorted by path for stable output.
    pub fn aggregate_spans(&self) -> Vec<SpanAgg> {
        let mut by_path: BTreeMap<&str, (u64, f64, Vec<f64>, f64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = by_path
                .entry(span.path.as_str())
                .or_insert_with(|| (0, 0.0, vec![0.0; self.nranks], 0.0));
            entry.0 += 1;
            entry.1 += span.elapsed_s();
            for (slot, b) in entry.2.iter_mut().zip(&span.busy_s) {
                *slot += b;
            }
            entry.3 += span.comm_s;
        }
        by_path
            .into_iter()
            .map(|(path, (count, elapsed_s, busy, comm_s))| {
                let busy_max_s = busy.iter().cloned().fold(0.0, f64::max);
                let busy_avg_s = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
                let imbalance = if busy_avg_s > 0.0 {
                    (busy_max_s - busy_avg_s) / busy_avg_s
                } else {
                    0.0
                };
                SpanAgg {
                    path: path.to_string(),
                    count,
                    elapsed_s,
                    busy_max_s,
                    busy_avg_s,
                    comm_s,
                    imbalance,
                }
            })
            .collect()
    }
}

/// Combine per-rank SPMD snapshots into one. All ranks run the same
/// program, so their span logs must align span-for-span; per-rank busy
/// vectors are summed elementwise (each rank only fills its own slot),
/// span windows take the min start / max end across ranks, and comm
/// takes the per-span max (ranks overlap inside the same collective).
///
/// Counters are part of the determinism contract: they must be
/// identical on every rank, and this function panics if they are not —
/// a divergence here means a counter was incremented from
/// partition-dependent code.
pub fn merge_ranks(snapshots: &[ObsSnapshot]) -> ObsSnapshot {
    assert!(!snapshots.is_empty(), "merge_ranks: no snapshots");
    let mut merged = snapshots[0].clone();
    for (r, snap) in snapshots.iter().enumerate().skip(1) {
        assert_eq!(
            snap.counters, merged.counters,
            "counter divergence between rank 0 and rank {r}"
        );
        assert_eq!(
            snap.spans.len(),
            merged.spans.len(),
            "span-log length divergence between rank 0 and rank {r}"
        );
        for (m, s) in merged.spans.iter_mut().zip(&snap.spans) {
            assert_eq!(
                m.path, s.path,
                "span-log path divergence between rank 0 and rank {r}"
            );
            m.start_s = m.start_s.min(s.start_s);
            m.end_s = m.end_s.max(s.end_s);
            m.comm_s = m.comm_s.max(s.comm_s);
            for (slot, b) in m.busy_s.iter_mut().zip(&s.busy_s) {
                *slot += b;
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters;

    #[test]
    fn charges_propagate_to_ancestors() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("ganesh", 1.0);
        rec.span_enter("sweep", 1.0);
        rec.charge_busy(&[2.0, 1.0]);
        rec.charge_comm(0.5);
        rec.span_exit(3.0);
        rec.finish(4.0);
        let snap = rec.snapshot(4.0);
        assert_eq!(snap.spans.len(), 3);
        let sweep = &snap.spans[0];
        let phase = &snap.spans[1];
        let root = &snap.spans[2];
        assert_eq!(sweep.path, "run/ganesh/sweep");
        assert_eq!(phase.path, "run/ganesh");
        assert_eq!(root.path, "run");
        for span in [sweep, phase, root] {
            assert_eq!(span.busy_s, vec![2.0, 1.0]);
            assert_eq!(span.comm_s, 0.5);
        }
        assert_eq!(sweep.depth, 2);
        assert!((sweep.elapsed_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn begin_phase_closes_previous_phase_but_not_root() {
        let mut rec = Recorder::new(1);
        rec.begin_phase("a", 0.0);
        rec.span_enter("inner", 0.0);
        rec.begin_phase("b", 2.0);
        rec.finish(3.0);
        let snap = rec.snapshot(3.0);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["run/a/inner", "run/a", "run/b", "run"]);
    }

    #[test]
    fn span_exit_never_pops_root() {
        let mut rec = Recorder::new(1);
        rec.span_exit(1.0);
        rec.charge_busy(&[1.0]);
        let snap = rec.snapshot(2.0);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "run");
        assert_eq!(snap.spans[0].busy_s, vec![1.0]);
    }

    #[test]
    fn snapshot_materializes_open_spans_without_mutating() {
        let mut rec = Recorder::new(1);
        rec.begin_phase("p", 0.5);
        let snap = rec.snapshot(2.0);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].path, "run");
        assert_eq!(snap.spans[1].path, "run/p");
        assert!((snap.spans[1].elapsed_s() - 1.5).abs() < 1e-12);
        // Recorder still has both spans open.
        rec.finish(3.0);
        assert_eq!(rec.snapshot(3.0).spans.len(), 2);
    }

    #[test]
    fn counters_and_helpers() {
        let mut rec = Recorder::new(4);
        rec.count_dist_map(100, 3);
        rec.count_dist_map(10, 1);
        rec.count_collective(7);
        rec.count_replicated(5);
        assert_eq!(rec.counter(counters::ENGINE_DIST_MAPS), 2);
        assert_eq!(rec.counter(counters::ENGINE_ITEMS), 110);
        assert_eq!(rec.counter(counters::COMM_ALLGATHER_WORDS), 310);
        assert_eq!(rec.counter(counters::COMM_COLLECTIVES), 1);
        assert_eq!(rec.counter(counters::COMM_COLLECTIVE_WORDS), 7);
        assert_eq!(rec.counter(counters::ENGINE_REPLICATED_UNITS), 5);
        assert_eq!(rec.counter("no.such"), 0);
    }

    #[test]
    fn aggregate_computes_imbalance_per_path() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("p", 0.0);
        rec.charge_busy(&[3.0, 1.0]);
        rec.begin_phase("p", 2.0);
        rec.charge_busy(&[1.0, 1.0]);
        rec.finish(4.0);
        let aggs = rec.snapshot(4.0).aggregate_spans();
        let p = aggs.iter().find(|a| a.path == "run/p").unwrap();
        assert_eq!(p.count, 2);
        // Summed busy: [4, 2] -> max 4, avg 3 -> imbalance 1/3.
        assert!((p.busy_max_s - 4.0).abs() < 1e-12);
        assert!((p.busy_avg_s - 3.0).abs() < 1e-12);
        assert!((p.imbalance - 1.0 / 3.0).abs() < 1e-12);
        let root = aggs.iter().find(|a| a.path == "run").unwrap();
        assert_eq!(root.count, 1);
        assert!((root.elapsed_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_ranks_sums_busy_and_checks_counters() {
        let mk = |rank: usize, busy: f64| {
            let mut rec = Recorder::for_rank(2, rank);
            rec.begin_phase("p", 0.0);
            rec.charge_busy_rank(rank, busy);
            rec.incr(counters::GIBBS_SWEEPS, 3);
            rec.finish(1.0 + rank as f64);
            rec.snapshot(1.0 + rank as f64)
        };
        let merged = merge_ranks(&[mk(0, 2.0), mk(1, 5.0)]);
        let p = &merged.spans[0];
        assert_eq!(p.path, "run/p");
        assert_eq!(p.busy_s, vec![2.0, 5.0]);
        let root = &merged.spans[1];
        assert!((root.end_s - 2.0).abs() < 1e-12);
        assert_eq!(merged.counters.get(counters::GIBBS_SWEEPS), Some(&3));
    }

    #[test]
    #[should_panic(expected = "counter divergence")]
    fn merge_ranks_panics_on_counter_divergence() {
        let mk = |n: u64| {
            let mut rec = Recorder::for_rank(2, 0);
            rec.incr(counters::GIBBS_SWEEPS, n);
            rec.finish(1.0);
            rec.snapshot(1.0)
        };
        merge_ranks(&[mk(1), mk(2)]);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("p", 0.0);
        rec.charge_busy(&[1.0, 2.0]);
        rec.incr(counters::SPLITS_SCORED, 42);
        rec.finish(1.0);
        let snap = rec.snapshot(1.0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
