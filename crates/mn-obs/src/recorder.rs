//! Hierarchical span recording with per-rank busy attribution.
//!
//! A [`Recorder`] owns a stack of open spans and a log of closed ones.
//! Time charged via [`Recorder::charge_busy`] / [`Recorder::charge_comm`]
//! lands on the innermost open span *and all of its ancestors*, so a
//! parent span's busy time is always ≥ the sum of its children and the
//! paper's §5.3.1 imbalance metric `(busy_max − busy_avg)/busy_avg`
//! can be evaluated at any depth of the tree.
//!
//! Timestamps are plain `f64` seconds relative to an engine-chosen
//! epoch: wall-clock engines pass `Instant`-derived offsets, the sim
//! engine passes its virtual clock — both produce the same span tree
//! shape, which is what makes the chrome-trace export engine-agnostic.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::commatrix::{CommMatrix, CommMatrixHandle};
use crate::flightrec::{FlightEvent, FlightRec};
use crate::hist::Histogram;
use crate::sink;
use crate::snapshot::TelemetryHandle;

/// The conventional name of the root span every [`Recorder`] opens.
pub const ROOT_SPAN: &str = "run";

/// One closed span: where it sat in the tree, when it ran, and the
/// per-rank busy seconds and communication seconds charged to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `"sweep:reassign-vars"`.
    pub name: String,
    /// Slash-joined path from the root, e.g. `"run/ganesh/ganesh-run"`.
    pub path: String,
    /// Depth in the tree (the root span is 0).
    pub depth: usize,
    /// Start time, seconds since the recorder's epoch.
    pub start_s: f64,
    /// End time, seconds since the recorder's epoch.
    pub end_s: f64,
    /// Busy seconds charged to this span, per rank.
    pub busy_s: Vec<f64>,
    /// Communication seconds charged to this span.
    pub comm_s: f64,
}

impl SpanRecord {
    /// Wall (or simulated) duration of the span.
    pub fn elapsed_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    path: String,
    depth: usize,
    start_s: f64,
    busy_s: Vec<f64>,
    comm_s: f64,
}

impl OpenSpan {
    fn close(self, end_s: f64) -> SpanRecord {
        SpanRecord {
            name: self.name,
            path: self.path,
            depth: self.depth,
            start_s: self.start_s,
            end_s,
            busy_s: self.busy_s,
            comm_s: self.comm_s,
        }
    }
}

/// Telemetry push state: the sink's sender half plus the wall-clock
/// rate limiter (wall clock even under sim, whose `now_s` is virtual —
/// cadence is about the observer, not the simulated run).
#[derive(Debug, Clone)]
struct Telemetry {
    handle: TelemetryHandle,
    last_push: Option<Instant>,
}

/// The per-engine (or, under SPMD, per-rank) observability state:
/// span stack, closed-span log, counters, timing histograms, flight
/// recorder, and communication matrix.
#[derive(Debug, Clone)]
pub struct Recorder {
    nranks: usize,
    rank: Option<usize>,
    stack: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    flight: FlightRec,
    comm: CommMatrixHandle,
    telemetry: Option<Telemetry>,
}

impl Recorder {
    fn build(nranks: usize, rank: Option<usize>, flight: Option<FlightRec>) -> Self {
        let nranks = nranks.max(1);
        let mut r = Self {
            nranks,
            rank,
            stack: Vec::new(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            flight: flight.unwrap_or_else(|| FlightRec::new(nranks, rank.unwrap_or(0))),
            comm: CommMatrixHandle::new(nranks),
            telemetry: None,
        };
        r.push_span(ROOT_SPAN, 0.0);
        r
    }

    /// A recorder for an engine that observes all `nranks` ranks at
    /// once (serial, thread, sim). Opens the root `"run"` span at
    /// time 0.
    pub fn new(nranks: usize) -> Self {
        Self::build(nranks, None, None)
    }

    /// A recorder owned by one rank of an SPMD program. Busy charges
    /// from this rank land in slot `rank`; [`merge_ranks`] later
    /// combines the per-rank recorders into one snapshot.
    pub fn for_rank(nranks: usize, rank: usize) -> Self {
        Self::build(nranks, Some(rank), None)
    }

    /// Like [`Recorder::for_rank`], but recording flight events into a
    /// caller-supplied black box — the launch harness keeps a clone of
    /// `flight` outside the rank's unwind path so it can dump the
    /// record after the rank dies.
    pub fn for_rank_with_flight(nranks: usize, rank: usize, flight: FlightRec) -> Self {
        Self::build(nranks, Some(rank), Some(flight))
    }

    /// Number of ranks this recorder attributes busy time across.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The owning rank, when this recorder belongs to one SPMD rank.
    pub fn rank(&self) -> Option<usize> {
        self.rank
    }

    /// A handle to this recorder's flight recorder (clones share the
    /// same ring buffers).
    pub fn flight(&self) -> FlightRec {
        self.flight.clone()
    }

    /// A handle to this recorder's communication matrix. Fabric
    /// endpoints attach a clone so sends land in the right phase.
    pub fn comm_matrix(&self) -> CommMatrixHandle {
        self.comm.clone()
    }

    /// Record a flight-recorder event on behalf of the engine (fault
    /// injections, communication failures).
    pub fn flight_event(&self, event: FlightEvent) {
        self.flight.record(event);
    }

    fn push_span(&mut self, name: &str, now_s: f64) {
        let (path, depth) = match self.stack.last() {
            Some(parent) => (format!("{}/{}", parent.path, name), parent.depth + 1),
            None => (name.to_string(), 0),
        };
        self.flight
            .record(FlightEvent::SpanEnter { path: path.clone() });
        self.stack.push(OpenSpan {
            name: name.to_string(),
            path,
            depth,
            start_s: now_s,
            busy_s: vec![0.0; self.nranks],
            comm_s: 0.0,
        });
    }

    fn pop_span(&mut self, now_s: f64) {
        if let Some(span) = self.stack.pop() {
            let record = span.close(now_s);
            self.flight.record(FlightEvent::SpanExit {
                path: record.path.clone(),
            });
            self.hists
                .entry(record.name.clone())
                .or_default()
                .record(record.elapsed_s());
            self.spans.push(record);
        }
    }

    /// Open a child span under the innermost open span.
    pub fn span_enter(&mut self, name: &str, now_s: f64) {
        self.push_span(name, now_s);
    }

    /// Close the innermost open span. The root span can only be closed
    /// by [`Recorder::finish`].
    pub fn span_exit(&mut self, now_s: f64) {
        if self.stack.len() > 1 {
            self.pop_span(now_s);
        }
    }

    /// Close any open phase (and its descendants) and open a new
    /// depth-1 span named `name` under the root. The communication
    /// matrix opens a matching phase bucket.
    pub fn begin_phase(&mut self, name: &str, now_s: f64) {
        while self.stack.len() > 1 {
            self.pop_span(now_s);
        }
        self.push_span(name, now_s);
        self.comm.begin_phase(name);
    }

    /// Close every open span, root included, and push a final
    /// telemetry snapshot if a sink is attached.
    pub fn finish(&mut self, now_s: f64) {
        while !self.stack.is_empty() {
            self.pop_span(now_s);
        }
        self.telemetry_flush(now_s);
    }

    /// Attach a telemetry sink: [`Recorder::telemetry_tick`] starts
    /// pushing rate-limited snapshots through `handle`.
    pub fn set_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = Some(Telemetry {
            handle,
            last_push: None,
        });
    }

    /// Push a telemetry snapshot if one is due (at most one per the
    /// sink's configured interval). Engines call this from their
    /// replicated entry points; it is a cheap clock check when no sink
    /// is attached or the interval has not elapsed.
    pub fn telemetry_tick(&mut self, now_s: f64) {
        let Some(tel) = &self.telemetry else { return };
        let due = match tel.last_push {
            None => true,
            Some(last) => last.elapsed() >= tel.handle.interval(),
        };
        if due {
            self.telemetry_flush(now_s);
        }
    }

    /// Push a telemetry snapshot unconditionally (run end, death).
    pub fn telemetry_flush(&mut self, now_s: f64) {
        let Some(tel) = &mut self.telemetry else { return };
        tel.last_push = Some(Instant::now());
        let handle = tel.handle.clone();
        handle.push(self.snapshot(now_s), now_s);
    }

    /// Charge per-rank busy seconds to every open span.
    pub fn charge_busy(&mut self, busy_s: &[f64]) {
        for span in &mut self.stack {
            for (slot, b) in span.busy_s.iter_mut().zip(busy_s) {
                *slot += b;
            }
        }
    }

    /// Charge busy seconds to one rank's slot in every open span.
    pub fn charge_busy_rank(&mut self, rank: usize, busy_s: f64) {
        for span in &mut self.stack {
            if let Some(slot) = span.busy_s.get_mut(rank) {
                *slot += busy_s;
            }
        }
    }

    /// Charge communication seconds to every open span.
    pub fn charge_comm(&mut self, comm_s: f64) {
        for span in &mut self.stack {
            span.comm_s += comm_s;
        }
    }

    /// Increment a named counter (see [`crate::counters`]).
    pub fn incr(&mut self, counter: &str, by: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// All counters, by name. Checkpointed execution snapshots this
    /// around each unit of work to persist the unit's exact counter
    /// deltas (see `monet::checkpoint`).
    pub fn counters(&self) -> &std::collections::BTreeMap<String, u64> {
        &self.counters
    }

    /// Count one `dist_map*` call: the map itself, its logical item
    /// total, and the implied all-gather payload. Call with the
    /// *global* `n_items`, never a rank-local block size.
    pub fn count_dist_map(&mut self, n_items: usize, words_per_item: usize) {
        self.incr(crate::counters::ENGINE_DIST_MAPS, 1);
        self.incr(crate::counters::ENGINE_ITEMS, n_items as u64);
        self.incr(
            crate::counters::COMM_ALLGATHER_WORDS,
            (n_items * words_per_item) as u64,
        );
    }

    /// Count one explicit collective with its payload in words.
    pub fn count_collective(&mut self, words: usize) {
        self.incr(crate::counters::COMM_COLLECTIVES, 1);
        self.incr(crate::counters::COMM_COLLECTIVE_WORDS, words as u64);
    }

    /// Count replicated work units.
    pub fn count_replicated(&mut self, units: u64) {
        self.incr(crate::counters::ENGINE_REPLICATED_UNITS, units);
    }

    /// Emit one progress line through the quiet-able sink. Under SPMD
    /// only rank 0 prints, so `p` ranks produce one line, not `p`.
    pub fn note(&self, msg: &str) {
        if self.rank.is_none() || self.rank == Some(0) {
            sink::note(msg);
        }
    }

    /// Freeze the current state into a serializable snapshot. Spans
    /// still open are materialized as if they ended at `now_s` (the
    /// recorder itself is not mutated), so `&self` reporting works
    /// mid-run.
    pub fn snapshot(&self, now_s: f64) -> ObsSnapshot {
        let mut spans = self.spans.clone();
        let mut hists = self.hists.clone();
        // Outer spans first so open ancestors precede open children.
        for open in &self.stack {
            let record = open.clone().close(now_s);
            hists
                .entry(record.name.clone())
                .or_default()
                .record(record.elapsed_s());
            spans.push(record);
        }
        ObsSnapshot {
            nranks: self.nranks,
            spans,
            counters: self.counters.clone(),
            histograms: hists,
            comm: self.comm.snapshot(),
        }
    }
}

/// A frozen, serializable view of one recorder: the span log plus
/// counters and histograms. This is what `RUN_METRICS.json` embeds and
/// what the chrome-trace exporter consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Number of ranks busy time is attributed across.
    pub nranks: usize,
    /// Closed spans, in completion order (children before parents).
    pub spans: Vec<SpanRecord>,
    /// Deterministic event counters, by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Span-duration histograms, keyed by span *name* (not path).
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-phase src→dst communication matrix. Under SPMD each rank's
    /// snapshot holds its own sender rows; [`merge_ranks`] sums them.
    pub comm: CommMatrix,
}

/// Per-path aggregate over all spans sharing that path: totals plus
/// the paper's §5.3.1 imbalance metric at that level of the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanAgg {
    /// Slash-joined span path.
    pub path: String,
    /// Number of span instances aggregated.
    pub count: u64,
    /// Total elapsed (wall or simulated) seconds.
    pub elapsed_s: f64,
    /// Busiest rank's total busy seconds.
    pub busy_max_s: f64,
    /// Mean busy seconds across ranks.
    pub busy_avg_s: f64,
    /// Total communication seconds.
    pub comm_s: f64,
    /// `(busy_max − busy_avg)/busy_avg`, 0 when idle.
    pub imbalance: f64,
    /// Median span duration, from the span-name histogram (shared by
    /// all paths ending in the same name).
    pub p50_s: f64,
    /// 95th-percentile span duration, from the span-name histogram.
    pub p95_s: f64,
    /// 99th-percentile span duration, from the span-name histogram.
    pub p99_s: f64,
}

impl ObsSnapshot {
    /// Aggregate spans by path, sorted by path for stable output.
    pub fn aggregate_spans(&self) -> Vec<SpanAgg> {
        let mut by_path: BTreeMap<&str, (u64, f64, Vec<f64>, f64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = by_path
                .entry(span.path.as_str())
                .or_insert_with(|| (0, 0.0, vec![0.0; self.nranks], 0.0));
            entry.0 += 1;
            entry.1 += span.elapsed_s();
            for (slot, b) in entry.2.iter_mut().zip(&span.busy_s) {
                *slot += b;
            }
            entry.3 += span.comm_s;
        }
        by_path
            .into_iter()
            .map(|(path, (count, elapsed_s, busy, comm_s))| {
                let busy_max_s = busy.iter().cloned().fold(0.0, f64::max);
                let busy_avg_s = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
                let imbalance = if busy_avg_s > 0.0 {
                    (busy_max_s - busy_avg_s) / busy_avg_s
                } else {
                    0.0
                };
                let name = path.rsplit('/').next().unwrap_or(path);
                let hist = self.histograms.get(name);
                SpanAgg {
                    path: path.to_string(),
                    count,
                    elapsed_s,
                    busy_max_s,
                    busy_avg_s,
                    comm_s,
                    imbalance,
                    p50_s: hist.map_or(0.0, Histogram::p50_s),
                    p95_s: hist.map_or(0.0, Histogram::p95_s),
                    p99_s: hist.map_or(0.0, Histogram::p99_s),
                }
            })
            .collect()
    }
}

/// Why [`merge_ranks`] refused to combine per-rank snapshots, carrying
/// the *first* divergence so the operator can see exactly which
/// counter or span broke the replicated-control-flow contract on which
/// rank.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No snapshots were supplied.
    NoSnapshots,
    /// A counter differs between rank 0 and `rank`. A divergence here
    /// means a counter was incremented from partition-dependent code.
    CounterDivergence {
        /// The diverging rank.
        rank: usize,
        /// First diverging counter name (in sorted counter order).
        counter: String,
        /// Rank 0's value (`None` if rank 0 never incremented it).
        rank0: Option<u64>,
        /// The diverging rank's value (`None` if never incremented).
        other: Option<u64>,
    },
    /// The span logs have different lengths.
    SpanLogLength {
        /// The diverging rank.
        rank: usize,
        /// Rank 0's span count.
        rank0: usize,
        /// The diverging rank's span count.
        other: usize,
    },
    /// The span logs disagree on a span path.
    SpanPathDivergence {
        /// The diverging rank.
        rank: usize,
        /// Index of the first diverging span in the span log.
        index: usize,
        /// Rank 0's span path at that index.
        rank0: String,
        /// The diverging rank's span path at that index.
        other: String,
    },
    /// The per-rank communication matrices cannot be summed (phase
    /// lists misaligned).
    CommMatrix(
        /// Description of the misalignment.
        String,
    ),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::NoSnapshots => write!(f, "merge_ranks: no snapshots"),
            MergeError::CounterDivergence {
                rank,
                counter,
                rank0,
                other,
            } => write!(
                f,
                "counter divergence between rank 0 and rank {rank}: \
                 counter {counter:?} is {rank0:?} on rank 0 but {other:?} on rank {rank}"
            ),
            MergeError::SpanLogLength { rank, rank0, other } => write!(
                f,
                "span-log length divergence between rank 0 and rank {rank}: \
                 {rank0} spans vs {other}"
            ),
            MergeError::SpanPathDivergence {
                rank,
                index,
                rank0,
                other,
            } => write!(
                f,
                "span-log path divergence between rank 0 and rank {rank} \
                 at span {index}: {rank0:?} vs {other:?}"
            ),
            MergeError::CommMatrix(detail) => {
                write!(f, "communication-matrix divergence: {detail}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// First key at which two counter maps differ, walking the union of
/// keys in sorted order.
fn first_counter_divergence(
    a: &BTreeMap<String, u64>,
    b: &BTreeMap<String, u64>,
) -> Option<(String, Option<u64>, Option<u64>)> {
    a.iter()
        .map(|(k, v)| (k, Some(*v), b.get(k).copied()))
        .chain(
            b.iter()
                .filter(|(k, _)| !a.contains_key(*k))
                .map(|(k, v)| (k, None, Some(*v))),
        )
        .filter(|(_, va, vb)| va != vb)
        .min_by(|(ka, ..), (kb, ..)| ka.cmp(kb))
        .map(|(k, va, vb)| (k.clone(), va, vb))
}

/// Combine per-rank SPMD snapshots into one. All ranks run the same
/// program, so their span logs must align span-for-span; per-rank busy
/// vectors are summed elementwise (each rank only fills its own slot),
/// span windows take the min start / max end across ranks, comm
/// seconds take the per-span max (ranks overlap inside the same
/// collective), and communication matrices sum elementwise (each rank
/// recorded only its own sender rows).
///
/// Counters are part of the determinism contract: they must be
/// identical on every rank, and any divergence is returned as a typed
/// [`MergeError`] carrying the first differing counter or span so the
/// CLI can surface it as a nonzero exit instead of a panic.
pub fn merge_ranks(snapshots: &[ObsSnapshot]) -> Result<ObsSnapshot, MergeError> {
    let mut merged = snapshots.first().cloned().ok_or(MergeError::NoSnapshots)?;
    for (r, snap) in snapshots.iter().enumerate().skip(1) {
        if snap.counters != merged.counters {
            let (counter, rank0, other) =
                first_counter_divergence(&snapshots[0].counters, &snap.counters)
                    .expect("maps differ, so a first divergence exists");
            return Err(MergeError::CounterDivergence {
                rank: r,
                counter,
                rank0,
                other,
            });
        }
        if snap.spans.len() != merged.spans.len() {
            return Err(MergeError::SpanLogLength {
                rank: r,
                rank0: merged.spans.len(),
                other: snap.spans.len(),
            });
        }
        for (index, (m, s)) in merged.spans.iter_mut().zip(&snap.spans).enumerate() {
            if m.path != s.path {
                return Err(MergeError::SpanPathDivergence {
                    rank: r,
                    index,
                    rank0: m.path.clone(),
                    other: s.path.clone(),
                });
            }
            m.start_s = m.start_s.min(s.start_s);
            m.end_s = m.end_s.max(s.end_s);
            m.comm_s = m.comm_s.max(s.comm_s);
            for (slot, b) in m.busy_s.iter_mut().zip(&s.busy_s) {
                *slot += b;
            }
        }
    }
    merged.comm = CommMatrix::merged(
        &snapshots.iter().map(|s| s.comm.clone()).collect::<Vec<_>>(),
    )
    .map_err(MergeError::CommMatrix)?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters;

    #[test]
    fn charges_propagate_to_ancestors() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("ganesh", 1.0);
        rec.span_enter("sweep", 1.0);
        rec.charge_busy(&[2.0, 1.0]);
        rec.charge_comm(0.5);
        rec.span_exit(3.0);
        rec.finish(4.0);
        let snap = rec.snapshot(4.0);
        assert_eq!(snap.spans.len(), 3);
        let sweep = &snap.spans[0];
        let phase = &snap.spans[1];
        let root = &snap.spans[2];
        assert_eq!(sweep.path, "run/ganesh/sweep");
        assert_eq!(phase.path, "run/ganesh");
        assert_eq!(root.path, "run");
        for span in [sweep, phase, root] {
            assert_eq!(span.busy_s, vec![2.0, 1.0]);
            assert_eq!(span.comm_s, 0.5);
        }
        assert_eq!(sweep.depth, 2);
        assert!((sweep.elapsed_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn begin_phase_closes_previous_phase_but_not_root() {
        let mut rec = Recorder::new(1);
        rec.begin_phase("a", 0.0);
        rec.span_enter("inner", 0.0);
        rec.begin_phase("b", 2.0);
        rec.finish(3.0);
        let snap = rec.snapshot(3.0);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["run/a/inner", "run/a", "run/b", "run"]);
    }

    #[test]
    fn span_exit_never_pops_root() {
        let mut rec = Recorder::new(1);
        rec.span_exit(1.0);
        rec.charge_busy(&[1.0]);
        let snap = rec.snapshot(2.0);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "run");
        assert_eq!(snap.spans[0].busy_s, vec![1.0]);
    }

    #[test]
    fn snapshot_materializes_open_spans_without_mutating() {
        let mut rec = Recorder::new(1);
        rec.begin_phase("p", 0.5);
        let snap = rec.snapshot(2.0);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].path, "run");
        assert_eq!(snap.spans[1].path, "run/p");
        assert!((snap.spans[1].elapsed_s() - 1.5).abs() < 1e-12);
        // Recorder still has both spans open.
        rec.finish(3.0);
        assert_eq!(rec.snapshot(3.0).spans.len(), 2);
    }

    #[test]
    fn counters_and_helpers() {
        let mut rec = Recorder::new(4);
        rec.count_dist_map(100, 3);
        rec.count_dist_map(10, 1);
        rec.count_collective(7);
        rec.count_replicated(5);
        assert_eq!(rec.counter(counters::ENGINE_DIST_MAPS), 2);
        assert_eq!(rec.counter(counters::ENGINE_ITEMS), 110);
        assert_eq!(rec.counter(counters::COMM_ALLGATHER_WORDS), 310);
        assert_eq!(rec.counter(counters::COMM_COLLECTIVES), 1);
        assert_eq!(rec.counter(counters::COMM_COLLECTIVE_WORDS), 7);
        assert_eq!(rec.counter(counters::ENGINE_REPLICATED_UNITS), 5);
        assert_eq!(rec.counter("no.such"), 0);
    }

    #[test]
    fn aggregate_computes_imbalance_per_path() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("p", 0.0);
        rec.charge_busy(&[3.0, 1.0]);
        rec.begin_phase("p", 2.0);
        rec.charge_busy(&[1.0, 1.0]);
        rec.finish(4.0);
        let aggs = rec.snapshot(4.0).aggregate_spans();
        let p = aggs.iter().find(|a| a.path == "run/p").unwrap();
        assert_eq!(p.count, 2);
        // Summed busy: [4, 2] -> max 4, avg 3 -> imbalance 1/3.
        assert!((p.busy_max_s - 4.0).abs() < 1e-12);
        assert!((p.busy_avg_s - 3.0).abs() < 1e-12);
        assert!((p.imbalance - 1.0 / 3.0).abs() < 1e-12);
        let root = aggs.iter().find(|a| a.path == "run").unwrap();
        assert_eq!(root.count, 1);
        assert!((root.elapsed_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_ranks_sums_busy_and_checks_counters() {
        let mk = |rank: usize, busy: f64| {
            let mut rec = Recorder::for_rank(2, rank);
            rec.begin_phase("p", 0.0);
            rec.charge_busy_rank(rank, busy);
            rec.incr(counters::GIBBS_SWEEPS, 3);
            rec.finish(1.0 + rank as f64);
            rec.snapshot(1.0 + rank as f64)
        };
        let merged = merge_ranks(&[mk(0, 2.0), mk(1, 5.0)]).unwrap();
        let p = &merged.spans[0];
        assert_eq!(p.path, "run/p");
        assert_eq!(p.busy_s, vec![2.0, 5.0]);
        let root = &merged.spans[1];
        assert!((root.end_s - 2.0).abs() < 1e-12);
        assert_eq!(merged.counters.get(counters::GIBBS_SWEEPS), Some(&3));
    }

    #[test]
    fn merge_ranks_reports_first_counter_divergence() {
        let mk = |n: u64| {
            let mut rec = Recorder::for_rank(2, 0);
            rec.incr(counters::GIBBS_SWEEPS, n);
            // A counter that agrees, sorting *before* the diverging
            // one, must not be reported.
            rec.incr("a.same", 7);
            rec.finish(1.0);
            rec.snapshot(1.0)
        };
        let err = merge_ranks(&[mk(1), mk(2)]).unwrap_err();
        assert_eq!(
            err,
            MergeError::CounterDivergence {
                rank: 1,
                counter: counters::GIBBS_SWEEPS.to_string(),
                rank0: Some(1),
                other: Some(2),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains(counters::GIBBS_SWEEPS), "{msg}");
    }

    #[test]
    fn merge_ranks_reports_missing_counter_and_span_divergence() {
        let base = |extra: bool| {
            let mut rec = Recorder::for_rank(2, 0);
            if extra {
                rec.incr("z.only", 1);
            }
            rec.finish(1.0);
            rec.snapshot(1.0)
        };
        let err = merge_ranks(&[base(true), base(false)]).unwrap_err();
        assert_eq!(
            err,
            MergeError::CounterDivergence {
                rank: 1,
                counter: "z.only".into(),
                rank0: Some(1),
                other: None,
            }
        );

        let spanned = |name: &str| {
            let mut rec = Recorder::for_rank(2, 0);
            rec.begin_phase(name, 0.0);
            rec.finish(1.0);
            rec.snapshot(1.0)
        };
        let err = merge_ranks(&[spanned("a"), spanned("b")]).unwrap_err();
        assert_eq!(
            err,
            MergeError::SpanPathDivergence {
                rank: 1,
                index: 0,
                rank0: "run/a".into(),
                other: "run/b".into(),
            }
        );
        assert_eq!(merge_ranks(&[]).unwrap_err(), MergeError::NoSnapshots);
    }

    #[test]
    fn merge_ranks_sums_comm_matrices() {
        let mk = |rank: usize| {
            let mut rec = Recorder::for_rank(2, rank);
            rec.begin_phase("p", 0.0);
            rec.comm_matrix().record(rank, 1 - rank, 10);
            rec.finish(1.0);
            rec.snapshot(1.0)
        };
        let merged = merge_ranks(&[mk(0), mk(1)]).unwrap();
        assert_eq!(merged.comm.total_msgs(), 2);
        assert_eq!(merged.comm.total_bytes(), 20);
        let phase = merged.comm.phase("p").unwrap();
        assert_eq!(phase.msgs, vec![0, 1, 1, 0]);
    }

    #[test]
    fn span_flow_records_deterministic_flight_events() {
        use crate::flightrec::FlightEvent;
        let mut rec = Recorder::new(1);
        rec.begin_phase("p", 0.0);
        rec.span_enter("inner", 0.0);
        rec.span_exit(1.0);
        rec.finish(2.0);
        let events: Vec<FlightEvent> = rec
            .flight()
            .det_events()
            .into_iter()
            .map(|r| r.event)
            .collect();
        assert_eq!(
            events,
            vec![
                FlightEvent::SpanEnter { path: "run".into() },
                FlightEvent::SpanEnter {
                    path: "run/p".into()
                },
                FlightEvent::SpanEnter {
                    path: "run/p/inner".into()
                },
                FlightEvent::SpanExit {
                    path: "run/p/inner".into()
                },
                FlightEvent::SpanExit {
                    path: "run/p".into()
                },
                FlightEvent::SpanExit { path: "run".into() },
            ]
        );
    }

    #[test]
    fn aggregates_carry_histogram_percentiles() {
        let mut rec = Recorder::new(1);
        for i in 0..4 {
            rec.begin_phase("p", i as f64);
        }
        rec.finish(4.0);
        let aggs = rec.snapshot(4.0).aggregate_spans();
        let p = aggs.iter().find(|a| a.path == "run/p").unwrap();
        // Four 1 s instances: every percentile estimates ~1 s (clamped
        // to the observed max).
        assert!(p.p50_s > 0.0);
        assert!(p.p50_s <= p.p95_s && p.p95_s <= p.p99_s);
        assert!(p.p99_s <= rec.snapshot(4.0).histograms["p"].max_s + 1e-12);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut rec = Recorder::new(2);
        rec.begin_phase("p", 0.0);
        rec.charge_busy(&[1.0, 2.0]);
        rec.incr(counters::SPLITS_SCORED, 42);
        rec.finish(1.0);
        let snap = rec.snapshot(1.0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
