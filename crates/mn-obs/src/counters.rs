//! The counter registry: every deterministic event counter in the
//! pipeline, by name.
//!
//! Names are dot-separated `<subsystem>.<event>` strings. The set is
//! closed on purpose — a counter is part of the cross-engine
//! equivalence contract (see the crate docs), so adding one means
//! adding it to the golden files and the equality suite too.

/// Block-partitioned map invocations (`ParEngine::dist_map*`).
pub const ENGINE_DIST_MAPS: &str = "engine.dist_maps";
/// Work items executed across all `dist_map*` calls (the union of all
/// ranks' blocks — identical on every engine by the SPMD contract).
pub const ENGINE_ITEMS: &str = "engine.items";
/// Work units charged through `ParEngine::replicated`.
pub const ENGINE_REPLICATED_UNITS: &str = "engine.replicated_units";

/// Explicit collective operations (`ParEngine::collective`).
pub const COMM_COLLECTIVES: &str = "comm.collectives";
/// Total payload of explicit collectives, in 8-byte words.
pub const COMM_COLLECTIVE_WORDS: &str = "comm.collective_words";
/// Total payload of the all-gathers implied by `dist_map*`
/// (`n_items × words_per_item`), in 8-byte words.
pub const COMM_ALLGATHER_WORDS: &str = "comm.allgather_words";

/// Gibbs sweeps executed (reassign/merge, variables and observations).
pub const GIBBS_SWEEPS: &str = "gibbs.sweeps";
/// Moves proposed across all sweeps (one per sweep iteration).
pub const GIBBS_MOVES_PROPOSED: &str = "gibbs.moves_proposed";
/// Proposed moves that changed the state (reassignment to a different
/// cluster, or an actual merge).
pub const GIBBS_MOVES_ACCEPTED: &str = "gibbs.moves_accepted";
/// Sweeps executed with the batched candidate-scoring kernel.
pub const GIBBS_KERNEL_DISPATCHES: &str = "gibbs.kernel_dispatches";
/// Sweeps executed with the naive per-candidate scoring path.
pub const GIBBS_NAIVE_DISPATCHES: &str = "gibbs.naive_dispatches";
/// Tile-statistic cache lookups served without recomputation
/// (kernel path only; lookups happen in replicated control flow, so
/// the count is deterministic across engines and rank counts).
pub const GIBBS_CACHE_HITS: &str = "gibbs.cache_hits";
/// Tile-statistic cache lookups that recomputed (absent/stale entry).
pub const GIBBS_CACHE_MISSES: &str = "gibbs.cache_misses";

/// Module tree ensembles learned (one per module).
pub const TREE_MODULES: &str = "tree.modules";
/// Regression trees built.
pub const TREE_TREES: &str = "tree.trees";
/// Pair merges performed across all tree builds.
pub const TREE_MERGES: &str = "tree.merges";

/// Checkpoint units computed and persisted this run. Only present
/// when checkpointing is enabled; together with
/// [`CHECKPOINT_UNITS_SKIPPED`] it is excluded from cross-run
/// equivalence comparisons and from the golden files (a resumed run
/// legitimately skips what the interrupted run wrote).
pub const CHECKPOINT_UNITS_WRITTEN: &str = "checkpoint.units_written";
/// Checkpoint units restored from disk instead of recomputed.
pub const CHECKPOINT_UNITS_SKIPPED: &str = "checkpoint.units_skipped";

/// Stored upper-triangle entries (diagonal included) of the
/// thresholded co-occurrence matrix of task 2. Backend-independent:
/// the dense path counts its post-threshold non-zeros exactly as the
/// sparse path counts its stored entries.
pub const CONSENSUS_NNZ: &str = "consensus.nnz";
/// Power-iteration matrix–vector products executed by task 2's
/// spectral extraction (on the sparse backend each one is a sharded
/// `dist_map` over the active rows).
pub const CONSENSUS_MATVEC_DISPATCHES: &str = "consensus.matvec_dispatches";
/// Variables discarded by the spectral extraction's minimum-cluster-
/// size filter — truncation made observable, per the no-silent-caps
/// rule.
pub const CONSENSUS_DROPPED_VARS: &str = "consensus.dropped_vars";

/// Candidate splits scored in the split-assignment phase.
pub const SPLITS_SCORED: &str = "splits.scored";
/// Tree nodes that received split assignments.
pub const SPLITS_NODES: &str = "splits.nodes";
/// Split-assignment phases executed with the batched prefix-sum kernel.
pub const SPLITS_KERNEL_DISPATCHES: &str = "splits.kernel_dispatches";
/// Split-assignment phases executed with the naive per-candidate pass.
pub const SPLITS_NAIVE_DISPATCHES: &str = "splits.naive_dispatches";

/// `ln Γ` evaluations requested through a memoized half-integer table
/// ([`LnGammaTable`](../mn_score/special/struct.LnGammaTable.html)).
/// Counted analytically in replicated control flow — never from the
/// table's internal state, which fills in a scheduling-dependent order
/// under threaded engines — so the value is deterministic across
/// engines and rank counts.
pub const SCORE_LN_GAMMA_CALLS: &str = "score.ln_gamma_calls";
/// Table-served `ln Γ` evaluations: requests answered from the memo
/// instead of running the Lanczos series. Counted analytically
/// alongside [`SCORE_LN_GAMMA_CALLS`]; `calls - hits` is the number of
/// Lanczos evaluations actually performed.
pub const SCORE_LN_GAMMA_TABLE_HITS: &str = "score.ln_gamma_table_hits";
/// Scratch-arena reuses in the split-assignment kernel: segments
/// scored into arena buffers that were already warm from an earlier
/// segment of the same phase (i.e. segments beyond the first). A
/// canonical per-call count — actual pool handoffs vary with thread
/// scheduling, so the counter records the scheduling-independent
/// reuse opportunity instead.
pub const SCORE_SCRATCH_REUSES: &str = "score.scratch_reuses";
