//! The per-rank flight recorder: a bounded-memory black box.
//!
//! Long SPMD runs die in ways the span tree cannot explain after the
//! fact: the recorder that owned the spans unwound with the rank. The
//! flight recorder is the always-on complement — a fixed-size ring
//! buffer of compact events ([`FlightEvent`]) held behind a clonable
//! [`FlightRec`] handle, so the harness that launched a rank can keep a
//! handle *outside* the unwind path and dump the black box after the
//! rank is gone (`flightrec-rank<k>.jsonl`, one JSON object per line).
//!
//! Events come in two classes:
//!
//! * **Deterministic** events (span enter/exit, checkpoint unit
//!   commits) are recorded from replicated control flow only, exactly
//!   like the counters of [`crate::counters`]. Their sequence —
//!   timestamps excluded — is bit-identical across every engine and
//!   rank count, which is what lets the kill–resume suite assert that
//!   a dead rank's black box replay-matches the survivors', and what
//!   the committed golden record pins.
//! * **Local** events (fabric send/recv with peer + wire bytes,
//!   dropped messages, injected faults, communication failures, RNG
//!   stream jumps) describe what *this* rank physically did. They are
//!   partition- and engine-dependent by nature and are excluded from
//!   cross-engine comparison.
//!
//! The two classes live in separate rings so a burst of hot local
//! events can never evict the deterministic record. Each ring keeps a
//! monotone per-class sequence number; eviction is visible as a
//! nonzero `dropped` count in the dump header, and cross-rank
//! comparison works on the seq-number overlap window
//! ([`det_overlap_matches`]).

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Content, DeError, Deserialize, Serialize};

/// Schema version stamped into every dump's header line.
pub const FLIGHTREC_SCHEMA_VERSION: u32 = 1;

/// Default capacity of the deterministic-event ring.
pub const DEFAULT_DET_CAPACITY: usize = 4096;

/// Default capacity of the local-event ring.
pub const DEFAULT_LOCAL_CAPACITY: usize = 8192;

/// One compact flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A span was opened (deterministic). `path` is the slash-joined
    /// span path, e.g. `"run/ganesh/ganesh-run"`.
    SpanEnter {
        /// Slash-joined span path.
        path: String,
    },
    /// A span was closed (deterministic).
    SpanExit {
        /// Slash-joined span path.
        path: String,
    },
    /// A checkpoint unit committed (deterministic): `written` is true
    /// when the unit was computed and persisted this run, false when
    /// it was restored from the store. Recorded on every rank at the
    /// same replicated point, not only on the I/O rank.
    CkptUnit {
        /// Checkpoint unit name, e.g. `"ganesh_run_0"`.
        unit: String,
        /// `true` = computed and written; `false` = restored.
        written: bool,
    },
    /// A fabric message left this rank (local).
    Send {
        /// Destination rank.
        peer: usize,
        /// Shallow wire bytes of the payload.
        bytes: u64,
    },
    /// A fabric message arrived at this rank (local).
    Recv {
        /// Source rank.
        peer: usize,
        /// Shallow wire bytes of the payload.
        bytes: u64,
    },
    /// An outgoing message was discarded by a `Drop` fault (local).
    MsgDropped {
        /// Destination rank of the discarded message.
        peer: usize,
    },
    /// The fault plan fired on this rank (local).
    FaultInjected {
        /// Action label: `"kill"`, `"delay"`, or `"drop"`.
        action: String,
        /// The fabric/engine event number the fault fired at.
        event: u64,
    },
    /// This rank is aborting on a communication error (local). The
    /// last event of a survivor that observed a dead peer.
    CommFailure {
        /// Human-readable rendering of the [`CommError`-shaped] cause.
        detail: String,
    },
    /// An O(1) PRNG stream jump (local; jumps happen inside
    /// block-partitioned loops, so their sequence is rank-dependent).
    RngJump {
        /// The logical draw position jumped to (or jump length, for
        /// relative jumps).
        draw: u64,
    },
}

impl FlightEvent {
    /// Whether this event belongs to the deterministic class (recorded
    /// from replicated control flow; cross-engine comparable).
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            FlightEvent::SpanEnter { .. }
                | FlightEvent::SpanExit { .. }
                | FlightEvent::CkptUnit { .. }
        )
    }

    /// The event's kind tag, as serialized into the dump.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::SpanEnter { .. } => "span-enter",
            FlightEvent::SpanExit { .. } => "span-exit",
            FlightEvent::CkptUnit { .. } => "ckpt-unit",
            FlightEvent::Send { .. } => "send",
            FlightEvent::Recv { .. } => "recv",
            FlightEvent::MsgDropped { .. } => "msg-dropped",
            FlightEvent::FaultInjected { .. } => "fault-injected",
            FlightEvent::CommFailure { .. } => "comm-failure",
            FlightEvent::RngJump { .. } => "rng-jump",
        }
    }
}

/// One recorded event: per-class sequence number, seconds since the
/// recorder's creation, and the event itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Per-class sequence number, counted from 0 at recorder creation
    /// (monotone even across ring eviction).
    pub seq: u64,
    /// Seconds since the recorder was created (wall clock; excluded
    /// from all determinism comparisons and goldens).
    pub t_s: f64,
    /// The event.
    pub event: FlightEvent,
}

impl Serialize for FlightRecord {
    fn serialize_value(&self) -> Content {
        let mut pairs: Vec<(String, Content)> = vec![
            ("seq".into(), Content::U64(self.seq)),
            ("t_s".into(), Content::F64(self.t_s)),
            (
                "class".into(),
                Content::Str(
                    if self.event.is_deterministic() {
                        "det"
                    } else {
                        "local"
                    }
                    .into(),
                ),
            ),
            ("kind".into(), Content::Str(self.event.kind().into())),
        ];
        match &self.event {
            FlightEvent::SpanEnter { path } | FlightEvent::SpanExit { path } => {
                pairs.push(("path".into(), Content::Str(path.clone())));
            }
            FlightEvent::CkptUnit { unit, written } => {
                pairs.push(("unit".into(), Content::Str(unit.clone())));
                pairs.push(("written".into(), Content::Bool(*written)));
            }
            FlightEvent::Send { peer, bytes } | FlightEvent::Recv { peer, bytes } => {
                pairs.push(("peer".into(), Content::U64(*peer as u64)));
                pairs.push(("bytes".into(), Content::U64(*bytes)));
            }
            FlightEvent::MsgDropped { peer } => {
                pairs.push(("peer".into(), Content::U64(*peer as u64)));
            }
            FlightEvent::FaultInjected { action, event } => {
                pairs.push(("action".into(), Content::Str(action.clone())));
                pairs.push(("event".into(), Content::U64(*event)));
            }
            FlightEvent::CommFailure { detail } => {
                pairs.push(("detail".into(), Content::Str(detail.clone())));
            }
            FlightEvent::RngJump { draw } => {
                pairs.push(("draw".into(), Content::U64(*draw)));
            }
        }
        Content::Map(pairs)
    }
}

impl Deserialize for FlightRecord {
    fn deserialize_value(value: &Content) -> Result<Self, DeError> {
        let kind: String = serde::map_field(value, "kind")?;
        let event = match kind.as_str() {
            "span-enter" => FlightEvent::SpanEnter {
                path: serde::map_field(value, "path")?,
            },
            "span-exit" => FlightEvent::SpanExit {
                path: serde::map_field(value, "path")?,
            },
            "ckpt-unit" => FlightEvent::CkptUnit {
                unit: serde::map_field(value, "unit")?,
                written: serde::map_field(value, "written")?,
            },
            "send" => FlightEvent::Send {
                peer: serde::map_field(value, "peer")?,
                bytes: serde::map_field(value, "bytes")?,
            },
            "recv" => FlightEvent::Recv {
                peer: serde::map_field(value, "peer")?,
                bytes: serde::map_field(value, "bytes")?,
            },
            "msg-dropped" => FlightEvent::MsgDropped {
                peer: serde::map_field(value, "peer")?,
            },
            "fault-injected" => FlightEvent::FaultInjected {
                action: serde::map_field(value, "action")?,
                event: serde::map_field(value, "event")?,
            },
            "comm-failure" => FlightEvent::CommFailure {
                detail: serde::map_field(value, "detail")?,
            },
            "rng-jump" => FlightEvent::RngJump {
                draw: serde::map_field(value, "draw")?,
            },
            other => return Err(DeError::msg(format!("unknown flight event kind {other:?}"))),
        };
        Ok(FlightRecord {
            seq: serde::map_field(value, "seq")?,
            t_s: serde::map_field(value, "t_s")?,
            event,
        })
    }
}

/// A bounded ring with a monotone sequence number: eviction drops the
/// oldest record but the count of everything ever recorded survives.
#[derive(Debug)]
struct Ring {
    cap: usize,
    next_seq: u64,
    buf: VecDeque<FlightRecord>,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            next_seq: 0,
            buf: VecDeque::new(),
        }
    }

    fn push(&mut self, t_s: f64, event: FlightEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(FlightRecord {
            seq: self.next_seq,
            t_s,
            event,
        });
        self.next_seq += 1;
    }

    fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }
}

#[derive(Debug)]
struct Inner {
    nranks: usize,
    rank: usize,
    epoch: Instant,
    enabled: bool,
    det: Ring,
    local: Ring,
}

/// Clonable handle to one rank's flight recorder. Clones share the
/// same ring buffers, which is the point: the launch harness keeps a
/// clone outside the rank's unwind path and can dump the black box
/// after the rank panicked or was killed.
#[derive(Debug, Clone)]
pub struct FlightRec {
    inner: Arc<Mutex<Inner>>,
}

impl FlightRec {
    /// A recorder for `rank` of `nranks` with default ring capacities.
    pub fn new(nranks: usize, rank: usize) -> Self {
        Self::with_capacity(nranks, rank, DEFAULT_DET_CAPACITY, DEFAULT_LOCAL_CAPACITY)
    }

    /// A recorder with explicit per-class ring capacities. Capacities
    /// must match across engines for the deterministic record to
    /// compare bit-identically after eviction.
    pub fn with_capacity(nranks: usize, rank: usize, det_cap: usize, local_cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                nranks: nranks.max(1),
                rank,
                epoch: Instant::now(),
                enabled: true,
                det: Ring::new(det_cap),
                local: Ring::new(local_cap),
            })),
        }
    }

    /// The owning rank.
    pub fn rank(&self) -> usize {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).rank
    }

    /// Enable or disable recording (the recorder is always-on by
    /// default; the bench harness disables it to measure overhead).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).enabled = enabled;
    }

    /// Record one event into its class ring.
    pub fn record(&self, event: FlightEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.enabled {
            return;
        }
        let t_s = inner.epoch.elapsed().as_secs_f64();
        if event.is_deterministic() {
            inner.det.push(t_s, event);
        } else {
            inner.local.push(t_s, event);
        }
    }

    /// The retained deterministic-class records, oldest first.
    pub fn det_events(&self) -> Vec<FlightRecord> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).det.buf.iter().cloned().collect()
    }

    /// The retained local-class records, oldest first.
    pub fn local_events(&self) -> Vec<FlightRecord> {
        self.inner
            .lock()
            .unwrap()
            .local
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Deterministic-class events ever recorded (including evicted).
    pub fn det_recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).det.next_seq
    }

    /// Serialize the black box as JSONL: one header object, then every
    /// retained record (deterministic ring first, then local), one
    /// JSON object per line.
    pub fn dump_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let header = Content::Map(vec![
            (
                "schema_version".into(),
                Content::U64(FLIGHTREC_SCHEMA_VERSION as u64),
            ),
            ("kind".into(), Content::Str("header".into())),
            ("rank".into(), Content::U64(inner.rank as u64)),
            ("nranks".into(), Content::U64(inner.nranks as u64)),
            ("det_dropped".into(), Content::U64(inner.det.dropped())),
            ("local_dropped".into(), Content::U64(inner.local.dropped())),
        ]);
        let mut out = serde_json::to_string(&header).expect("header serializes");
        out.push('\n');
        for record in inner.det.buf.iter().chain(inner.local.buf.iter()) {
            out.push_str(&serde_json::to_string(record).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Write the black box to `dir` as `flightrec-rank<k>.jsonl` and
    /// return the path.
    pub fn dump_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(dump_filename(self.rank()));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.dump_jsonl().as_bytes())?;
        Ok(path)
    }
}

/// The conventional dump file name for one rank's black box.
pub fn dump_filename(rank: usize) -> String {
    format!("flightrec-rank{rank}.jsonl")
}

/// Parse a dump produced by [`FlightRec::dump_jsonl`] back into its
/// records (the header line is validated and skipped).
pub fn parse_dump(jsonl: &str) -> Result<Vec<FlightRecord>, String> {
    let mut lines = jsonl.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty flight-recorder dump")?;
    let header: Content = serde_json::from_str(header).map_err(|e| e.to_string())?;
    let version: u64 = serde::map_field(&header, "schema_version").map_err(|e| e.to_string())?;
    if version != FLIGHTREC_SCHEMA_VERSION as u64 {
        return Err(format!(
            "flight-recorder schema version {version} (expected {FLIGHTREC_SCHEMA_VERSION})"
        ));
    }
    lines
        .map(|line| serde_json::from_str::<FlightRecord>(line).map_err(|e| e.to_string()))
        .collect()
}

/// Compare two deterministic-class records on their sequence-number
/// overlap window, ignoring timestamps. Ring eviction and early death
/// both truncate a record, so the comparable region is
/// `max(first seqs) ..= min(last seqs)`; inside it the events must be
/// identical. Returns the first divergence as an error message.
pub fn det_overlap_matches(a: &[FlightRecord], b: &[FlightRecord]) -> Result<usize, String> {
    let (Some(a0), Some(b0)) = (a.first(), b.first()) else {
        return Ok(0); // one side recorded nothing: vacuously consistent
    };
    let lo = a0.seq.max(b0.seq);
    let hi = a.last().unwrap().seq.min(b.last().unwrap().seq);
    if lo > hi {
        return Ok(0); // disjoint windows
    }
    let slice = |records: &[FlightRecord], name: &str| -> Result<Vec<FlightRecord>, String> {
        let start = records
            .iter()
            .position(|r| r.seq == lo)
            .ok_or_else(|| format!("{name}: seq {lo} missing (non-contiguous ring?)"))?;
        Ok(records[start..start + (hi - lo + 1) as usize].to_vec())
    };
    let wa = slice(a, "left")?;
    let wb = slice(b, "right")?;
    for (ra, rb) in wa.iter().zip(&wb) {
        if ra.seq != rb.seq || ra.event != rb.event {
            return Err(format!(
                "deterministic event divergence at seq {}: {:?} vs {:?}",
                ra.seq, ra.event, rb.event
            ));
        }
    }
    Ok(wa.len())
}

// ---------------------------------------------------------------------
// Thread-local recorder: lets leaf code (PRNG jumps inside partitioned
// loops) reach the active rank's flight recorder without plumbing a
// handle through every call signature. Engines install it on each
// compute thread; unset means events are silently discarded.
// ---------------------------------------------------------------------

thread_local! {
    static THREAD_REC: std::cell::RefCell<Option<FlightRec>> =
        const { std::cell::RefCell::new(None) };
}

/// Install (or clear) this thread's flight recorder. Engines call this
/// on every compute thread before running partitioned work.
pub fn set_thread_recorder(rec: Option<FlightRec>) {
    THREAD_REC.with(|slot| *slot.borrow_mut() = rec);
}

/// Record a local-class event into this thread's recorder, if one is
/// installed. Cheap no-op otherwise.
pub fn note_local(event: FlightEvent) {
    THREAD_REC.with(|slot| {
        if let Some(rec) = slot.borrow().as_ref() {
            rec.record(event);
        }
    });
}

/// Record an O(1) RNG stream jump on this thread's recorder.
pub fn note_rng_jump(draw: u64) {
    note_local(FlightEvent::RngJump { draw });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_route_to_their_rings() {
        let rec = FlightRec::new(2, 1);
        rec.record(FlightEvent::SpanEnter { path: "run".into() });
        rec.record(FlightEvent::Send { peer: 0, bytes: 16 });
        rec.record(FlightEvent::SpanExit { path: "run".into() });
        let det = rec.det_events();
        let local = rec.local_events();
        assert_eq!(det.len(), 2);
        assert_eq!(local.len(), 1);
        assert_eq!(det[0].seq, 0);
        assert_eq!(det[1].seq, 1);
        assert_eq!(local[0].seq, 0);
        assert!(det.iter().all(|r| r.event.is_deterministic()));
        assert!(!local[0].event.is_deterministic());
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let rec = FlightRec::with_capacity(1, 0, 3, 3);
        for i in 0..5u64 {
            rec.record(FlightEvent::SpanEnter {
                path: format!("s{i}"),
            });
        }
        let det = rec.det_events();
        assert_eq!(det.len(), 3);
        assert_eq!(det[0].seq, 2);
        assert_eq!(det[2].seq, 4);
        assert_eq!(rec.det_recorded(), 5);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRec::new(1, 0);
        rec.set_enabled(false);
        rec.record(FlightEvent::SpanEnter { path: "x".into() });
        assert!(rec.det_events().is_empty());
        rec.set_enabled(true);
        rec.record(FlightEvent::SpanEnter { path: "y".into() });
        assert_eq!(rec.det_events().len(), 1);
    }

    #[test]
    fn dump_roundtrips_through_jsonl() {
        let rec = FlightRec::new(3, 2);
        rec.record(FlightEvent::SpanEnter {
            path: "run/ganesh".into(),
        });
        rec.record(FlightEvent::CkptUnit {
            unit: "ganesh_run_0".into(),
            written: true,
        });
        rec.record(FlightEvent::Recv { peer: 0, bytes: 64 });
        rec.record(FlightEvent::FaultInjected {
            action: "kill".into(),
            event: 17,
        });
        rec.record(FlightEvent::CommFailure {
            detail: "peer 1 disconnected".into(),
        });
        rec.record(FlightEvent::RngJump { draw: 1234 });
        rec.record(FlightEvent::MsgDropped { peer: 1 });
        let dump = rec.dump_jsonl();
        let parsed = parse_dump(&dump).unwrap();
        let expected: Vec<FlightRecord> = rec
            .det_events()
            .into_iter()
            .chain(rec.local_events())
            .collect();
        assert_eq!(parsed, expected);
        // Header carries rank coordinates.
        let header: Content = serde_json::from_str(dump.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("rank").and_then(Content::as_u64), Some(2));
        assert_eq!(header.get("nranks").and_then(Content::as_u64), Some(3));
    }

    #[test]
    fn overlap_comparison_tolerates_truncation() {
        let mk = |n: u64| {
            let rec = FlightRec::new(1, 0);
            for i in 0..n {
                rec.record(FlightEvent::SpanEnter {
                    path: format!("s{i}"),
                });
            }
            rec.det_events()
        };
        // The short record is a prefix of the long one.
        assert!(det_overlap_matches(&mk(3), &mk(7)).is_ok());
        // Divergence inside the window is reported.
        let mut other = mk(3);
        other[1].event = FlightEvent::SpanEnter { path: "zzz".into() };
        let err = det_overlap_matches(&mk(3), &other).unwrap_err();
        assert!(err.contains("seq 1"), "{err}");
        // Timestamps are ignored.
        let mut shifted = mk(3);
        for r in &mut shifted {
            r.t_s += 100.0;
        }
        assert!(det_overlap_matches(&mk(3), &shifted).is_ok());
    }

    #[test]
    fn thread_local_hook_reaches_installed_recorder() {
        let rec = FlightRec::new(1, 0);
        set_thread_recorder(Some(rec.clone()));
        note_rng_jump(99);
        set_thread_recorder(None);
        note_rng_jump(100); // discarded: no recorder installed
        let local = rec.local_events();
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].event, FlightEvent::RngJump { draw: 99 });
    }
}
