//! # mn-obs — structured observability for the `monet` pipeline
//!
//! The paper's entire evaluation (§5, Fig. 5–6, Table 2) is built on
//! per-phase runtime breakdowns, communication shares, and the
//! load-imbalance metric of the split-posterior loop. This crate is
//! the measurement substrate behind those figures — and behind any
//! future scaling work, which needs attribution *below* the phase
//! level:
//!
//! * **Hierarchical spans** ([`Recorder`]): a `run → phase →
//!   ganesh-run/sweep` and `modules → module → tree/assign-splits`
//!   tree. Every engine charges per-rank busy seconds and
//!   communication seconds into the innermost open span and all of its
//!   ancestors, so the paper's §5.3.1 imbalance metric
//!   `(max − avg)/avg` is available at every level of the hierarchy,
//!   not just per phase.
//! * **Deterministic event counters** ([`counters`]): logical event
//!   counts (moves proposed/accepted, splits scored, kernel vs naive
//!   dispatches, collective calls and payload words). Counters count
//!   *algorithmic* events, never timing or partitioning artifacts, so
//!   they are bit-identical across every engine and rank count — a
//!   cheap cross-engine equivalence check that the integration tests
//!   assert on.
//! * **Timing histograms** ([`Histogram`]): log₂-bucketed span
//!   durations with p50/p95/p99 estimators, cheap enough to stay
//!   always-on.
//! * **Flight recorder** ([`flightrec`]): an always-on, bounded-memory
//!   ring of compact per-rank events (span enter/exit, send/recv,
//!   checkpoint units, fault injections, RNG jumps) dumped as
//!   `flightrec-rank<k>.jsonl` when a run fails — the black box for
//!   post-mortem debugging of rank deaths.
//! * **Communication matrix** ([`commatrix`]): per-phase src→dst
//!   message and byte counts, recorded at the sender inside the msg
//!   fabric and synthesized identically by the sim engine.
//! * **Live telemetry** ([`snapshot`]): versioned JSONL snapshot
//!   deltas with heartbeats ([`TelemetrySink`]), the streaming surface
//!   a future `monet-serve` will put on the wire.
//! * **Artifact export** ([`trace`]): a chrome://tracing JSON timeline
//!   with one track per rank, and a serializable [`ObsSnapshot`] that
//!   the `monet` CLI embeds into `RUN_METRICS.json`.
//! * **Output sink** ([`sink`]): the single quiet-able channel for
//!   human-readable progress output, replacing scattered `eprintln!`s.
//!
//! The crate is dependency-light by design: it builds against the
//! workspace's vendored `serde`/`serde_json` stubs and nothing else,
//! so it works in the offline build container.
//!
//! ## Counter determinism contract
//!
//! A counter may only be incremented from *replicated* control flow —
//! code that every rank executes identically (the serial sections of
//! the SPMD program, or the engine entry points that receive identical
//! arguments on every engine). Incrementing from inside a `dist_map`
//! closure is forbidden: the closure runs on one rank's block only, so
//! the count would depend on the partition. The engines in `mn-comm`
//! count at the trait-call boundary (items, maps, collective words);
//! the algorithm crates count domain events before/after the parallel
//! sections. Under this contract `serial == threads:p == sim:p ==
//! msg:p` for every counter and every `p`.

#![warn(missing_docs)]

pub mod commatrix;
pub mod counters;
pub mod flightrec;
pub mod hist;
pub mod recorder;
pub mod sink;
pub mod snapshot;
pub mod trace;

pub use commatrix::{CommMatrix, CommMatrixHandle};
pub use flightrec::{FlightEvent, FlightRec};
pub use hist::Histogram;
pub use recorder::{merge_ranks, MergeError, ObsSnapshot, Recorder, SpanAgg, SpanRecord};
pub use sink::{is_quiet, set_quiet};
pub use snapshot::{
    SnapshotStash, TelemetryHandle, TelemetryHub, TelemetrySink, TelemetryStream,
    TELEMETRY_SCHEMA_VERSION,
};
pub use trace::chrome_trace_json;
