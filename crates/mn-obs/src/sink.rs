//! The single quiet-able channel for human-readable progress output.
//!
//! Engines and stages report progress through [`note`] instead of
//! calling `eprintln!` directly; the `monet` CLI's `--quiet` flag flips
//! one process-global switch and every such line disappears. The
//! switch is an `AtomicBool`, so it is safe to set from the CLI before
//! worker threads spawn and to read from any rank.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Silence (or re-enable) all [`note`] output process-wide.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether [`note`] output is currently suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emit one human-readable progress line to stderr, unless quiet.
///
/// Progress goes to stderr so machine-readable artifacts on stdout
/// stay clean; structured export never flows through this sink.
pub fn note(msg: &str) {
    if !is_quiet() {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_toggles() {
        // Serialized within this test: set, read, restore.
        let before = is_quiet();
        set_quiet(true);
        assert!(is_quiet());
        set_quiet(false);
        assert!(!is_quiet());
        set_quiet(before);
    }
}
