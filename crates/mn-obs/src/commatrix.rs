//! Per-phase src→dst communication matrix.
//!
//! The span tree answers *how long* ranks waited on communication; the
//! matrix answers *who talked to whom, how much, per phase* — the
//! traffic picture dynamic load balancing and the future TCP backend
//! need. A [`CommMatrixHandle`] accumulates `(src, dst) → (messages,
//! bytes)` into one [`PhaseTraffic`] per `begin_phase` call (phase
//! instances are appended in call order, exactly like span records, so
//! duplicate phase names stay distinct and rank merging aligns by
//! index).
//!
//! Recording conventions:
//!
//! * The msg fabric records each message once, **at the sender**, with
//!   the payload's shallow wire size. Merging the per-rank matrices
//!   therefore sums disjoint rows into the full picture.
//! * The sim engine *synthesizes* the exact same traffic its msg
//!   counterpart would generate — the gather+broadcast of `dist_map`
//!   and the reduce+broadcast barrier behind `collective` — using the
//!   edge schedules below, which mirror `mn-comm`'s binomial-tree
//!   collectives hop for hop. A merged msg matrix and a sim matrix for
//!   the same run are equal, which the observability suite asserts.
//! * Serial and threads engines move no messages; their matrices are
//!   structurally present (one entry per phase) but all-zero.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// The phase name traffic is charged to before the first
/// `begin_phase` call (mirrors the recorder's root span).
pub const ROOT_PHASE: &str = "run";

/// Traffic accumulated during one phase instance: `p × p` counts in
/// row-major `src * p + dst` order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTraffic {
    /// Phase name (span name of the phase; not unique — phases are
    /// instances in call order).
    pub phase: String,
    /// Message counts, row-major `src * nranks + dst`.
    pub msgs: Vec<u64>,
    /// Shallow wire bytes, row-major `src * nranks + dst`.
    pub bytes: Vec<u64>,
}

impl PhaseTraffic {
    fn new(phase: &str, p: usize) -> Self {
        Self {
            phase: phase.to_string(),
            msgs: vec![0; p * p],
            bytes: vec![0; p * p],
        }
    }
}

/// A run's full communication matrix: one [`PhaseTraffic`] per phase
/// instance, in `begin_phase` call order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommMatrix {
    /// Rank count (matrix dimension).
    pub nranks: usize,
    /// Per-phase traffic, in phase call order (index 0 is the
    /// pre-phase [`ROOT_PHASE`] bucket).
    pub phases: Vec<PhaseTraffic>,
}

impl CommMatrix {
    /// An empty matrix for `nranks` with only the root-phase bucket.
    pub fn new(nranks: usize) -> Self {
        let nranks = nranks.max(1);
        Self {
            nranks,
            phases: vec![PhaseTraffic::new(ROOT_PHASE, nranks)],
        }
    }

    /// Total messages across all phases and rank pairs.
    pub fn total_msgs(&self) -> u64 {
        self.phases.iter().flat_map(|t| &t.msgs).sum()
    }

    /// Total wire bytes across all phases and rank pairs.
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().flat_map(|t| &t.bytes).sum()
    }

    /// The first phase instance with the given name, if any.
    pub fn phase(&self, name: &str) -> Option<&PhaseTraffic> {
        self.phases.iter().find(|t| t.phase == name)
    }

    /// Elementwise sum of per-rank matrices (each message was recorded
    /// once, at its sender, so the sum is the full traffic picture).
    /// Phase lists must align by index and name — they do whenever the
    /// ranks ran the same replicated control flow.
    pub fn merged(mats: &[CommMatrix]) -> Result<CommMatrix, String> {
        let mut iter = mats.iter();
        let Some(first) = iter.next() else {
            return Ok(CommMatrix::new(1));
        };
        let mut out = first.clone();
        for (r, m) in iter.enumerate() {
            if m.nranks != out.nranks {
                return Err(format!(
                    "comm matrix rank-count mismatch: {} vs {} (matrix {})",
                    out.nranks,
                    m.nranks,
                    r + 1
                ));
            }
            if m.phases.len() != out.phases.len() {
                return Err(format!(
                    "comm matrix phase-count mismatch: {} vs {} (matrix {})",
                    out.phases.len(),
                    m.phases.len(),
                    r + 1
                ));
            }
            for (i, (a, b)) in out.phases.iter_mut().zip(&m.phases).enumerate() {
                if a.phase != b.phase {
                    return Err(format!(
                        "comm matrix phase {i} name mismatch: {:?} vs {:?} (matrix {})",
                        a.phase,
                        b.phase,
                        r + 1
                    ));
                }
                for (x, y) in a.msgs.iter_mut().zip(&b.msgs) {
                    *x += y;
                }
                for (x, y) in a.bytes.iter_mut().zip(&b.bytes) {
                    *x += y;
                }
            }
        }
        Ok(out)
    }
}

#[derive(Debug)]
struct State {
    current: usize,
    mat: CommMatrix,
}

/// Clonable handle to a run's (or one rank's) communication matrix.
/// Fabric endpoints and the sim engine hold clones and record into the
/// same accumulator the owning `Recorder` snapshots.
#[derive(Debug, Clone)]
pub struct CommMatrixHandle {
    inner: Arc<Mutex<State>>,
}

impl CommMatrixHandle {
    /// A fresh matrix for `nranks` positioned in the root phase.
    pub fn new(nranks: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(State {
                current: 0,
                mat: CommMatrix::new(nranks),
            })),
        }
    }

    /// Open a new phase instance (append-always, mirroring the span
    /// recorder: a second phase with the same name is a new instance).
    pub fn begin_phase(&self, name: &str) {
        let mut state = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let p = state.mat.nranks;
        state.mat.phases.push(PhaseTraffic::new(name, p));
        state.current = state.mat.phases.len() - 1;
    }

    /// Record one `src → dst` message of `bytes` shallow wire bytes
    /// into the current phase.
    pub fn record(&self, src: usize, dst: usize, bytes: u64) {
        let mut state = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let p = state.mat.nranks;
        debug_assert!(src < p && dst < p, "rank out of range: {src}->{dst} of {p}");
        let current = state.current;
        let cell = src * p + dst;
        let traffic = &mut state.mat.phases[current];
        traffic.msgs[cell] += 1;
        traffic.bytes[cell] += bytes;
    }

    /// Synthesize the traffic of one fabric `allreduce` (the schedule
    /// behind `barrier`/`collective`): a binomial-tree reduce to rank
    /// 0 followed by a binomial-tree broadcast, `bytes` per hop.
    pub fn record_allreduce(&self, bytes: u64) {
        let p = self.nranks();
        for (src, dst) in allreduce_edges(p) {
            self.record(src, dst, bytes);
        }
    }

    /// Synthesize the traffic of one fabric `allgatherv` with
    /// per-rank element counts `counts` and `esize` bytes per element:
    /// ranks `1..p` send their slice to rank 0, which broadcasts the
    /// concatenation. A single rank moves nothing (the fabric
    /// short-circuits).
    pub fn record_allgatherv(&self, counts: &[usize], esize: u64) {
        let p = self.nranks();
        debug_assert_eq!(counts.len(), p);
        if p == 1 {
            return;
        }
        for (src, &count) in counts.iter().enumerate().skip(1) {
            self.record(src, 0, count as u64 * esize);
        }
        let total: usize = counts.iter().sum();
        for (src, dst) in bcast_edges(p, 0) {
            self.record(src, dst, total as u64 * esize);
        }
    }

    /// The matrix dimension.
    pub fn nranks(&self) -> usize {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).mat.nranks
    }

    /// A snapshot of the accumulated matrix.
    pub fn snapshot(&self) -> CommMatrix {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).mat.clone()
    }
}

/// The `(src, dst)` hops of a binomial-tree broadcast from `root` over
/// `p` ranks — hop for hop the schedule of the msg fabric's `bcast`
/// (MPICH-style: virtual rank `v` receives in the round of its lowest
/// set bit, then forwards to `v + m` for each lower mask `m`).
pub fn bcast_edges(p: usize, root: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for v in 0..p {
        let mut mask = 1usize;
        while mask < p {
            if v & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if v + mask < p {
                edges.push(((v + root) % p, (v + mask + root) % p));
            }
            mask >>= 1;
        }
    }
    edges
}

/// The `(src, dst)` hops of a mirror binomial-tree reduce to `root`
/// over `p` ranks: every non-root virtual rank sends its partial to
/// the partner below its lowest set bit, once.
pub fn reduce_edges(p: usize, root: usize) -> Vec<(usize, usize)> {
    (1..p)
        .map(|v| {
            let low = v & v.wrapping_neg();
            ((v + root) % p, (v - low + root) % p)
        })
        .collect()
}

/// The hops of the fabric's `allreduce`: reduce to rank 0, then
/// broadcast from rank 0.
pub fn allreduce_edges(p: usize) -> Vec<(usize, usize)> {
    let mut edges = reduce_edges(p, 0);
    edges.extend(bcast_edges(p, 0));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_edge_counts_are_p_minus_one() {
        for p in 1..=9 {
            for root in 0..p {
                assert_eq!(bcast_edges(p, root).len(), p - 1, "bcast p={p} root={root}");
                assert_eq!(reduce_edges(p, root).len(), p - 1, "reduce p={p} root={root}");
            }
            assert_eq!(allreduce_edges(p).len(), 2 * (p - 1), "allreduce p={p}");
        }
    }

    #[test]
    fn bcast_edges_span_all_ranks() {
        // Every non-root rank is the destination of exactly one hop,
        // and every hop's source already had the data (reachable from
        // the root through earlier-listed hops or is the root).
        for p in [2usize, 3, 5, 8, 9] {
            for root in [0, p - 1] {
                let edges = bcast_edges(p, root);
                let mut have = vec![false; p];
                have[root] = true;
                for (src, dst) in edges {
                    assert!(have[src], "p={p} root={root}: {src} sends before receiving");
                    assert!(!have[dst], "p={p} root={root}: {dst} receives twice");
                    have[dst] = true;
                }
                assert!(have.iter().all(|&h| h), "p={p} root={root}: not all reached");
            }
        }
    }

    #[test]
    fn handle_accumulates_per_phase() {
        let handle = CommMatrixHandle::new(3);
        handle.record(1, 0, 100);
        handle.begin_phase("ganesh");
        handle.record(1, 0, 8);
        handle.record(1, 0, 8);
        handle.record(2, 0, 16);
        handle.begin_phase("ganesh"); // same name: a new instance
        handle.record(0, 2, 4);
        let mat = handle.snapshot();
        assert_eq!(mat.phases.len(), 3);
        assert_eq!(mat.phases[0].phase, ROOT_PHASE);
        assert_eq!(mat.phases[0].msgs[3], 1); // src 1 dst 0
        assert_eq!(mat.phases[1].msgs[3], 2); // src 1 dst 0
        assert_eq!(mat.phases[1].bytes[3], 16); // src 1 dst 0
        assert_eq!(mat.phases[1].bytes[2 * 3], 16);
        assert_eq!(mat.phases[2].msgs[2], 1); // src 0 dst 2
        assert_eq!(mat.total_msgs(), 5);
        assert_eq!(mat.total_bytes(), 136);
    }

    #[test]
    fn allgatherv_synthesis_matches_gather_plus_bcast() {
        let handle = CommMatrixHandle::new(4);
        handle.record_allgatherv(&[3, 0, 2, 5], 8);
        let mat = handle.snapshot();
        let t = &mat.phases[0];
        // Gather sends: ranks 1..4 each send once to rank 0.
        assert_eq!(t.msgs[4], 1); // 1 -> 0
        assert_eq!(t.bytes[4], 0);
        assert_eq!(t.bytes[2 * 4], 16);
        assert_eq!(t.bytes[3 * 4], 40);
        // Broadcast: 3 hops of the full 10-element payload.
        assert_eq!(mat.total_msgs(), 3 + 3);
        assert_eq!(mat.total_bytes(), 16 + 40 + 3 * 80); // rank 1's gather leg is empty
        // Single rank: no traffic at all.
        let solo = CommMatrixHandle::new(1);
        solo.record_allgatherv(&[7], 8);
        assert_eq!(solo.snapshot().total_msgs(), 0);
    }

    #[test]
    fn merged_sums_disjoint_sender_rows() {
        let p = 3;
        let mk = |rank: usize| {
            let handle = CommMatrixHandle::new(p);
            handle.begin_phase("work");
            // Each rank records only its own outgoing row.
            for (src, dst) in allreduce_edges(p) {
                if src == rank {
                    handle.record(src, dst, 8);
                }
            }
            handle.snapshot()
        };
        let per_rank: Vec<CommMatrix> = (0..p).map(mk).collect();
        let merged = CommMatrix::merged(&per_rank).unwrap();
        let whole = CommMatrixHandle::new(p);
        whole.begin_phase("work");
        whole.record_allreduce(8);
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn merged_rejects_phase_misalignment() {
        let a = CommMatrixHandle::new(2);
        a.begin_phase("ganesh");
        let b = CommMatrixHandle::new(2);
        b.begin_phase("modules");
        let err = CommMatrix::merged(&[a.snapshot(), b.snapshot()]).unwrap_err();
        assert!(err.contains("name mismatch"), "{err}");
    }

    #[test]
    fn matrix_roundtrips_through_json() {
        let handle = CommMatrixHandle::new(2);
        handle.begin_phase("ganesh");
        handle.record(0, 1, 42);
        let mat = handle.snapshot();
        let text = serde_json::to_string(&mat).unwrap();
        let back: CommMatrix = serde_json::from_str(&text).unwrap();
        assert_eq!(back, mat);
    }
}
