//! chrome://tracing timeline export.
//!
//! Emits the Trace Event Format's JSON-object form
//! (`{"traceEvents": [...]}`): one metadata event naming the process,
//! one `thread_name` metadata event per rank, and one complete (`"X"`)
//! event per span × rank, so `chrome://tracing` / Perfetto renders one
//! track per rank with the full span hierarchy on each. Timestamps and
//! durations are microseconds, as the format requires; each event's
//! `args` carries that rank's busy seconds, the span's comm seconds,
//! and the slash-joined path.

use serde_json::Value;

use crate::recorder::ObsSnapshot;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Render a snapshot as a chrome://tracing JSON string.
pub fn chrome_trace_json(snapshot: &ObsSnapshot) -> String {
    let mut events = Vec::new();
    events.push(obj(vec![
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(0)),
        ("name", Value::Str("process_name".into())),
        (
            "args",
            obj(vec![("name", Value::Str("monet".into()))]),
        ),
    ]));
    for rank in 0..snapshot.nranks {
        events.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(rank as u64)),
            ("name", Value::Str("thread_name".into())),
            (
                "args",
                obj(vec![("name", Value::Str(format!("rank {rank}")))]),
            ),
        ]));
    }
    for span in &snapshot.spans {
        for rank in 0..snapshot.nranks {
            events.push(obj(vec![
                ("ph", Value::Str("X".into())),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(rank as u64)),
                ("name", Value::Str(span.name.clone())),
                ("cat", Value::Str(format!("depth{}", span.depth))),
                ("ts", Value::F64(span.start_s * 1e6)),
                ("dur", Value::F64(span.elapsed_s() * 1e6)),
                (
                    "args",
                    obj(vec![
                        ("path", Value::Str(span.path.clone())),
                        (
                            "busy_s",
                            Value::F64(span.busy_s.get(rank).copied().unwrap_or(0.0)),
                        ),
                        ("comm_s", Value::F64(span.comm_s)),
                    ]),
                ),
            ]));
        }
    }
    let trace = obj(vec![("traceEvents", Value::Seq(events))]);
    serde_json::to_string(&trace).expect("trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> ObsSnapshot {
        let mut rec = Recorder::new(3);
        rec.begin_phase("ganesh", 0.25);
        rec.span_enter("sweep:reassign-vars", 0.25);
        rec.charge_busy(&[1.0, 2.0, 3.0]);
        rec.span_exit(1.25);
        rec.finish(2.0);
        rec.snapshot(2.0)
    }

    #[test]
    fn trace_parses_and_has_one_track_per_rank() {
        let snap = sample_snapshot();
        let json = chrome_trace_json(&snap);
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // Thread-name metadata: exactly one per rank.
        let thread_names: Vec<&Value> = events
            .iter()
            .filter(|e| e["name"].as_str() == Some("thread_name"))
            .collect();
        assert_eq!(thread_names.len(), 3);
        for (rank, e) in thread_names.iter().enumerate() {
            assert_eq!(e["tid"].as_u64(), Some(rank as u64));
            assert_eq!(e["args"]["name"].as_str(), Some(format!("rank {rank}").as_str()));
        }
        // Complete events cover every span on every rank.
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), snap.spans.len() * snap.nranks);
        let tids: std::collections::BTreeSet<u64> =
            xs.iter().filter_map(|e| e["tid"].as_u64()).collect();
        assert_eq!(tids, (0..3).collect());
    }

    #[test]
    fn events_carry_microsecond_times_and_args() {
        let snap = sample_snapshot();
        let json = chrome_trace_json(&snap);
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let sweep = events
            .iter()
            .find(|e| {
                e["ph"].as_str() == Some("X")
                    && e["name"].as_str() == Some("sweep:reassign-vars")
                    && e["tid"].as_u64() == Some(1)
            })
            .unwrap();
        assert!((sweep["ts"].as_f64().unwrap() - 0.25e6).abs() < 1e-6);
        assert!((sweep["dur"].as_f64().unwrap() - 1.0e6).abs() < 1e-6);
        assert_eq!(
            sweep["args"]["path"].as_str(),
            Some("run/ganesh/sweep:reassign-vars")
        );
        assert!((sweep["args"]["busy_s"].as_f64().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(sweep["cat"].as_str(), Some("depth2"));
    }
}
