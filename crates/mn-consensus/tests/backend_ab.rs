//! Sparse-vs-dense A/B equivalence for task 2 (ISSUE 5 tentpole).
//!
//! The sharded sparse path must produce **bit-identical** consensus
//! clusters and eigenvalue streams to the dense sequential baseline on
//! every engine and rank count — the same determinism contract the
//! split-scoring and Gibbs kernels established in earlier PRs. The
//! argument (DESIGN.md §11): the dense matvec accumulates non-negative
//! terms in increasing column order, and the entries the sparse matvec
//! skips contribute exact `+0.0` — an identity on a non-negative f64
//! accumulator — while the norm is reduced in active-index order on
//! the gathered vector, never as per-rank partials.

use mn_comm::{spmd_run, ParEngine, SerialEngine, SimEngine, ThreadEngine};
use mn_consensus::{
    consensus_outcome, ConsensusBackend, ConsensusParams, SparseSymMatrix, SpectralOutcome,
    SymMatrix,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic hand-built ensemble: 9 samples agreeing on three
/// planted blocks over 19 variables (one variable, 18, never
/// clustered), plus one dissenting sample that mixes the blocks. No
/// RNG — the fixture is the same on every run and every rank.
fn ensemble() -> Vec<Vec<Vec<usize>>> {
    let blocks = vec![
        (0..6).collect::<Vec<_>>(),
        (6..12).collect::<Vec<_>>(),
        (12..18).collect::<Vec<_>>(),
    ];
    let mut e = vec![blocks; 9];
    e.push(vec![
        vec![0, 6, 12],
        vec![1, 7, 13],
        vec![2, 8, 14],
        vec![3, 9, 15, 18],
        vec![4, 10, 16],
        vec![5, 11, 17],
    ]);
    e
}

const N_VARS: usize = 19;

fn params(backend: ConsensusBackend) -> ConsensusParams {
    ConsensusParams {
        threshold: 0.3,
        backend,
        ..ConsensusParams::default()
    }
}

/// Task 2 on one engine: the outcome plus the final counters.
fn outcome_on<E: ParEngine>(
    engine: &mut E,
    backend: ConsensusBackend,
) -> (SpectralOutcome, BTreeMap<String, u64>) {
    let out = consensus_outcome(engine, N_VARS, &ensemble(), &params(backend));
    let now = engine.now_s();
    (out, engine.obs().snapshot(now).counters)
}

fn eigen_bits(out: &SpectralOutcome) -> Vec<u64> {
    out.eigenvalues.iter().map(|v| v.to_bits()).collect()
}

/// The backend-independent counter subset (`consensus.*`). Engine and
/// comm counters legitimately differ between backends — the sparse
/// path dispatches real `dist_map`s where the dense path charges
/// `replicated` — but the consensus counters are part of the shared
/// contract.
fn consensus_counters(counters: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters
        .iter()
        .filter(|(name, _)| name.starts_with("consensus."))
        .map(|(name, &v)| (name.clone(), v))
        .collect()
}

#[test]
fn backends_and_engines_agree_bit_for_bit() {
    // Reference: the dense sequential baseline on one rank.
    let (reference, reference_counters) =
        outcome_on(&mut SerialEngine::new(), ConsensusBackend::Dense);
    assert_eq!(reference.clusters.len(), 3, "fixture recovers the blocks");
    assert!(!reference.eigenvalues.is_empty());

    for backend in [ConsensusBackend::Dense, ConsensusBackend::Sparse] {
        // Per-backend counter reference from the serial engine; every
        // other engine/rank count must reproduce it exactly.
        let (_, backend_counters) = outcome_on(&mut SerialEngine::new(), backend);

        let check = |label: String, out: SpectralOutcome, counters: BTreeMap<String, u64>| {
            assert_eq!(
                out.clusters, reference.clusters,
                "{label}: clusters diverged from dense serial"
            );
            assert_eq!(
                eigen_bits(&out),
                eigen_bits(&reference),
                "{label}: eigenvalue stream not bit-identical"
            );
            assert_eq!(out.dropped_vars, reference.dropped_vars, "{label}");
            assert_eq!(out.matvecs, reference.matvecs, "{label}");
            assert_eq!(
                counters, backend_counters,
                "{label}: counters diverged across engines"
            );
            assert_eq!(
                consensus_counters(&counters),
                consensus_counters(&reference_counters),
                "{label}: consensus.* counters diverged across backends"
            );
        };

        let (out, counters) = outcome_on(&mut SerialEngine::new(), backend);
        check(format!("{backend:?}/serial"), out, counters);
        let (out, counters) = outcome_on(&mut ThreadEngine::new(3), backend);
        check(format!("{backend:?}/threads:3"), out, counters);
        for p in [4usize, 9] {
            let (out, counters) = outcome_on(&mut SimEngine::new(p), backend);
            check(format!("{backend:?}/sim:{p}"), out, counters);
        }
        // True SPMD: every rank runs task 2 and must land on the same
        // outcome (the per-rank counter agreement is asserted inside
        // merge_ranks by the spmd harness's snapshot merge elsewhere;
        // here each rank's outcome is compared directly).
        let results = spmd_run(3, |engine| outcome_on(engine, backend));
        for (rank, (out, counters)) in results.into_iter().enumerate() {
            check(format!("{backend:?}/msg:3 rank {rank}"), out, counters);
        }
    }
}

#[test]
fn dropped_vars_counted_identically_on_both_backends() {
    // An impossible minimum cluster size drops everything; the counter
    // must say so on both backends, on a multi-rank engine too.
    let mut p = params(ConsensusBackend::Dense);
    p.spectral.min_cluster_size = N_VARS + 1;
    let mut reference = None;
    for backend in [ConsensusBackend::Dense, ConsensusBackend::Sparse] {
        p.backend = backend;
        let mut engine = SimEngine::new(4);
        let out = consensus_outcome(&mut engine, N_VARS, &ensemble(), &p);
        assert!(out.clusters.is_empty(), "{backend:?}");
        assert!(out.dropped_vars > 0, "{backend:?}");
        match reference {
            None => reference = Some(out.dropped_vars),
            Some(r) => assert_eq!(out.dropped_vars, r, "{backend:?}"),
        }
    }
}

proptest! {
    /// `SparseSymMatrix` round-trips arbitrary thresholded symmetric
    /// matrices exactly: sparsify(dense) expands back to the same
    /// dense matrix, and every element accessor agrees.
    #[test]
    fn sparse_roundtrips_arbitrary_thresholded_matrices(
        n in 1usize..24,
        entries in proptest::collection::vec((0usize..24, 0usize..24, 0.0f64..1.0), 0..80),
        threshold in 0.0f64..1.0,
    ) {
        let mut dense = SymMatrix::zeros(n);
        for &(i, j, v) in entries.iter().filter(|&&(i, j, _)| i < n && j < n) {
            // Mimic the co-occurrence shape: thresholded, diagonal 1.
            dense.set(i, j, if v < threshold { 0.0 } else { v });
        }
        for i in 0..n {
            dense.set(i, i, 1.0);
        }
        let sparse = SparseSymMatrix::from_dense(&dense);
        prop_assert_eq!(sparse.to_dense(), dense.clone());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(sparse.get(i, j), dense.get(i, j));
            }
        }
        // The canonical parts round-trip too (the checkpoint path).
        let rebuilt = SparseSymMatrix::from_parts(sparse.to_parts());
        prop_assert_eq!(rebuilt, sparse);
    }
}
