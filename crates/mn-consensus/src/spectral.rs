//! Spectral consensus clustering.
//!
//! §2.2.2: the thresholded co-occurrence matrix is fed to "the spectral
//! clustering algorithm proposed by Michoel and Nachtergaele" (Phys.
//! Rev. E 86, 2012). That algorithm iteratively extracts the dominant
//! eigenvector of the (non-negative, symmetric) matrix — by
//! Perron–Frobenius it can be taken entrywise non-negative — reads the
//! tightest cluster off its largest components, removes those
//! variables, and repeats until no structure remains.
//!
//! Our implementation follows that extraction loop with plain power
//! iteration and deflation-by-removal. The membership cutoff (take the
//! variables whose eigenvector weight is at least `membership_frac` of
//! the maximum) is the standard reading of the hypergraph method's
//! cluster-extraction step; DESIGN.md records it as a behavioural
//! equivalent.
//!
//! Two execution paths share the loop. The dense baseline
//! ([`spectral_outcome`]) is §3.2.2 taken literally: sequential,
//! replicated on every rank (the task was < 0.04 % of the paper's
//! runtime). The sharded path ([`spectral_outcome_sparse`]) departs
//! from §3.2.2 for north-star scale: each power-iteration matvec is a
//! [`mn_comm::ParEngine::dist_map`] over the active rows of the sparse
//! matrix — each rank owns a contiguous row block, computes its
//! partial products, and the results are all-gathered (on the message
//! engine, over the failure-aware fabric) — while the reduced-state
//! extraction (norm, cutoff, component walk) stays replicated. The
//! two paths are bit-identical (DESIGN.md §11): the dense accumulator
//! only ever adds exact `+0.0` terms for the entries the sparse
//! matvec skips, and the norm is reduced in a fixed (active-index)
//! order, never per-rank, so the f64 stream does not depend on the
//! engine or the rank count.

use crate::sparse::SparseSymMatrix;
use crate::symmatrix::SymMatrix;
use mn_comm::{Collective, ParEngine};
use serde::{Deserialize, Serialize};

/// Parameters of the spectral extraction loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpectralParams {
    /// A variable joins the current cluster when its eigenvector
    /// weight is ≥ this fraction of the maximum weight.
    pub membership_frac: f64,
    /// Clusters smaller than this are discarded (their variables stay
    /// unassigned), mirroring Lemon-Tree's minimum-cluster-size option.
    pub min_cluster_size: usize,
    /// Power-iteration convergence tolerance on the eigenvector.
    pub tol: f64,
    /// Power-iteration cap.
    pub max_iters: usize,
    /// Stop extracting once the dominant eigenvalue falls below this.
    pub min_eigenvalue: f64,
}

impl Default for SpectralParams {
    fn default() -> Self {
        Self {
            membership_frac: 0.5,
            min_cluster_size: 2,
            tol: 1e-4,
            max_iters: 50,
            min_eigenvalue: 1e-6,
        }
    }
}

/// Result of power iteration: dominant eigenvalue and eigenvector.
#[derive(Debug, Clone)]
pub struct DominantPair {
    /// Rayleigh-quotient estimate of the largest eigenvalue.
    pub value: f64,
    /// Unit-norm, entrywise non-negative eigenvector.
    pub vector: Vec<f64>,
    /// Iterations actually executed (for work accounting).
    pub iterations: usize,
}

/// Power iteration for the dominant eigenpair of a non-negative
/// symmetric matrix, restricted to `active` indices (inactive entries
/// stay exactly zero). The matrix-vector product touches only the
/// active rows and columns, so late extractions (few remaining
/// variables) are cheap. Deterministic: starts from the uniform vector.
pub fn power_iteration(
    a: &SymMatrix,
    active: &[bool],
    tol: f64,
    max_iters: usize,
) -> DominantPair {
    let n = a.n();
    assert_eq!(active.len(), n);
    let active_list: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
    if active_list.is_empty() {
        return DominantPair {
            value: 0.0,
            vector: vec![0.0; n],
            iterations: 0,
        };
    }
    let init = 1.0 / (active_list.len() as f64).sqrt();
    let mut v: Vec<f64> = active
        .iter()
        .map(|&b| if b { init } else { 0.0 })
        .collect();
    let mut next = vec![0.0; n];
    let mut value = 0.0;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Compressed matvec over active indices only.
        for &i in &active_list {
            let row = a.row(i);
            let mut acc = 0.0;
            for &j in &active_list {
                acc += row[j] * v[j];
            }
            next[i] = acc;
        }
        let norm = active_list
            .iter()
            .map(|&i| next[i] * next[i])
            .sum::<f64>()
            .sqrt();
        if norm == 0.0 {
            return DominantPair {
                value: 0.0,
                vector: vec![0.0; n],
                iterations,
            };
        }
        let mut delta: f64 = 0.0;
        for &i in &active_list {
            next[i] /= norm;
            delta = delta.max((next[i] - v[i]).abs());
        }
        std::mem::swap(&mut v, &mut next);
        // For a non-negative matrix and non-negative start the iterates
        // stay non-negative; the norm is the eigenvalue estimate.
        value = norm;
        if delta < tol {
            break;
        }
    }
    DominantPair {
        value,
        vector: v,
        iterations,
    }
}

/// Distributed power iteration over a sparse thresholded matrix:
/// the [`power_iteration`] loop with every matvec sharded through
/// [`ParEngine::dist_map`]. Each rank owns a contiguous block of the
/// active rows, computes its partial products over the stored row
/// entries (in increasing column order — the bit-identity order), and
/// the per-row results are all-gathered; the norm is then reduced in
/// active-index order by every rank (an accounted single-word
/// allreduce), never as per-rank partials, so the f64 stream is
/// independent of the rank count.
pub fn power_iteration_sparse<E: ParEngine + ?Sized>(
    engine: &mut E,
    a: &SparseSymMatrix,
    active: &[bool],
    tol: f64,
    max_iters: usize,
) -> DominantPair {
    let n = a.n();
    assert_eq!(active.len(), n);
    let active_list: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
    if active_list.is_empty() {
        return DominantPair {
            value: 0.0,
            vector: vec![0.0; n],
            iterations: 0,
        };
    }
    let init = 1.0 / (active_list.len() as f64).sqrt();
    let mut v: Vec<f64> = active
        .iter()
        .map(|&b| if b { init } else { 0.0 })
        .collect();
    let mut value = 0.0;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // One sharded matvec. A stored entry that falls outside the
        // active set is skipped exactly like a dense zero: both
        // contribute nothing to the accumulator.
        let products: Vec<f64> = {
            let v_ref = &v;
            let al = &active_list;
            engine.dist_map(al.len(), 1, &|k| {
                let i = al[k];
                let mut acc = 0.0;
                for (j, w) in a.row(i) {
                    if active[j] {
                        acc += w * v_ref[j];
                    }
                }
                (acc, (a.row_nnz(i) as u64).max(1))
            })
        };
        // Fixed-order norm reduction over the gathered products.
        engine.collective(Collective::AllReduce, 1);
        let norm = products.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return DominantPair {
                value: 0.0,
                vector: vec![0.0; n],
                iterations,
            };
        }
        let mut next = vec![0.0; n];
        let mut delta: f64 = 0.0;
        for (k, &i) in active_list.iter().enumerate() {
            next[i] = products[k] / norm;
            delta = delta.max((next[i] - v[i]).abs());
        }
        v = next;
        value = norm;
        if delta < tol {
            break;
        }
    }
    DominantPair {
        value,
        vector: v,
        iterations,
    }
}

/// Everything the spectral extraction loop produces, for both the
/// dense and the sparse path: the clusters plus the evidence the A/B
/// suite compares bit-for-bit and the accounting the engines charge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpectralOutcome {
    /// Consensus clusters (sorted variable lists), extraction order.
    pub clusters: Vec<Vec<usize>>,
    /// Dominant eigenvalue of each extraction, in extraction order —
    /// one entry per extracted component, whether or not the cluster
    /// survived the minimum-size filter.
    pub eigenvalues: Vec<f64>,
    /// Variables discarded because their cluster fell below
    /// `min_cluster_size` (the `consensus.dropped_vars` counter).
    pub dropped_vars: u64,
    /// Power-iteration matvecs executed across all extractions (the
    /// `consensus.matvec_dispatches` counter).
    pub matvecs: u64,
    /// Dense-path work units (matrix cells visited / 4), the quantity
    /// the replicated baseline charges. Zero on the sparse path, which
    /// charges its real per-row costs through `dist_map` instead.
    pub work: u64,
}

/// Extract consensus clusters from a co-occurrence matrix.
///
/// Returns the clusters (lists of variable indices, each sorted), in
/// extraction order (strongest first). Variables in no returned
/// cluster were either isolated by the threshold or fell in clusters
/// smaller than `min_cluster_size`.
pub fn spectral_clusters(matrix: &SymMatrix, params: &SpectralParams) -> Vec<Vec<usize>> {
    spectral_outcome(matrix, params).clusters
}

/// [`spectral_clusters`] with a work-unit estimate (matrix-vector
/// products dominate: one unit per matrix cell per power-iteration
/// step), used to charge the engines for the replicated consensus task.
pub fn spectral_clusters_counted(
    matrix: &SymMatrix,
    params: &SpectralParams,
) -> (Vec<Vec<usize>>, u64) {
    let out = spectral_outcome(matrix, params);
    (out.clusters, out.work)
}

/// The dense (sequential, replicated) spectral extraction loop.
pub fn spectral_outcome(matrix: &SymMatrix, params: &SpectralParams) -> SpectralOutcome {
    let n = matrix.n();
    let mut a = matrix.clone();
    let mut active = vec![true; n];
    let mut out = SpectralOutcome::default();
    loop {
        let remaining = active.iter().filter(|&&b| b).count();
        if remaining == 0 {
            break;
        }
        let pair = power_iteration(&a, &active, params.tol, params.max_iters);
        out.matvecs += pair.iterations as u64;
        // Matvec work actually performed by this extraction; one
        // multiply-add is far cheaper than a scoring cell visit, so
        // four madds are charged as one work unit.
        out.work += pair.iterations as u64 * (remaining as u64) * (remaining as u64) / 4;
        if pair.value < params.min_eigenvalue {
            break;
        }
        let Some((candidates, argmax)) = extraction_candidates(&pair.vector, &active, params)
        else {
            break;
        };
        // When the spectrum is degenerate (e.g. two equally strong
        // blocks), the dominant eigenvector can mix several blocks.
        // Restrict the extracted cluster to the connected component of
        // the strongest variable within the candidate set, which is
        // exactly one block of the co-occurrence graph.
        let cluster = connected_component(&a, &candidates, argmax);
        out.eigenvalues.push(pair.value);
        for &i in &cluster {
            active[i] = false;
            a.clear_index(i);
        }
        if cluster.len() >= params.min_cluster_size {
            out.clusters.push(cluster);
        } else {
            out.dropped_vars += cluster.len() as u64;
        }
    }
    out
}

/// The sharded spectral extraction loop: power iteration distributed
/// over the engine ([`power_iteration_sparse`]); deflation and
/// cluster extraction replicated on the small reduced state (the
/// eigenvector), with the matrix left immutable — the active mask
/// excludes extracted variables, which reads the exact values the
/// dense path's `clear_index` deflation leaves in place.
pub fn spectral_outcome_sparse<E: ParEngine + ?Sized>(
    engine: &mut E,
    a: &SparseSymMatrix,
    params: &SpectralParams,
) -> SpectralOutcome {
    let n = a.n();
    let mut active = vec![true; n];
    let mut out = SpectralOutcome::default();
    loop {
        let remaining = active.iter().filter(|&&b| b).count();
        if remaining == 0 {
            break;
        }
        let pair = power_iteration_sparse(engine, a, &active, params.tol, params.max_iters);
        // Replicated reduced-state bookkeeping (cutoff scan, argmax,
        // component walk) — O(remaining), on every rank.
        engine.replicated(remaining as u64);
        out.matvecs += pair.iterations as u64;
        if pair.value < params.min_eigenvalue {
            break;
        }
        let Some((candidates, argmax)) = extraction_candidates(&pair.vector, &active, params)
        else {
            break;
        };
        let cluster = connected_component_sparse(a, &candidates, argmax);
        out.eigenvalues.push(pair.value);
        for &i in &cluster {
            active[i] = false;
        }
        if cluster.len() >= params.min_cluster_size {
            out.clusters.push(cluster);
        } else {
            out.dropped_vars += cluster.len() as u64;
        }
    }
    out
}

/// The membership-cutoff step shared by both paths: the candidate set
/// (active variables whose eigenvector weight clears the cutoff) and
/// the strongest active variable. `None` when the eigenvector carries
/// no positive weight.
fn extraction_candidates(
    vector: &[f64],
    active: &[bool],
    params: &SpectralParams,
) -> Option<(Vec<usize>, usize)> {
    let n = vector.len();
    let max_w = vector.iter().copied().fold(0.0, f64::max);
    if max_w <= 0.0 {
        return None;
    }
    let cutoff = params.membership_frac * max_w;
    let candidates: Vec<usize> = (0..n)
        .filter(|&i| active[i] && vector[i] >= cutoff)
        .collect();
    let argmax = (0..n)
        .filter(|&i| active[i])
        .max_by(|&i, &j| vector[i].total_cmp(&vector[j]))
        .unwrap();
    Some((candidates, argmax))
}

/// The connected component of `seed` in the subgraph induced by
/// `candidates`, walking neighbours through `neighbors(i, visit)`
/// (which must call `visit(j)` for every `j` adjacent to `i`).
/// Candidate membership is a bitmap, so each popped node costs its
/// degree, not `O(|candidates|)`. Returns a sorted list; contains at
/// least `seed`.
fn connected_component_generic(
    n: usize,
    candidates: &[usize],
    seed: usize,
    neighbors: impl Fn(usize, &mut dyn FnMut(usize)),
) -> Vec<usize> {
    let mut is_candidate = vec![false; n];
    for &c in candidates {
        is_candidate[c] = true;
    }
    if !is_candidate[seed] {
        return vec![seed];
    }
    let mut in_component = vec![false; n];
    in_component[seed] = true;
    let mut queue = vec![seed];
    let mut found = Vec::new();
    while let Some(i) = queue.pop() {
        neighbors(i, &mut |j| {
            if is_candidate[j] && !in_component[j] {
                in_component[j] = true;
                found.push(j);
            }
        });
        queue.append(&mut found);
    }
    (0..n).filter(|&i| in_component[i]).collect()
}

/// [`connected_component_generic`] over a dense matrix (edges where
/// `a(i,j) > 0`).
fn connected_component(a: &SymMatrix, candidates: &[usize], seed: usize) -> Vec<usize> {
    connected_component_generic(a.n(), candidates, seed, |i, visit| {
        for (j, &v) in a.row(i).iter().enumerate() {
            if v > 0.0 {
                visit(j);
            }
        }
    })
}

/// [`connected_component_generic`] over a sparse matrix: neighbours
/// come straight from the stored row, so the walk costs the sum of
/// component degrees.
fn connected_component_sparse(
    a: &SparseSymMatrix,
    candidates: &[usize],
    seed: usize,
) -> Vec<usize> {
    connected_component_generic(a.n(), candidates, seed, |i, visit| {
        for (j, v) in a.row(i) {
            if v > 0.0 {
                visit(j);
            }
        }
    })
}

/// Convenience: the full consensus-clustering task (§2.2.2) from an
/// ensemble of variable clusterings.
pub fn consensus_clustering(
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    threshold: f64,
    params: &SpectralParams,
) -> Vec<Vec<usize>> {
    let a = crate::cooccurrence::cooccurrence_matrix(n, ensemble, threshold);
    spectral_clusters(&a, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_matrix() -> SymMatrix {
        // Two perfect blocks {0,1,2} and {3,4} with no cross terms.
        let mut a = SymMatrix::zeros(5);
        for &(i, j) in &[(0, 1), (0, 2), (1, 2), (3, 4)] {
            a.set(i, j, 1.0);
        }
        for i in 0..5 {
            a.set(i, i, 1.0);
        }
        a
    }

    #[test]
    fn power_iteration_finds_known_eigenpair() {
        // [[2,1],[1,2]] has dominant eigenvalue 3, eigenvector (1,1)/√2.
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 2.0);
        a.set(0, 1, 1.0);
        let pair = power_iteration(&a, &[true, true], 1e-12, 1000);
        assert!((pair.value - 3.0).abs() < 1e-9, "value {}", pair.value);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((pair.vector[0] - inv_sqrt2).abs() < 1e-6);
        assert!((pair.vector[1] - inv_sqrt2).abs() < 1e-6);
    }

    #[test]
    fn power_iteration_respects_active_mask() {
        let a = block_matrix();
        let active = [false, false, false, true, true];
        let pair = power_iteration(&a, &active, 1e-12, 1000);
        assert_eq!(pair.vector[0], 0.0);
        assert!(pair.vector[3] > 0.0);
        // Dominant eigenvalue of the {3,4} block (1 on diag, 1 off) is 2.
        assert!((pair.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_are_recovered_in_size_order() {
        let clusters = spectral_clusters(&block_matrix(), &SpectralParams::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
    }

    #[test]
    fn min_cluster_size_discards_singletons() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 1, 1.0);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        // Variable 2 is isolated.
        let clusters = spectral_clusters(&a, &SpectralParams::default());
        assert_eq!(clusters, vec![vec![0, 1]]);
    }

    #[test]
    fn consensus_from_noisy_ensemble() {
        // 10 samples agreeing on {0,1,2} / {3,4,5}, with one dissenting
        // sample mixing them. Threshold 0.3 removes the noise.
        let mut ensemble = vec![vec![vec![0, 1, 2], vec![3, 4, 5]]; 9];
        ensemble.push(vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
        let clusters = consensus_clustering(6, &ensemble, 0.3, &SpectralParams::default());
        assert_eq!(clusters.len(), 2);
        let mut sets: Vec<Vec<usize>> = clusters;
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn deterministic() {
        let a = block_matrix();
        let p = SpectralParams::default();
        assert_eq!(spectral_clusters(&a, &p), spectral_clusters(&a, &p));
    }

    #[test]
    fn empty_matrix_yields_no_clusters() {
        let a = SymMatrix::zeros(4);
        let clusters = spectral_clusters(&a, &SpectralParams::default());
        assert!(clusters.is_empty());
    }

    #[test]
    fn clusters_are_disjoint_and_within_range() {
        let clusters = spectral_clusters(&block_matrix(), &SpectralParams::default());
        let mut seen = [false; 5];
        for c in &clusters {
            for &v in c {
                assert!(v < 5);
                assert!(!seen[v], "variable {v} in two clusters");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn outcome_reports_eigenvalues_and_drops() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 1, 1.0);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let out = spectral_outcome(&a, &SpectralParams::default());
        assert_eq!(out.clusters, vec![vec![0, 1]]);
        // The isolated variable 2 forms a singleton below
        // min_cluster_size = 2: one dropped variable, and both
        // extractions still report their eigenvalue.
        assert_eq!(out.dropped_vars, 1);
        assert_eq!(out.eigenvalues.len(), 2);
        assert!(out.matvecs > 0);
    }

    /// Regression (ISSUE 5 satellite 2): the old component walk did a
    /// linear `candidates.contains(seed)` plus an O(|candidates|)
    /// dense-lookup scan per popped node — quadratic on a 10k-node
    /// path graph. The bitmap + adjacency walk costs the sum of
    /// component degrees and finishes instantly.
    #[test]
    fn connected_component_handles_10k_node_path_graph() {
        let n = 10_000;
        let rows: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| {
                let mut row = vec![(i as u32, 1.0)];
                if i + 1 < n {
                    row.push((i as u32 + 1, 1.0));
                }
                row
            })
            .collect();
        let a = SparseSymMatrix::from_rows(n, &rows);
        let candidates: Vec<usize> = (0..n).collect();
        let start = std::time::Instant::now();
        let component = connected_component_sparse(&a, &candidates, n / 2);
        assert_eq!(component.len(), n, "path graph is one component");
        assert_eq!(component, candidates, "sorted full range");
        // Generous wall bound: the quadratic walk took tens of seconds
        // here; the linear one is well under a second even in debug.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "component walk took {:?}",
            start.elapsed()
        );
        // The dense wrapper keeps the same semantics (small instance).
        let dense = connected_component(&block_matrix(), &[0, 1, 2], 1);
        assert_eq!(dense, vec![0, 1, 2]);
        // A seed outside the candidate set stays a singleton.
        assert_eq!(connected_component_sparse(&a, &[5, 6], 100), vec![100]);
    }

    #[test]
    fn sparse_outcome_matches_dense_bit_for_bit_on_serial() {
        use mn_comm::SerialEngine;
        let a = block_matrix();
        let params = SpectralParams::default();
        let dense_out = spectral_outcome(&a, &params);
        let sparse = SparseSymMatrix::from_dense(&a);
        let mut engine = SerialEngine::new();
        let sparse_out = spectral_outcome_sparse(&mut engine, &sparse, &params);
        assert_eq!(dense_out.clusters, sparse_out.clusters);
        assert_eq!(dense_out.dropped_vars, sparse_out.dropped_vars);
        assert_eq!(dense_out.matvecs, sparse_out.matvecs);
        let bits = |vals: &[f64]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&dense_out.eigenvalues),
            bits(&sparse_out.eigenvalues),
            "eigenvalue streams must be bit-identical"
        );
    }
}
