//! Spectral consensus clustering.
//!
//! §2.2.2: the thresholded co-occurrence matrix is fed to "the spectral
//! clustering algorithm proposed by Michoel and Nachtergaele" (Phys.
//! Rev. E 86, 2012). That algorithm iteratively extracts the dominant
//! eigenvector of the (non-negative, symmetric) matrix — by
//! Perron–Frobenius it can be taken entrywise non-negative — reads the
//! tightest cluster off its largest components, removes those
//! variables, and repeats until no structure remains.
//!
//! Our implementation follows that extraction loop with plain power
//! iteration and deflation-by-removal. The membership cutoff (take the
//! variables whose eigenvector weight is at least `membership_frac` of
//! the maximum) is the standard reading of the hypergraph method's
//! cluster-extraction step; DESIGN.md records it as a behavioural
//! equivalent. The consensus task is < 0.04 % of total sequential
//! runtime in the paper's experiments, so it is run *sequentially,
//! replicated on every rank*, exactly as §3.2.2 does.

use crate::symmatrix::SymMatrix;
use serde::{Deserialize, Serialize};

/// Parameters of the spectral extraction loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpectralParams {
    /// A variable joins the current cluster when its eigenvector
    /// weight is ≥ this fraction of the maximum weight.
    pub membership_frac: f64,
    /// Clusters smaller than this are discarded (their variables stay
    /// unassigned), mirroring Lemon-Tree's minimum-cluster-size option.
    pub min_cluster_size: usize,
    /// Power-iteration convergence tolerance on the eigenvector.
    pub tol: f64,
    /// Power-iteration cap.
    pub max_iters: usize,
    /// Stop extracting once the dominant eigenvalue falls below this.
    pub min_eigenvalue: f64,
}

impl Default for SpectralParams {
    fn default() -> Self {
        Self {
            membership_frac: 0.5,
            min_cluster_size: 2,
            tol: 1e-4,
            max_iters: 50,
            min_eigenvalue: 1e-6,
        }
    }
}

/// Result of power iteration: dominant eigenvalue and eigenvector.
#[derive(Debug, Clone)]
pub struct DominantPair {
    /// Rayleigh-quotient estimate of the largest eigenvalue.
    pub value: f64,
    /// Unit-norm, entrywise non-negative eigenvector.
    pub vector: Vec<f64>,
    /// Iterations actually executed (for work accounting).
    pub iterations: usize,
}

/// Power iteration for the dominant eigenpair of a non-negative
/// symmetric matrix, restricted to `active` indices (inactive entries
/// stay exactly zero). The matrix-vector product touches only the
/// active rows and columns, so late extractions (few remaining
/// variables) are cheap. Deterministic: starts from the uniform vector.
pub fn power_iteration(
    a: &SymMatrix,
    active: &[bool],
    tol: f64,
    max_iters: usize,
) -> DominantPair {
    let n = a.n();
    assert_eq!(active.len(), n);
    let active_list: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
    if active_list.is_empty() {
        return DominantPair {
            value: 0.0,
            vector: vec![0.0; n],
            iterations: 0,
        };
    }
    let init = 1.0 / (active_list.len() as f64).sqrt();
    let mut v: Vec<f64> = active
        .iter()
        .map(|&b| if b { init } else { 0.0 })
        .collect();
    let mut next = vec![0.0; n];
    let mut value = 0.0;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Compressed matvec over active indices only.
        for &i in &active_list {
            let row = a.row(i);
            let mut acc = 0.0;
            for &j in &active_list {
                acc += row[j] * v[j];
            }
            next[i] = acc;
        }
        let norm = active_list
            .iter()
            .map(|&i| next[i] * next[i])
            .sum::<f64>()
            .sqrt();
        if norm == 0.0 {
            return DominantPair {
                value: 0.0,
                vector: vec![0.0; n],
                iterations,
            };
        }
        let mut delta: f64 = 0.0;
        for &i in &active_list {
            next[i] /= norm;
            delta = delta.max((next[i] - v[i]).abs());
        }
        std::mem::swap(&mut v, &mut next);
        // For a non-negative matrix and non-negative start the iterates
        // stay non-negative; the norm is the eigenvalue estimate.
        value = norm;
        if delta < tol {
            break;
        }
    }
    DominantPair {
        value,
        vector: v,
        iterations,
    }
}

/// Extract consensus clusters from a co-occurrence matrix.
///
/// Returns the clusters (lists of variable indices, each sorted), in
/// extraction order (strongest first). Variables in no returned
/// cluster were either isolated by the threshold or fell in clusters
/// smaller than `min_cluster_size`.
pub fn spectral_clusters(matrix: &SymMatrix, params: &SpectralParams) -> Vec<Vec<usize>> {
    spectral_clusters_counted(matrix, params).0
}

/// [`spectral_clusters`] with a work-unit estimate (matrix-vector
/// products dominate: one unit per matrix cell per power-iteration
/// step), used to charge the engines for the replicated consensus task.
pub fn spectral_clusters_counted(
    matrix: &SymMatrix,
    params: &SpectralParams,
) -> (Vec<Vec<usize>>, u64) {
    let n = matrix.n();
    let mut a = matrix.clone();
    let mut active = vec![true; n];
    let mut clusters = Vec::new();
    let mut work: u64 = 0;
    loop {
        let remaining = active.iter().filter(|&&b| b).count();
        if remaining == 0 {
            break;
        }
        let pair = power_iteration(&a, &active, params.tol, params.max_iters);
        // Matvec work actually performed by this extraction; one
        // multiply-add is far cheaper than a scoring cell visit, so
        // four madds are charged as one work unit.
        work += pair.iterations as u64 * (remaining as u64) * (remaining as u64) / 4;
        if pair.value < params.min_eigenvalue {
            break;
        }
        let max_w = pair.vector.iter().copied().fold(0.0, f64::max);
        if max_w <= 0.0 {
            break;
        }
        let cutoff = params.membership_frac * max_w;
        let candidates: Vec<usize> = (0..n)
            .filter(|&i| active[i] && pair.vector[i] >= cutoff)
            .collect();
        let argmax = (0..n)
            .filter(|&i| active[i])
            .max_by(|&i, &j| pair.vector[i].total_cmp(&pair.vector[j]))
            .unwrap();
        // When the spectrum is degenerate (e.g. two equally strong
        // blocks), the dominant eigenvector can mix several blocks.
        // Restrict the extracted cluster to the connected component of
        // the strongest variable within the candidate set, which is
        // exactly one block of the co-occurrence graph.
        let cluster = connected_component(&a, &candidates, argmax);
        for &i in &cluster {
            active[i] = false;
            a.clear_index(i);
        }
        if cluster.len() >= params.min_cluster_size {
            clusters.push(cluster);
        }
    }
    (clusters, work)
}

/// The connected component of `seed` in the subgraph of `a` induced by
/// `candidates` (edges where `a(i,j) > 0`). Returns a sorted list;
/// contains at least `seed`.
fn connected_component(a: &SymMatrix, candidates: &[usize], seed: usize) -> Vec<usize> {
    if !candidates.contains(&seed) {
        return vec![seed];
    }
    let mut in_component = vec![false; a.n()];
    in_component[seed] = true;
    let mut queue = vec![seed];
    while let Some(i) = queue.pop() {
        for &j in candidates {
            if !in_component[j] && a.get(i, j) > 0.0 {
                in_component[j] = true;
                queue.push(j);
            }
        }
    }
    (0..a.n()).filter(|&i| in_component[i]).collect()
}

/// Convenience: the full consensus-clustering task (§2.2.2) from an
/// ensemble of variable clusterings.
pub fn consensus_clustering(
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    threshold: f64,
    params: &SpectralParams,
) -> Vec<Vec<usize>> {
    let a = crate::cooccurrence::cooccurrence_matrix(n, ensemble, threshold);
    spectral_clusters(&a, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_matrix() -> SymMatrix {
        // Two perfect blocks {0,1,2} and {3,4} with no cross terms.
        let mut a = SymMatrix::zeros(5);
        for &(i, j) in &[(0, 1), (0, 2), (1, 2), (3, 4)] {
            a.set(i, j, 1.0);
        }
        for i in 0..5 {
            a.set(i, i, 1.0);
        }
        a
    }

    #[test]
    fn power_iteration_finds_known_eigenpair() {
        // [[2,1],[1,2]] has dominant eigenvalue 3, eigenvector (1,1)/√2.
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 2.0);
        a.set(0, 1, 1.0);
        let pair = power_iteration(&a, &[true, true], 1e-12, 1000);
        assert!((pair.value - 3.0).abs() < 1e-9, "value {}", pair.value);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((pair.vector[0] - inv_sqrt2).abs() < 1e-6);
        assert!((pair.vector[1] - inv_sqrt2).abs() < 1e-6);
    }

    #[test]
    fn power_iteration_respects_active_mask() {
        let a = block_matrix();
        let active = [false, false, false, true, true];
        let pair = power_iteration(&a, &active, 1e-12, 1000);
        assert_eq!(pair.vector[0], 0.0);
        assert!(pair.vector[3] > 0.0);
        // Dominant eigenvalue of the {3,4} block (1 on diag, 1 off) is 2.
        assert!((pair.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_are_recovered_in_size_order() {
        let clusters = spectral_clusters(&block_matrix(), &SpectralParams::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
    }

    #[test]
    fn min_cluster_size_discards_singletons() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 1, 1.0);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        // Variable 2 is isolated.
        let clusters = spectral_clusters(&a, &SpectralParams::default());
        assert_eq!(clusters, vec![vec![0, 1]]);
    }

    #[test]
    fn consensus_from_noisy_ensemble() {
        // 10 samples agreeing on {0,1,2} / {3,4,5}, with one dissenting
        // sample mixing them. Threshold 0.3 removes the noise.
        let mut ensemble = vec![vec![vec![0, 1, 2], vec![3, 4, 5]]; 9];
        ensemble.push(vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
        let clusters = consensus_clustering(6, &ensemble, 0.3, &SpectralParams::default());
        assert_eq!(clusters.len(), 2);
        let mut sets: Vec<Vec<usize>> = clusters;
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn deterministic() {
        let a = block_matrix();
        let p = SpectralParams::default();
        assert_eq!(spectral_clusters(&a, &p), spectral_clusters(&a, &p));
    }

    #[test]
    fn empty_matrix_yields_no_clusters() {
        let a = SymMatrix::zeros(4);
        let clusters = spectral_clusters(&a, &SpectralParams::default());
        assert!(clusters.is_empty());
    }

    #[test]
    fn clusters_are_disjoint_and_within_range() {
        let clusters = spectral_clusters(&block_matrix(), &SpectralParams::default());
        let mut seen = [false; 5];
        for c in &clusters {
            for &v in c {
                assert!(v < 5);
                assert!(!seen[v], "variable {v} in two clusters");
                seen[v] = true;
            }
        }
    }
}
