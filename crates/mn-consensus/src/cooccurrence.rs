//! The co-occurrence frequency matrix of §2.2.2.
//!
//! "A symmetric co-occurrence frequency matrix A of size n × n. The
//! entry A(i,j) of the matrix is set to the number of times the
//! variables X_i and X_j occur in the same cluster in the ensemble, as
//! a fraction of the total number of sampled clusters. Note that
//! A(i,j) is set to zero if the co-occurrence weight is below a
//! user-provided threshold."

use crate::symmatrix::SymMatrix;

/// Build the thresholded co-occurrence matrix from an ensemble of
/// variable clusterings.
///
/// * `n` — number of variables,
/// * `ensemble[s]` — the variable clusters of sample `s` (lists of
///   variable indices),
/// * `threshold` — co-occurrence fractions strictly below this are
///   zeroed (0.0 keeps everything).
///
/// The diagonal is set to 1 (every variable always co-occurs with
/// itself), which keeps the matrix's Perron eigenvector strictly
/// positive on unclustered-but-present variables.
pub fn cooccurrence_matrix(
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    threshold: f64,
) -> SymMatrix {
    assert!(!ensemble.is_empty(), "need at least one cluster sample");
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
    let mut counts = SymMatrix::zeros(n);
    for sample in ensemble {
        for cluster in sample {
            for (a_pos, &i) in cluster.iter().enumerate() {
                for &j in &cluster[a_pos + 1..] {
                    counts.add(i, j, 1.0);
                }
            }
        }
    }
    let total = ensemble.len() as f64;
    counts.map_in_place(|v| {
        let f = v / total;
        if f < threshold {
            0.0
        } else {
            f
        }
    });
    for i in 0..n {
        counts.set(i, i, 1.0);
    }
    counts
}

/// The work units of building the matrix (for the engines' replicated
/// cost accounting): `O(G n²)` in the paper's notation.
pub fn cooccurrence_work(n: usize, g_samples: usize) -> u64 {
    (g_samples as u64) * (n as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_gives_ones() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 1], vec![2, 3]],
        ];
        let a = cooccurrence_matrix(4, &ensemble, 0.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(2, 3), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(1, 3), 0.0);
        assert_eq!(a.get(0, 0), 1.0);
    }

    #[test]
    fn fractions_reflect_disagreement() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2]],
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2]],
        ];
        let a = cooccurrence_matrix(3, &ensemble, 0.0);
        assert!((a.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((a.get(1, 2) - 0.5).abs() < 1e-12);
        assert!((a.get(0, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn threshold_zeroes_weak_entries() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2]],
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2]],
        ];
        let a = cooccurrence_matrix(3, &ensemble, 0.6);
        assert!((a.get(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(a.get(1, 2), 0.0, "0.5 < 0.6 must be zeroed");
        assert_eq!(a.get(0, 2), 0.0);
        // Diagonal survives any threshold.
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn symmetric_by_construction() {
        let ensemble = vec![vec![vec![0, 2, 4], vec![1, 3]]];
        let a = cooccurrence_matrix(5, &ensemble, 0.0);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_panics() {
        cooccurrence_matrix(2, &[], 0.0);
    }

    #[test]
    fn work_formula() {
        assert_eq!(cooccurrence_work(10, 3), 300);
    }
}
