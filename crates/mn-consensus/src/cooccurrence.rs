//! The co-occurrence frequency matrix of §2.2.2.
//!
//! "A symmetric co-occurrence frequency matrix A of size n × n. The
//! entry A(i,j) of the matrix is set to the number of times the
//! variables X_i and X_j occur in the same cluster in the ensemble, as
//! a fraction of the total number of sampled clusters. Note that
//! A(i,j) is set to zero if the co-occurrence weight is below a
//! user-provided threshold."
//!
//! **Normalization.** Within one ensemble sample the clusters are
//! disjoint, so a pair `(i,j)` co-occurs at most once per sample and
//! the paper's "number of times ... as a fraction of the total number
//! of sampled clusters" can only mean the fraction of *samples*
//! (cluster *sets*) in which the pair shares a cluster — that is the
//! reading under which A(i,j) = 1 expresses perfect agreement and the
//! user threshold is a fraction in [0,1]. Dividing by the literal
//! count of sampled clusters (Σ_s |clusters(s)|) would shrink every
//! entry by the mean cluster count and break the threshold's meaning.
//! We normalize by `ensemble.len()`; DESIGN.md §11 records the
//! decision, and the regression tests below pin it (including the
//! strict `f < threshold` boundary: entries exactly at the threshold
//! are kept).

use crate::sparse::SparseSymMatrix;
use crate::symmatrix::SymMatrix;
use mn_comm::{obs::counters, ParEngine};

/// Build the thresholded co-occurrence matrix from an ensemble of
/// variable clusterings.
///
/// * `n` — number of variables,
/// * `ensemble[s]` — the variable clusters of sample `s` (lists of
///   variable indices),
/// * `threshold` — co-occurrence fractions strictly below this are
///   zeroed (0.0 keeps everything).
///
/// The diagonal is set to 1 (every variable always co-occurs with
/// itself), which keeps the matrix's Perron eigenvector strictly
/// positive on unclustered-but-present variables.
pub fn cooccurrence_matrix(
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    threshold: f64,
) -> SymMatrix {
    assert!(!ensemble.is_empty(), "need at least one cluster sample");
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
    let mut counts = SymMatrix::zeros(n);
    for sample in ensemble {
        for cluster in sample {
            for (a_pos, &i) in cluster.iter().enumerate() {
                for &j in &cluster[a_pos + 1..] {
                    counts.add(i, j, 1.0);
                }
            }
        }
    }
    let total = ensemble.len() as f64;
    counts.map_in_place(|v| {
        let f = v / total;
        if f < threshold {
            0.0
        } else {
            f
        }
    });
    for i in 0..n {
        counts.set(i, i, 1.0);
    }
    counts
}

/// The work units of building the matrix (for the engines' replicated
/// cost accounting): `O(G n²)` in the paper's notation.
pub fn cooccurrence_work(n: usize, g_samples: usize) -> u64 {
    (g_samples as u64) * (n as u64) * (n as u64)
}

/// Rows per tile of the sharded co-occurrence build. Small enough that
/// a tile's scratch column buffer stays cache-resident relative to the
/// work it amortizes; the result is tile-size-independent (counts are
/// integer-valued f64, exact up to 2⁵³).
pub const COOC_TILE_ROWS: usize = 128;

/// Build the thresholded co-occurrence matrix directly in sparse form,
/// sharded over `engine` by tiles of [`COOC_TILE_ROWS`] rows.
///
/// Each tile accumulates the upper-triangle pair counts for its rows
/// from a replicated cluster index (variable → clusters containing
/// it), thresholds them, and emits its rows; `dist_map`'s all-gather
/// semantics reassemble the rows in order on every rank and
/// [`SparseSymMatrix::from_rows`] runs the deterministic two-pass
/// layout. Counts are integer-valued f64 (exact), so the resulting
/// fractions — and therefore the stored entries — are bit-identical to
/// the dense [`cooccurrence_matrix`] path for any tile size, engine,
/// and rank count.
///
/// Thresholding keeps entries with `count > 0 && count/G >= threshold`
/// and forces the diagonal to 1, matching the dense semantics exactly.
pub fn sparse_cooccurrence<E: ParEngine + ?Sized>(
    engine: &mut E,
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    threshold: f64,
) -> SparseSymMatrix {
    assert!(!ensemble.is_empty(), "need at least one cluster sample");
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
    let total = ensemble.len() as f64;
    // Replicated pre-pass: flatten the ensemble's clusters into an
    // arena and index variable -> clusters containing it (CSR,
    // count-then-fill). O(total membership), charged as replicated.
    let mut cluster_ptr = vec![0usize];
    let mut members: Vec<u32> = Vec::new();
    for sample in ensemble {
        for cluster in sample {
            for &v in cluster {
                assert!(v < n, "variable {v} out of range");
                members.push(v as u32);
            }
            cluster_ptr.push(members.len());
        }
    }
    let n_clusters = cluster_ptr.len() - 1;
    let mut var_count = vec![0usize; n];
    for &v in &members {
        var_count[v as usize] += 1;
    }
    let mut var_ptr = vec![0usize; n + 1];
    for i in 0..n {
        var_ptr[i + 1] = var_ptr[i] + var_count[i];
    }
    let mut var_cluster = vec![0u32; members.len()];
    let mut cursor = var_ptr[..n].to_vec();
    for c in 0..n_clusters {
        for &v in &members[cluster_ptr[c]..cluster_ptr[c + 1]] {
            var_cluster[cursor[v as usize]] = c as u32;
            cursor[v as usize] += 1;
        }
    }
    engine.replicated(members.len() as u64);

    // Sharded tile pass: each tile owns COOC_TILE_ROWS consecutive
    // rows and produces their thresholded upper-triangle entries.
    let n_tiles = n.div_ceil(COOC_TILE_ROWS).max(1);
    let tiles: Vec<Vec<Vec<(u32, f64)>>> = {
        let cluster_ptr = &cluster_ptr;
        let members = &members;
        let var_ptr = &var_ptr;
        let var_cluster = &var_cluster;
        engine.dist_map(n_tiles, 2 * COOC_TILE_ROWS, &|t| {
            let lo = t * COOC_TILE_ROWS;
            let hi = ((t + 1) * COOC_TILE_ROWS).min(n);
            let mut counts = vec![0.0f64; n];
            let mut touched: Vec<u32> = Vec::new();
            let mut rows = Vec::with_capacity(hi - lo);
            let mut cost = 1u64;
            for i in lo..hi {
                for &c in &var_cluster[var_ptr[i]..var_ptr[i + 1]] {
                    let c = c as usize;
                    for &j in &members[cluster_ptr[c]..cluster_ptr[c + 1]] {
                        if (j as usize) > i {
                            if counts[j as usize] == 0.0 {
                                touched.push(j);
                            }
                            counts[j as usize] += 1.0;
                            cost += 1;
                        }
                    }
                }
                touched.sort_unstable();
                let mut row = Vec::with_capacity(touched.len() + 1);
                row.push((i as u32, 1.0));
                for &j in &touched {
                    let f = counts[j as usize] / total;
                    if f >= threshold {
                        row.push((j, f));
                    }
                    counts[j as usize] = 0.0;
                    cost += 1;
                }
                touched.clear();
                rows.push(row);
            }
            (rows, cost)
        })
    };
    let rows: Vec<Vec<(u32, f64)>> = tiles.into_iter().flatten().collect();
    let sparse = SparseSymMatrix::from_rows(n, &rows);
    // Charge the deterministic two-pass layout (replicated on the
    // gathered rows) and record the footprint.
    engine.replicated((sparse.nnz_upper() + sparse.nnz_full()) as u64);
    engine.count(counters::CONSENSUS_NNZ, sparse.nnz_upper() as u64);
    sparse
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_gives_ones() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 1], vec![2, 3]],
        ];
        let a = cooccurrence_matrix(4, &ensemble, 0.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(2, 3), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(1, 3), 0.0);
        assert_eq!(a.get(0, 0), 1.0);
    }

    #[test]
    fn fractions_reflect_disagreement() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2]],
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2]],
        ];
        let a = cooccurrence_matrix(3, &ensemble, 0.0);
        assert!((a.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((a.get(1, 2) - 0.5).abs() < 1e-12);
        assert!((a.get(0, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn threshold_zeroes_weak_entries() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2]],
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2]],
        ];
        let a = cooccurrence_matrix(3, &ensemble, 0.6);
        assert!((a.get(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(a.get(1, 2), 0.0, "0.5 < 0.6 must be zeroed");
        assert_eq!(a.get(0, 2), 0.0);
        // Diagonal survives any threshold.
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn symmetric_by_construction() {
        let ensemble = vec![vec![vec![0, 2, 4], vec![1, 3]]];
        let a = cooccurrence_matrix(5, &ensemble, 0.0);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_panics() {
        cooccurrence_matrix(2, &[], 0.0);
    }

    #[test]
    fn work_formula() {
        assert_eq!(cooccurrence_work(10, 3), 300);
    }

    /// Regression (ISSUE 5 satellite 1): normalization is by the number
    /// of ensemble *samples*, not the literal count of sampled
    /// clusters. Two samples containing five clusters total: a pair
    /// co-occurring in both samples scores 1.0 (perfect agreement),
    /// not 2/5.
    #[test]
    fn normalizes_by_samples_not_cluster_count() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2], vec![3]],
            vec![vec![0, 1, 2], vec![3]],
        ];
        let a = cooccurrence_matrix(4, &ensemble, 0.0);
        assert_eq!(a.get(0, 1), 1.0, "pair in both of 2 samples scores 1.0");
        assert_eq!(a.get(1, 2), 0.5, "pair in 1 of 2 samples scores 0.5");
    }

    /// Regression (ISSUE 5 satellite 1): the boundary is strict —
    /// `f < threshold` zeroes, so an entry exactly at the threshold is
    /// kept.
    #[test]
    fn entries_exactly_at_threshold_are_kept() {
        let ensemble = vec![
            vec![vec![0, 1], vec![2]],
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2]],
        ];
        let a = cooccurrence_matrix(3, &ensemble, 0.75);
        assert_eq!(a.get(0, 1), 0.75, "f == threshold survives");
        assert_eq!(a.get(1, 2), 0.0, "0.5 < 0.75 zeroed");
    }

    #[test]
    fn sparse_build_matches_dense_bit_for_bit() {
        use mn_comm::SerialEngine;
        let ensemble = vec![
            vec![vec![0, 1, 4], vec![2, 3], vec![5]],
            vec![vec![0, 1], vec![2, 3, 5], vec![4]],
            vec![vec![0, 4], vec![1, 2], vec![3, 5]],
        ];
        for &threshold in &[0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0] {
            let dense = cooccurrence_matrix(6, &ensemble, threshold);
            let mut engine = SerialEngine::new();
            let sparse = sparse_cooccurrence(&mut engine, 6, &ensemble, threshold);
            assert_eq!(
                sparse.to_dense(),
                dense,
                "threshold {threshold} diverged"
            );
        }
    }

    /// The tiled build is tile-size-independent: a matrix wider than
    /// one tile reassembles identically.
    #[test]
    fn sparse_build_spans_multiple_tiles() {
        use mn_comm::SerialEngine;
        let n = COOC_TILE_ROWS + 7;
        let cluster: Vec<usize> = (0..n).step_by(3).collect();
        let other: Vec<usize> = (1..n).step_by(3).collect();
        let ensemble = vec![vec![cluster.clone(), other], vec![cluster]];
        let dense = cooccurrence_matrix(n, &ensemble, 0.5);
        let mut engine = SerialEngine::new();
        let sparse = sparse_cooccurrence(&mut engine, n, &ensemble, 0.5);
        assert_eq!(sparse.to_dense(), dense);
        assert!(sparse.nnz_upper() > n, "fixture should have off-diagonals");
    }
}
