//! Adjusted Rand index for comparing clusterings.
//!
//! Used by tests and the ensemble example to score recovery of the
//! planted module structure — the quality check that makes the
//! synthetic-data substitution auditable (DESIGN.md §2).

/// Adjusted Rand index between two label vectors (same length;
/// arbitrary label values). Returns a value in `[-1, 1]`, where 1 is
/// identical partitions and ~0 is chance agreement.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must align");
    let n = a.len();
    if n <= 1 {
        return 1.0;
    }
    let ka = 1 + *a.iter().max().unwrap();
    let kb = 1 + *b.iter().max().unwrap();
    let mut table = vec![0u64; ka * kb];
    let mut rows = vec![0u64; ka];
    let mut cols = vec![0u64; kb];
    for (&x, &y) in a.iter().zip(b) {
        table[x * kb + y] += 1;
        rows[x] += 1;
        cols[y] += 1;
    }
    let sum_table: f64 = table.iter().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = rows.iter().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = cols.iter().map(|&v| choose2(v)).sum();
    let total = choose2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        return 1.0;
    }
    (sum_table - expected) / (max_index - expected)
}

/// `x·(x−1)/2` computed in f64. The multiplication must not happen in
/// `u64`: `x·(x−1)` wraps for counts ≥ 2³², which silently corrupted
/// the index for very large clusterings. f64 loses at most relative
/// 2⁻⁵³ per factor, which is harmless in the ARI's ratios.
fn choose2(x: u64) -> f64 {
    x as f64 * (x as f64 - 1.0) / 2.0
}

/// Convert cluster member-lists over `n` items into a label vector;
/// items in no cluster get a fresh singleton label each.
pub fn labels_from_clusters(n: usize, clusters: &[Vec<usize>]) -> Vec<usize> {
    let mut labels = vec![usize::MAX; n];
    for (k, cluster) in clusters.iter().enumerate() {
        for &i in cluster {
            assert!(i < n, "cluster member {i} out of range");
            assert_eq!(labels[i], usize::MAX, "item {i} in two clusters");
            labels[i] = k;
        }
    }
    let mut next = clusters.len();
    for label in labels.iter_mut() {
        if *label == usize::MAX {
            *label = next;
            next += 1;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Relabeling does not matter.
        let b = [2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_partitions_score_near_zero() {
        // a splits by half, b alternates: agreement is chance-level.
        let a = [0, 0, 0, 0, 1, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.3, "ari {ari}");
    }

    #[test]
    fn partial_agreement_is_between() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.2 && ari < 1.0, "ari {ari}");
    }

    #[test]
    fn known_value() {
        // Hand-computed: contingency table pair-counts give
        // sum_table = 4, sum_rows = 13, sum_cols = 12, total = 45,
        // so ARI = (4 - 52/15) / (25/2 - 52/15) = 16/271.
        let a = [0, 0, 1, 1, 0, 0, 1, 1, 2, 2];
        let b = [0, 0, 0, 1, 1, 1, 2, 2, 2, 2];
        let ari = adjusted_rand_index(&a, &b);
        assert!((ari - 16.0 / 271.0).abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn labels_from_clusters_fills_gaps() {
        let labels = labels_from_clusters(5, &[vec![0, 2], vec![3]]);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[1], labels[4]);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_rejected() {
        labels_from_clusters(3, &[vec![0, 1], vec![1, 2]]);
    }

    /// Regression (ISSUE 5 satellite 3): `choose2` must not multiply
    /// in u64 — for counts ≥ 2³² the product wraps. 2³³ choose 2 is
    /// exactly representable via u128 and must match.
    #[test]
    fn choose2_survives_counts_past_u32_range() {
        let x: u64 = 1 << 33;
        let exact = (x as u128 * (x as u128 - 1) / 2) as f64;
        assert_eq!(choose2(x), exact);
        // The old u64 expression wrapped to a wildly different value.
        let wrapped = (x.wrapping_mul(x.saturating_sub(1))) as f64 / 2.0;
        assert_ne!(wrapped, exact, "fixture must actually exercise the overflow");
        // Small counts are exact.
        assert_eq!(choose2(0), 0.0);
        assert_eq!(choose2(1), 0.0);
        assert_eq!(choose2(5), 10.0);
    }
}
