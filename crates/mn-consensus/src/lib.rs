//! # mn-consensus — consensus clustering (Lemon-Tree task 2)
//!
//! Builds the thresholded co-occurrence frequency matrix from the
//! ensemble of GaneSH variable-cluster samples (§2.2.2 of the paper)
//! and extracts consensus clusters with iterative spectral extraction
//! in the style of Michoel & Nachtergaele (2012): dominant eigenvector
//! by power iteration, cluster = heavy components, deflate, repeat.
//!
//! Per §3.2.2 the paper leaves this task *sequential* (it is < 0.04 %
//! of the total runtime) and executes it redundantly on all ranks; the
//! orchestrator in `monet` charges engines accordingly via
//! `ParEngine::replicated` with [`cooccurrence_work`].

#![warn(missing_docs)]

pub mod cooccurrence;
pub mod rand_index;
pub mod spectral;
pub mod symmatrix;

pub use cooccurrence::{cooccurrence_matrix, cooccurrence_work};
pub use rand_index::{adjusted_rand_index, labels_from_clusters};
pub use spectral::{
    consensus_clustering, power_iteration, spectral_clusters, spectral_clusters_counted,
    SpectralParams,
};
pub use symmatrix::SymMatrix;
