//! # mn-consensus — consensus clustering (Lemon-Tree task 2)
//!
//! Builds the thresholded co-occurrence frequency matrix from the
//! ensemble of GaneSH variable-cluster samples (§2.2.2 of the paper)
//! and extracts consensus clusters with iterative spectral extraction
//! in the style of Michoel & Nachtergaele (2012): dominant eigenvector
//! by power iteration, cluster = heavy components, deflate, repeat.
//!
//! Per §3.2.2 the paper leaves this task *sequential* (it is < 0.04 %
//! of the total runtime) and executes it redundantly on all ranks.
//! That is the [`ConsensusBackend::Dense`] baseline, charged through
//! `ParEngine::replicated`. The default [`ConsensusBackend::Sparse`]
//! path departs from §3.2.2 for north-star scale: the thresholded
//! matrix is built directly in sparse form by tiled accumulation
//! ([`sparse_cooccurrence`]) and the power iteration is sharded over
//! the engine ([`spectral::power_iteration_sparse`]), with real work
//! charged per row through `dist_map`. Both backends produce
//! bit-identical clusters and eigenvalues on every engine and rank
//! count (`tests/backend_ab.rs`; argument in DESIGN.md §11).

#![warn(missing_docs)]

pub mod cooccurrence;
pub mod rand_index;
pub mod sparse;
pub mod spectral;
pub mod symmatrix;

pub use cooccurrence::{
    cooccurrence_matrix, cooccurrence_work, sparse_cooccurrence, COOC_TILE_ROWS,
};
pub use rand_index::{adjusted_rand_index, labels_from_clusters};
pub use sparse::{SparseParts, SparseSymMatrix};
pub use spectral::{
    consensus_clustering, power_iteration, power_iteration_sparse, spectral_clusters,
    spectral_clusters_counted, spectral_outcome, spectral_outcome_sparse, SpectralOutcome,
    SpectralParams,
};
pub use symmatrix::SymMatrix;

use mn_comm::obs::counters;
use mn_comm::{with_span, ParEngine};
use serde::{Deserialize, Serialize};

/// Which task-2 execution path to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConsensusBackend {
    /// Sparse thresholded matrix, power iteration sharded over the
    /// engine (the default).
    #[default]
    Sparse,
    /// Dense `SymMatrix`, sequential extraction replicated on every
    /// rank — §3.2.2 taken literally (`--consensus-dense`).
    Dense,
}

/// Task-2 configuration: threshold, backend, and the spectral
/// extraction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsensusParams {
    /// Co-occurrence fractions strictly below this are zeroed.
    pub threshold: f64,
    /// Dense replicated baseline or sharded sparse path.
    pub backend: ConsensusBackend,
    /// Spectral extraction loop parameters.
    pub spectral: SpectralParams,
}

impl Default for ConsensusParams {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            backend: ConsensusBackend::default(),
            spectral: SpectralParams::default(),
        }
    }
}

/// The co-occurrence matrix in whichever representation the backend
/// produced.
#[derive(Debug, Clone)]
pub enum CoMatrix {
    /// Dense full matrix (the replicated baseline).
    Dense(SymMatrix),
    /// Sparse upper-triangle CSR (the sharded path).
    Sparse(SparseSymMatrix),
}

/// Build the thresholded co-occurrence matrix with the configured
/// backend, inside a `cooccurrence` span. Both backends report the
/// same `consensus.nnz` (stored upper-triangle entries after
/// thresholding, diagonal included) so the counter stream is
/// backend-independent.
pub fn build_cooccurrence<E: ParEngine + ?Sized>(
    engine: &mut E,
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    params: &ConsensusParams,
) -> CoMatrix {
    with_span(engine, "cooccurrence", |engine| match params.backend {
        ConsensusBackend::Dense => {
            let a = cooccurrence_matrix(n, ensemble, params.threshold);
            engine.replicated(cooccurrence_work(n, ensemble.len()));
            // Count post-threshold non-zeros exactly as the sparse
            // path counts stored entries: upper triangle, diagonal
            // included (always 1.0, hence always stored).
            let mut nnz = 0u64;
            for i in 0..n {
                for (j, &v) in a.row(i).iter().enumerate().skip(i) {
                    if v != 0.0 || j == i {
                        nnz += 1;
                    }
                }
            }
            engine.count(counters::CONSENSUS_NNZ, nnz);
            CoMatrix::Dense(a)
        }
        ConsensusBackend::Sparse => {
            CoMatrix::Sparse(sparse_cooccurrence(engine, n, ensemble, params.threshold))
        }
    })
}

/// Run the spectral extraction loop on a built co-occurrence matrix,
/// inside a `spectral` span, and emit the `consensus.*` counters
/// (matvec dispatches; dropped variables per the no-silent-caps rule).
pub fn extract_clusters<E: ParEngine + ?Sized>(
    engine: &mut E,
    matrix: &CoMatrix,
    params: &ConsensusParams,
) -> SpectralOutcome {
    with_span(engine, "spectral", |engine| {
        let out = match matrix {
            CoMatrix::Dense(a) => {
                let out = spectral_outcome(a, &params.spectral);
                engine.replicated(out.work);
                out
            }
            CoMatrix::Sparse(a) => spectral_outcome_sparse(engine, a, &params.spectral),
        };
        engine.count(counters::CONSENSUS_MATVEC_DISPATCHES, out.matvecs);
        engine.count(counters::CONSENSUS_DROPPED_VARS, out.dropped_vars);
        out
    })
}

/// Task 2 end to end on the configured backend: build the matrix,
/// extract the consensus clusters.
pub fn consensus_outcome<E: ParEngine + ?Sized>(
    engine: &mut E,
    n: usize,
    ensemble: &[Vec<Vec<usize>>],
    params: &ConsensusParams,
) -> SpectralOutcome {
    let matrix = build_cooccurrence(engine, n, ensemble, params);
    extract_clusters(engine, &matrix, params)
}
