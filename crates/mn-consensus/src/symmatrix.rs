//! Dense symmetric matrix used for co-occurrence counts.

use serde::{Deserialize, Serialize};

/// A dense symmetric `n × n` matrix of `f64` (full storage; the
/// consensus task is a negligible fraction of total runtime — §3.2.2 —
/// so simplicity wins over a packed layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of size `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric element update: sets `(i,j)` and `(j,i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Symmetric element increment.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
        if i != j {
            self.data[j * self.n + i] += v;
        }
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// `y = A x` into a caller-provided buffer.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, out) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *out = acc;
        }
    }

    /// Zero out row and column `i` (the deflation step of iterative
    /// spectral extraction).
    pub fn clear_index(&mut self, i: usize) {
        for j in 0..self.n {
            self.set(i, j, 0.0);
        }
    }

    /// Apply `f` to every stored element (used to threshold).
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(2, 0), 5.0);
    }

    #[test]
    fn add_does_not_double_count_diagonal() {
        let mut m = SymMatrix::zeros(2);
        m.add(1, 1, 3.0);
        assert_eq!(m.get(1, 1), 3.0);
        m.add(0, 1, 2.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 1, 3.0);
        let mut y = vec![0.0; 2];
        m.mul_vec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn clear_index_zeros_row_and_col() {
        let mut m = SymMatrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, 1.0);
            }
        }
        m.clear_index(1);
        for j in 0..3 {
            assert_eq!(m.get(1, j), 0.0);
            assert_eq!(m.get(j, 1), 0.0);
        }
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), 1.0);
    }

    #[test]
    fn map_and_max_abs() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 1, -4.0);
        assert_eq!(m.max_abs(), 4.0);
        m.map_in_place(|v| if v.abs() < 5.0 { 0.0 } else { v });
        assert_eq!(m.max_abs(), 0.0);
    }
}
