//! Sparse thresholded co-occurrence matrix.
//!
//! After thresholding, the co-occurrence matrix of §2.2.2 is sparse:
//! a variable co-occurs (above threshold) only with the members of the
//! modules it was sampled into, so the post-threshold density falls
//! like `K·(n/K)²/n² = 1/K` for `K` modules. The dense [`SymMatrix`]
//! costs `n²` doubles *per rank* (~2.7 GB at A. thaliana's n = 18373),
//! which is exactly the replication §3.2.2 could afford on its data
//! sets and we cannot at north-star scale.
//!
//! [`SparseSymMatrix`] stores the **upper triangle** (`j ≥ i`) in a
//! CSR-like layout — the canonical form that checkpointing serializes
//! and the equality tests compare — plus a derived full symmetric
//! adjacency (column indices per row, values shared with the upper
//! triangle) built by a deterministic two-pass count-then-fill so that
//! matvecs and graph walks can stream whole rows in increasing column
//! order. That streaming order is what makes the sparse matvec
//! bit-identical to the dense one (see DESIGN.md §11): the dense
//! accumulator visits columns in increasing order and zero entries
//! contribute exact `+0.0` terms, which are f64 no-ops on the
//! non-negative partial sums, so skipping them preserves every
//! intermediate rounding.

use crate::symmatrix::SymMatrix;
use serde::{Deserialize, Serialize};

/// The serializable canonical form of a [`SparseSymMatrix`]: the upper
/// triangle (`j ≥ i`) in CSR layout. This is what the task-2
/// checkpoint unit persists; the full adjacency is rebuilt
/// deterministically on load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseParts {
    /// Dimension `n`.
    pub n: usize,
    /// Row pointers into `col`/`val` (`n + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices, increasing within each row, all `≥` the row.
    pub col: Vec<u32>,
    /// Entry values (non-zero by construction).
    pub val: Vec<f64>,
}

/// A sparse symmetric `n × n` matrix over the thresholded
/// co-occurrence entries. Immutable once built — the sparse spectral
/// path deflates via the active mask instead of mutating the matrix
/// (behaviourally identical to the dense `clear_index`, DESIGN.md §11).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSymMatrix {
    n: usize,
    // Canonical upper triangle (j >= i), increasing j within a row.
    ut_row_ptr: Vec<usize>,
    ut_col: Vec<u32>,
    ut_val: Vec<f64>,
    // Full symmetric adjacency: row i lists every j with a stored
    // (i,j) entry, increasing j; values live in `ut_val` (shared).
    adj_row_ptr: Vec<usize>,
    adj_col: Vec<u32>,
    adj_val_ix: Vec<u32>,
}

impl SparseSymMatrix {
    /// Build from per-row upper-triangle entries: `rows[i]` holds the
    /// `(j, v)` pairs with `j ≥ i`, increasing `j`, `v != 0`.
    pub fn from_rows(n: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        assert_eq!(rows.len(), n, "need one entry list per row");
        let mut ut_row_ptr = Vec::with_capacity(n + 1);
        ut_row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut ut_col = Vec::with_capacity(nnz);
        let mut ut_val = Vec::with_capacity(nnz);
        for (i, row) in rows.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &(j, v) in row {
                assert!(j as usize >= i && (j as usize) < n, "entry ({i},{j}) not upper");
                assert!(prev.is_none_or(|p| p < j), "row {i} not strictly increasing");
                assert!(v != 0.0, "explicit zero stored at ({i},{j})");
                prev = Some(j);
                ut_col.push(j);
                ut_val.push(v);
            }
            ut_row_ptr.push(ut_col.len());
        }
        Self::from_upper(n, ut_row_ptr, ut_col, ut_val)
    }

    /// Rebuild from the canonical serialized form (checkpoint restore).
    pub fn from_parts(parts: SparseParts) -> Self {
        assert_eq!(parts.row_ptr.len(), parts.n + 1, "malformed row pointers");
        Self::from_upper(parts.n, parts.row_ptr, parts.col, parts.val)
    }

    /// The canonical serialized form (upper triangle only).
    pub fn to_parts(&self) -> SparseParts {
        SparseParts {
            n: self.n,
            row_ptr: self.ut_row_ptr.clone(),
            col: self.ut_col.clone(),
            val: self.ut_val.clone(),
        }
    }

    /// Two-pass count-then-fill construction of the full adjacency
    /// from the upper triangle. Deterministic: the fill scans upper
    /// rows in increasing `i`, which leaves every adjacency row sorted
    /// by increasing column (sub-diagonal neighbours `j < i` are
    /// placed by earlier rows, in increasing `j`; the diagonal and
    /// super-diagonal follow from row `i` itself).
    fn from_upper(n: usize, ut_row_ptr: Vec<usize>, ut_col: Vec<u32>, ut_val: Vec<f64>) -> Self {
        // Pass 1: count each row's full-adjacency degree.
        let mut degree = vec![0usize; n];
        for i in 0..n {
            for &j in &ut_col[ut_row_ptr[i]..ut_row_ptr[i + 1]] {
                degree[i] += 1;
                if j as usize != i {
                    degree[j as usize] += 1;
                }
            }
        }
        let mut adj_row_ptr = Vec::with_capacity(n + 1);
        adj_row_ptr.push(0usize);
        for &d in &degree {
            adj_row_ptr.push(adj_row_ptr.last().unwrap() + d);
        }
        // Pass 2: fill, tracking a cursor per row.
        let total = *adj_row_ptr.last().unwrap();
        let mut adj_col = vec![0u32; total];
        let mut adj_val_ix = vec![0u32; total];
        let mut cursor = adj_row_ptr[..n].to_vec();
        for i in 0..n {
            for (ix, &col) in ut_col
                .iter()
                .enumerate()
                .take(ut_row_ptr[i + 1])
                .skip(ut_row_ptr[i])
            {
                let j = col as usize;
                adj_col[cursor[i]] = j as u32;
                adj_val_ix[cursor[i]] = ix as u32;
                cursor[i] += 1;
                if j != i {
                    adj_col[cursor[j]] = i as u32;
                    adj_val_ix[cursor[j]] = ix as u32;
                    cursor[j] += 1;
                }
            }
        }
        Self {
            n,
            ut_row_ptr,
            ut_col,
            ut_val,
            adj_row_ptr,
            adj_col,
            adj_val_ix,
        }
    }

    /// Build from a dense symmetric matrix, storing every non-zero
    /// upper-triangle entry. Round-trips through [`Self::to_dense`].
    pub fn from_dense(a: &SymMatrix) -> Self {
        let n = a.n();
        let mut ut_row_ptr = Vec::with_capacity(n + 1);
        ut_row_ptr.push(0usize);
        let mut ut_col = Vec::new();
        let mut ut_val = Vec::new();
        for i in 0..n {
            let row = a.row(i);
            for (j, &v) in row.iter().enumerate().skip(i) {
                if v != 0.0 {
                    ut_col.push(j as u32);
                    ut_val.push(v);
                }
            }
            ut_row_ptr.push(ut_col.len());
        }
        Self::from_upper(n, ut_row_ptr, ut_col, ut_val)
    }

    /// Expand back to dense (tests and the A/B suite).
    pub fn to_dense(&self) -> SymMatrix {
        let mut a = SymMatrix::zeros(self.n);
        for i in 0..self.n {
            for ix in self.ut_row_ptr[i]..self.ut_row_ptr[i + 1] {
                a.set(i, self.ut_col[ix] as usize, self.ut_val[ix]);
            }
        }
        a
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored upper-triangle entries (the `nnz` the counters report).
    #[inline]
    pub fn nnz_upper(&self) -> usize {
        self.ut_col.len()
    }

    /// Entries of the full symmetric adjacency (matvec visits).
    #[inline]
    pub fn nnz_full(&self) -> usize {
        self.adj_col.len()
    }

    /// Number of stored entries in row `i` of the full adjacency.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.adj_row_ptr[i + 1] - self.adj_row_ptr[i]
    }

    /// The stored entries of row `i`, as `(column, value)` pairs in
    /// increasing column order — the traversal order the bit-identity
    /// argument requires.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.adj_row_ptr[i];
        let hi = self.adj_row_ptr[i + 1];
        self.adj_col[lo..hi]
            .iter()
            .zip(&self.adj_val_ix[lo..hi])
            .map(|(&j, &ix)| (j as usize, self.ut_val[ix as usize]))
    }

    /// Element accessor (binary search within the row; 0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.adj_row_ptr[i];
        let hi = self.adj_row_ptr[i + 1];
        match self.adj_col[lo..hi].binary_search(&(j as u32)) {
            Ok(pos) => self.ut_val[self.adj_val_ix[lo + pos] as usize],
            Err(_) => 0.0,
        }
    }

    /// Heap footprint in bytes (the peak-memory record of
    /// `BENCH_consensus.json` compares this against the dense `n²·8`).
    pub fn bytes(&self) -> usize {
        self.ut_row_ptr.len() * size_of::<usize>()
            + self.ut_col.len() * size_of::<u32>()
            + self.ut_val.len() * size_of::<f64>()
            + self.adj_row_ptr.len() * size_of::<usize>()
            + self.adj_col.len() * size_of::<u32>()
            + self.adj_val_ix.len() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fixture() -> SymMatrix {
        let mut a = SymMatrix::zeros(5);
        for &(i, j, v) in &[(0usize, 1usize, 0.75), (0, 2, 0.5), (1, 2, 1.0), (3, 4, 0.25)] {
            a.set(i, j, v);
        }
        for i in 0..5 {
            a.set(i, i, 1.0);
        }
        a
    }

    #[test]
    fn dense_roundtrip_is_exact() {
        let a = dense_fixture();
        let s = SparseSymMatrix::from_dense(&a);
        assert_eq!(s.to_dense(), a);
        assert_eq!(s.nnz_upper(), 4 + 5);
        // Full adjacency mirrors each off-diagonal entry once per side.
        assert_eq!(s.nnz_full(), 5 + 2 * 4);
    }

    #[test]
    fn get_matches_dense() {
        let a = dense_fixture();
        let s = SparseSymMatrix::from_dense(&a);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(s.get(i, j), a.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn rows_stream_in_increasing_column_order() {
        let s = SparseSymMatrix::from_dense(&dense_fixture());
        for i in 0..s.n() {
            let cols: Vec<usize> = s.row(i).map(|(j, _)| j).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(cols, sorted, "row {i} out of order");
            assert_eq!(cols.len(), s.row_nnz(i));
        }
    }

    #[test]
    fn parts_roundtrip_preserves_everything() {
        let s = SparseSymMatrix::from_dense(&dense_fixture());
        let parts = s.to_parts();
        let json = serde_json::to_string(&parts).unwrap();
        let back: SparseParts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, parts);
        assert_eq!(SparseSymMatrix::from_parts(back), s);
    }

    #[test]
    fn empty_matrix_is_representable() {
        let s = SparseSymMatrix::from_dense(&SymMatrix::zeros(3));
        assert_eq!(s.nnz_upper(), 0);
        assert_eq!(s.to_dense(), SymMatrix::zeros(3));
        assert_eq!(s.row(1).count(), 0);
    }

    #[test]
    fn bytes_beats_dense_on_sparse_input() {
        let mut a = SymMatrix::zeros(64);
        for i in 0..64 {
            a.set(i, i, 1.0);
        }
        let s = SparseSymMatrix::from_dense(&a);
        assert!(s.bytes() < 64 * 64 * 8, "sparse {} bytes", s.bytes());
    }

    #[test]
    #[should_panic(expected = "not upper")]
    fn lower_triangle_entries_rejected() {
        SparseSymMatrix::from_rows(2, &[vec![], vec![(0, 1.0)]]);
    }
}
